//! Shared fixtures for the cross-crate integration tests.

use std::sync::Arc;
use std::time::Duration;
use wsp_core::bindings::{P2psBinding, P2psConfig};
use wsp_core::{EventBus, Peer};
use wsp_p2ps::{PeerConfig, PeerId, ThreadNetwork, ThreadPeer};
use wsp_wsdl::{OperationDef, ServiceDescriptor, ServiceHandler, Value, XsdType};

/// A calculator contract exercising several XSD types and a one-way
/// operation.
pub fn calc_descriptor() -> ServiceDescriptor {
    ServiceDescriptor::new("Calc", "urn:wspeer:test:calc")
        .doc("integration-test calculator")
        .property("suite", "integration")
        .operation(
            OperationDef::new("add")
                .input("a", XsdType::Double)
                .input("b", XsdType::Double)
                .returns(XsdType::Double),
        )
        .operation(
            OperationDef::new("concat")
                .input("parts", XsdType::Array(Box::new(XsdType::String)))
                .returns(XsdType::String),
        )
        .operation(OperationDef::new("fail").returns(XsdType::String))
        .operation(
            OperationDef::new("log")
                .input("line", XsdType::String)
                .one_way(),
        )
}

/// Handler for [`calc_descriptor`].
pub fn calc_handler() -> Arc<dyn ServiceHandler> {
    Arc::new(|op: &str, args: &[Value]| match op {
        "add" => Ok(Value::Double(
            args[0].as_double().unwrap() + args[1].as_double().unwrap(),
        )),
        "concat" => {
            let joined: String = args[0]
                .as_array()
                .unwrap_or(&[])
                .iter()
                .filter_map(|v| v.as_str())
                .collect();
            Ok(Value::string(joined))
        }
        "fail" => Err(wsp_soap::Fault::receiver("deliberate failure")),
        "log" => Ok(Value::Null),
        other => Err(wsp_soap::Fault::sender(format!("no {other}"))),
    })
}

/// A tiny threaded P2PS fabric: one rendezvous, n ordinary peers wired
/// to it. Returns (network, rendezvous handle, peers).
pub fn p2ps_star(n: usize) -> (ThreadNetwork, ThreadPeer, Vec<ThreadPeer>) {
    let network = ThreadNetwork::new();
    let rendezvous = network.spawn(PeerConfig::rendezvous(PeerId(0xF000)));
    let peers: Vec<ThreadPeer> = (0..n)
        .map(|i| {
            let peer = network.spawn(PeerConfig::ordinary(PeerId(0xF100 + i as u64)));
            peer.add_neighbour(rendezvous.id(), true);
            rendezvous.add_neighbour(peer.id(), false);
            peer
        })
        .collect();
    (network, rendezvous, peers)
}

/// Build a WSPeer `Peer` over a threaded P2PS peer with a short
/// discovery window suitable for tests.
pub fn p2ps_wspeer(thread_peer: ThreadPeer) -> (Peer, P2psBinding) {
    let binding = P2psBinding::new(
        thread_peer,
        EventBus::new(),
        P2psConfig {
            discovery_window: Duration::from_millis(400),
            request_timeout: Duration::from_secs(3),
            load_shed: wsp_core::LoadShedPolicy::unlimited(),
        },
    );
    (Peer::with_binding(&binding), binding)
}

/// Wait until `predicate` is true, up to `timeout`. Returns whether it
/// became true.
pub fn wait_until(timeout: Duration, mut predicate: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if predicate() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    predicate()
}

//! The paper's central claim (C1): identical application code drives
//! vastly different substrates. One generic application function runs
//! against both bindings; the assertions never mention the substrate.

use std::sync::Arc;
use std::time::Duration;
use wsp_core::bindings::HttpUddiBinding;
use wsp_core::{EventBus, Peer, ServiceQuery};
use wsp_integration_tests::{calc_descriptor, calc_handler, p2ps_star, p2ps_wspeer};
use wsp_uddi::Registry;
use wsp_wsdl::Value;

/// The application, written once against the WSPeer API. It has no idea
/// whether HTTP/UDDI or P2PS sits underneath.
fn application(provider: &Peer, consumer: &Peer, settle: Duration) -> Value {
    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .expect("deploy+publish");
    std::thread::sleep(settle);
    let service = consumer
        .client()
        .locate_one(&ServiceQuery::by_name("Calc"))
        .expect("locate");
    consumer
        .client()
        .invoke(&service, "add", &[Value::Double(19.0), Value::Double(23.0)])
        .expect("invoke")
}

#[test]
fn same_code_over_http_uddi() {
    let registry = Registry::new();
    let provider = Peer::with_binding(&HttpUddiBinding::with_local_registry(
        registry.clone(),
        EventBus::new(),
    ));
    let consumer = Peer::with_binding(&HttpUddiBinding::with_local_registry(
        registry,
        EventBus::new(),
    ));
    assert_eq!(
        application(&provider, &consumer, Duration::ZERO),
        Value::Double(42.0)
    );
}

#[test]
fn same_code_over_p2ps() {
    let (_network, _rv, mut peers) = p2ps_star(2);
    let (provider, _pb) = p2ps_wspeer(peers.pop().unwrap());
    let (consumer, _cb) = p2ps_wspeer(peers.pop().unwrap());
    assert_eq!(
        application(&provider, &consumer, Duration::from_millis(200)),
        Value::Double(42.0)
    );
}

/// C6 in the other direction from the bindings::tests version: a P2PS
/// *server* using the UDDI-conversant ServicePublisher, so HTTP-world
/// clients can find P2PS-world services.
#[test]
fn p2ps_server_with_uddi_publisher() {
    let registry = Registry::new();
    let (_network, _rv, mut peers) = p2ps_star(2);
    let (provider, _pb) = p2ps_wspeer(peers.pop().unwrap());
    let (consumer, _cb) = p2ps_wspeer(peers.pop().unwrap());

    // Replace the provider's publisher with the UDDI one, exactly as
    // the paper suggests ("a P2PS Server could use the UDDI conversant
    // ServicePublisher").
    let uddi_binding = HttpUddiBinding::with_local_registry(registry.clone(), EventBus::new());
    provider
        .server()
        .set_publisher(wsp_core::Binding::publisher(&uddi_binding));

    let deployed = provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();
    assert!(deployed.primary_endpoint().unwrap().starts_with("p2ps://"));

    // The record is in UDDI with a p2ps:// access point.
    let uddi = wsp_uddi::UddiClient::direct(registry);
    let records = uddi
        .locate(&ServiceQuery::by_name("Calc").to_uddi())
        .unwrap();
    assert_eq!(records.len(), 1);
    let endpoint = records[0].bindings[0].access_point.clone();
    assert!(endpoint.starts_with("p2ps://"), "{endpoint}");

    // A consumer that knows the WSDL (e.g. via the registry's tModel or
    // the definition pipe) can invoke over P2PS.
    std::thread::sleep(Duration::from_millis(100));
    let service =
        wsp_core::LocatedService::new(deployed.wsdl.clone(), endpoint, wsp_core::BindingKind::P2ps);
    let sum = consumer
        .client()
        .invoke(&service, "add", &[Value::Double(1.0), Value::Double(2.0)])
        .unwrap();
    assert_eq!(sum, Value::Double(3.0));
}

/// A dual-homed provider: deployed on both substrates at once; clients
/// on either side find and invoke it through their own mechanisms.
#[test]
fn provider_serves_both_worlds_simultaneously() {
    let registry = Registry::new();
    let (_network, _rv, mut peers) = p2ps_star(2);
    let (p2ps_provider, _pb) = p2ps_wspeer(peers.pop().unwrap());
    let (p2ps_consumer, _cb) = p2ps_wspeer(peers.pop().unwrap());
    let http_binding = HttpUddiBinding::with_local_registry(registry.clone(), EventBus::new());
    let http_provider = Peer::with_binding(&http_binding);

    let handler = calc_handler();
    // Same descriptor + handler deployed through both bindings.
    p2ps_provider
        .server()
        .deploy_and_publish(calc_descriptor(), handler.clone())
        .unwrap();
    http_provider
        .server()
        .deploy_and_publish(calc_descriptor(), handler)
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // HTTP-side client.
    let http_consumer = Peer::with_binding(&HttpUddiBinding::with_local_registry(
        registry,
        EventBus::new(),
    ));
    let via_http = http_consumer
        .client()
        .locate_one(&ServiceQuery::by_name("Calc"))
        .unwrap();
    assert_eq!(
        http_consumer
            .client()
            .invoke(&via_http, "add", &[Value::Double(2.0), Value::Double(2.0)])
            .unwrap(),
        Value::Double(4.0)
    );

    // P2PS-side client.
    let via_p2ps = p2ps_consumer
        .client()
        .locate_one(&ServiceQuery::by_name("Calc"))
        .unwrap();
    assert_eq!(
        p2ps_consumer
            .client()
            .invoke(&via_p2ps, "add", &[Value::Double(3.0), Value::Double(3.0)])
            .unwrap(),
        Value::Double(6.0)
    );
    assert_ne!(via_http.endpoint, via_p2ps.endpoint);
}

/// Stateful object exposed through BOTH bindings shares one state.
#[test]
fn shared_stateful_object_across_bindings() {
    use wsp_core::StatefulService;
    let registry = Registry::new();
    let (_network, _rv, mut peers) = p2ps_star(2);
    let (p2ps_provider, _pb) = p2ps_wspeer(peers.pop().unwrap());
    let (p2ps_consumer, _cb) = p2ps_wspeer(peers.pop().unwrap());
    let http_provider = Peer::with_binding(&HttpUddiBinding::with_local_registry(
        registry.clone(),
        EventBus::new(),
    ));

    let counter = Arc::new(std::sync::atomic::AtomicI64::new(0));
    let descriptor = wsp_wsdl::ServiceDescriptor::new("Counter", "urn:wspeer:counter")
        .operation(wsp_wsdl::OperationDef::new("bump").returns(wsp_wsdl::XsdType::Int));
    let handler = StatefulService::wrapping(counter.clone())
        .operation("bump", |c, _| {
            Ok(Value::Int(
                c.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1,
            ))
        })
        .into_handler();

    p2ps_provider
        .server()
        .deploy_and_publish(descriptor.clone(), handler.clone())
        .unwrap();
    http_provider
        .server()
        .deploy_and_publish(descriptor, handler)
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));

    let http_consumer = Peer::with_binding(&HttpUddiBinding::with_local_registry(
        registry,
        EventBus::new(),
    ));
    let via_http = http_consumer
        .client()
        .locate_one(&ServiceQuery::by_name("Counter"))
        .unwrap();
    let via_p2ps = p2ps_consumer
        .client()
        .locate_one(&ServiceQuery::by_name("Counter"))
        .unwrap();

    assert_eq!(
        http_consumer
            .client()
            .invoke(&via_http, "bump", &[])
            .unwrap(),
        Value::Int(1)
    );
    assert_eq!(
        p2ps_consumer
            .client()
            .invoke(&via_p2ps, "bump", &[])
            .unwrap(),
        Value::Int(2)
    );
    assert_eq!(
        http_consumer
            .client()
            .invoke(&via_http, "bump", &[])
            .unwrap(),
        Value::Int(3)
    );
}

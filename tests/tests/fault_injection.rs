//! Deterministic fault-injection matrix for the resilience layer.
//!
//! Every scenario here follows one contract: a call made under a
//! resilience policy either **completes within the policy** or **fails
//! classified** — it never hangs. The simulated scenarios are seeded
//! (override with `WSP_FAULT_SEED`) and reproducible bit-for-bit: the
//! same seed yields identical attempt counts and event sequences, which
//! the determinism tests assert by literally running twice.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;
use wsp_core::{Client, EventBus, Invoker, LocatedService, ResiliencePolicy, WspError};
use wsp_http::{
    HttpSimServer, Request, ResilientSimClient, Response, RetrySchedule, Router, SimCallOutcome,
};
use wsp_p2ps::{build_overlay, P2psQuery, PeerCommand, PeerEvent, ServiceAdvertisement};
use wsp_simnet::{
    Context, Dur, FaultPlan, LinkSpec, Node, NodeEvent, NodeId, SimNet, Time, Topology,
};

/// The matrix seed; every scenario derives from it so one environment
/// variable reruns the whole suite elsewhere in seed space.
fn seed() -> u64 {
    std::env::var("WSP_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2005)
}

// --- HTTP side ---------------------------------------------------------------

fn echo_router() -> Router {
    let router = Router::new();
    router.deploy(
        "Echo",
        Arc::new(|req: &Request| Response::ok("text/plain", req.body.clone())),
    );
    router
}

/// Issues `calls` resilient calls, one every `every`, recording
/// outcomes.
struct CallSource {
    server: NodeId,
    client: ResilientSimClient,
    calls: usize,
    every: Dur,
    started: usize,
    outcomes: Rc<RefCell<Vec<SimCallOutcome>>>,
}

const NEXT_CALL_TAG: u64 = 0x1001;

impl Node<String> for CallSource {
    fn handle(&mut self, ctx: &mut Context<'_, String>, event: NodeEvent<String>) {
        let outcome = match event {
            NodeEvent::Start => {
                ctx.set_timer(Dur::ZERO, NEXT_CALL_TAG);
                None
            }
            NodeEvent::Timer { tag: NEXT_CALL_TAG } => {
                if self.started < self.calls {
                    self.started += 1;
                    self.client
                        .begin(ctx, self.server, Request::post("/Echo", "text/plain", "hi"));
                    ctx.set_timer(self.every, NEXT_CALL_TAG);
                }
                None
            }
            NodeEvent::Timer { tag } => self.client.on_timer(ctx, tag),
            NodeEvent::Message { msg, .. } => self.client.on_message(ctx, &msg),
            _ => None,
        };
        if let Some(outcome) = outcome {
            self.outcomes.borrow_mut().push(outcome);
        }
    }
}

/// Run `calls` HTTP calls under `plan`; returns (outcomes, end time).
fn run_http(
    sim_seed: u64,
    calls: usize,
    schedule: RetrySchedule,
    plan: impl FnOnce(NodeId, NodeId) -> FaultPlan,
) -> (Vec<SimCallOutcome>, Time) {
    let mut net: SimNet<String> = SimNet::new(sim_seed);
    net.set_default_link(LinkSpec {
        latency: Dur::millis(2),
        jitter: Dur::millis(1),
        loss: 0.0,
        per_byte: Dur::ZERO,
    });
    let server = net.add_node(Box::new(HttpSimServer::new(
        echo_router(),
        Dur::millis(5),
        2,
    )));
    let outcomes = Rc::new(RefCell::new(Vec::new()));
    let client = net.add_node(Box::new(CallSource {
        server,
        client: ResilientSimClient::new(schedule),
        calls,
        every: Dur::millis(50),
        started: 0,
        outcomes: outcomes.clone(),
    }));
    plan(client, server).apply(&mut net);
    let end = net.run_to_quiescence();
    let got = outcomes.borrow().clone();
    (got, end)
}

/// Run `calls` HTTP calls at 4× the server's capacity: one worker at
/// 20ms per request (50/s) against an arrival every 5ms (200/s), with
/// `queue_limit` waiting slots — the overflow bounces as 503.
fn run_http_overloaded(
    sim_seed: u64,
    calls: usize,
    schedule: RetrySchedule,
    queue_limit: usize,
) -> (Vec<SimCallOutcome>, Time) {
    let mut net: SimNet<String> = SimNet::new(sim_seed);
    net.set_default_link(LinkSpec {
        latency: Dur::millis(2),
        jitter: Dur::millis(1),
        loss: 0.0,
        per_byte: Dur::ZERO,
    });
    let server = net.add_node(Box::new(
        HttpSimServer::new(echo_router(), Dur::millis(20), 1).with_queue_limit(queue_limit),
    ));
    let outcomes = Rc::new(RefCell::new(Vec::new()));
    net.add_node(Box::new(CallSource {
        server,
        client: ResilientSimClient::new(schedule),
        calls,
        every: Dur::millis(5),
        started: 0,
        outcomes: outcomes.clone(),
    }));
    let end = net.run_to_quiescence();
    let got = outcomes.borrow().clone();
    (got, end)
}

#[test]
fn http_loss_matrix_never_hangs() {
    // {0%, 5%, 20%} loss: every single call reaches a terminal outcome.
    for (i, loss) in [0.0, 0.05, 0.2].into_iter().enumerate() {
        let schedule = RetrySchedule::fixed(Dur::millis(60), Dur::millis(10), 5);
        let (outcomes, _) = run_http(seed() + i as u64, 8, schedule, |_, _| {
            FaultPlan::new(seed()).default_loss(loss)
        });
        assert_eq!(
            outcomes.len(),
            8,
            "at {loss} loss every call must terminate"
        );
        if loss == 0.0 {
            assert!(
                outcomes
                    .iter()
                    .all(|o| matches!(o, SimCallOutcome::Completed { attempts: 1, .. })),
                "lossless calls complete first try"
            );
        }
    }
}

#[test]
fn http_retry_beats_no_retry_at_heavy_loss() {
    let completed = |outcomes: &[SimCallOutcome]| {
        outcomes
            .iter()
            .filter(|o| matches!(o, SimCallOutcome::Completed { .. }))
            .count()
    };
    let with_retry = RetrySchedule::fixed(Dur::millis(60), Dur::millis(10), 6);
    let without = RetrySchedule::none(Dur::millis(60));
    let (retrying, _) = run_http(seed(), 12, with_retry, |_, _| {
        FaultPlan::new(seed()).default_loss(0.2)
    });
    let (single, _) = run_http(seed(), 12, without, |_, _| {
        FaultPlan::new(seed()).default_loss(0.2)
    });
    assert!(
        completed(&retrying) > completed(&single),
        "retry must lift completion at 20% loss: {} vs {}",
        completed(&retrying),
        completed(&single)
    );
}

#[test]
fn http_blackout_mid_call_is_survived() {
    // The link goes black at 40ms for 200ms — mid-flight for the second
    // call. Retries after restoration complete every call.
    let schedule = RetrySchedule::fixed(Dur::millis(80), Dur::millis(20), 6);
    let (outcomes, _) = run_http(seed(), 4, schedule, |client, server| {
        FaultPlan::new(seed()).blackout(client, server, Time::millis(40), Time::millis(240))
    });
    assert_eq!(outcomes.len(), 4);
    assert!(
        outcomes
            .iter()
            .all(|o| matches!(o, SimCallOutcome::Completed { .. })),
        "all calls should complete once the blackout lifts: {outcomes:?}"
    );
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, SimCallOutcome::Completed { attempts, .. } if *attempts > 1)),
        "the blackout must have forced at least one retry"
    );
}

#[test]
fn http_server_churn_is_survived_or_classified() {
    // The server crashes at 60ms (losing queued work) and returns at
    // 300ms. Every call still terminates; calls landing in the outage
    // window either retry to completion or exhaust classified.
    let schedule = RetrySchedule::fixed(Dur::millis(70), Dur::millis(30), 6);
    let (outcomes, _) = run_http(seed(), 6, schedule, |_, server| {
        FaultPlan::new(seed()).outage(server, Time::millis(60), Time::millis(300))
    });
    assert_eq!(outcomes.len(), 6, "churn must not leave calls hanging");
    assert!(
        outcomes
            .iter()
            .filter(|o| matches!(o, SimCallOutcome::Completed { .. }))
            .count()
            >= 4,
        "most calls should survive the restart via retry: {outcomes:?}"
    );
}

#[test]
fn http_fault_runs_are_bit_reproducible() {
    let run = || {
        let schedule = RetrySchedule::fixed(Dur::millis(60), Dur::millis(10), 5);
        run_http(seed(), 10, schedule, |client, server| {
            FaultPlan::new(seed()).default_loss(0.2).blackout(
                client,
                server,
                Time::millis(100),
                Time::millis(200),
            )
        })
    };
    let (outcomes_a, end_a) = run();
    let (outcomes_b, end_b) = run();
    assert_eq!(outcomes_a, outcomes_b, "same seed ⇒ same outcome sequence");
    assert_eq!(end_a, end_b, "same seed ⇒ same virtual end time");
}

// --- overload side -----------------------------------------------------------

#[test]
fn http_overload_sheds_the_overflow_and_serves_the_rest() {
    // 4× overload, no retries: the server's queue bound turns the
    // overflow into fast 503 exhaustions while everything it queues is
    // served — no call hangs and no call is silently dropped.
    let (outcomes, _) =
        run_http_overloaded(seed() + 400, 16, RetrySchedule::none(Dur::millis(200)), 2);
    assert_eq!(outcomes.len(), 16, "every call reaches a terminal outcome");
    let served = outcomes
        .iter()
        .filter(|o| matches!(o, SimCallOutcome::Completed { .. }))
        .count();
    let shed = outcomes
        .iter()
        .filter(|o| matches!(o, SimCallOutcome::Exhausted { attempts: 1, .. }))
        .count();
    assert_eq!(served + shed, 16, "terminal outcomes are served or shed");
    assert!(
        served >= 3,
        "the queue's worth of work is served: {outcomes:?}"
    );
    assert!(
        shed >= 3,
        "a 4× burst against 2 queue slots must shed: {outcomes:?}"
    );
}

#[test]
fn http_overload_backoff_recovers_more_goodput_than_hammering() {
    // The same burst, retried: spacing retries out (60ms ≈ 3 service
    // times) rides the queue as it drains and completes more calls than
    // immediate re-sends into a still-full queue.
    let completed = |outcomes: &[SimCallOutcome]| {
        outcomes
            .iter()
            .filter(|o| matches!(o, SimCallOutcome::Completed { .. }))
            .count()
    };
    let spaced = RetrySchedule::fixed(Dur::millis(200), Dur::millis(60), 5);
    let hammer = RetrySchedule::fixed(Dur::millis(200), Dur::millis(1), 5);
    let (with_backoff, _) = run_http_overloaded(seed() + 410, 16, spaced, 2);
    let (hammering, _) = run_http_overloaded(seed() + 410, 16, hammer, 2);
    assert_eq!(with_backoff.len(), 16);
    assert_eq!(hammering.len(), 16);
    assert!(
        completed(&with_backoff) > completed(&hammering),
        "backing off must beat hammering a full queue: {} vs {}",
        completed(&with_backoff),
        completed(&hammering)
    );
}

#[test]
fn http_overload_runs_are_bit_reproducible() {
    let run = || {
        let schedule = RetrySchedule::fixed(Dur::millis(200), Dur::millis(60), 4);
        run_http_overloaded(seed() + 420, 20, schedule, 2)
    };
    let (outcomes_a, end_a) = run();
    let (outcomes_b, end_b) = run();
    assert_eq!(outcomes_a, outcomes_b, "same seed ⇒ same shed/serve split");
    assert_eq!(end_a, end_b, "same seed ⇒ same virtual end time");
}

// --- P2PS side ---------------------------------------------------------------

/// One resilient query under `loss`, publisher live from t=0.
/// Returns the seeker's terminal events.
fn run_p2ps(sim_seed: u64, loss: f64, max_attempts: u32) -> Vec<PeerEvent> {
    let mut net: SimNet<String> = SimNet::new(sim_seed);
    net.set_default_link(LinkSpec {
        latency: Dur::millis(5),
        jitter: Dur::millis(2),
        loss: 0.0,
        per_byte: Dur::ZERO,
    });
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(sim_seed);
    let (topology, rendezvous) = Topology::rendezvous_groups(1, 4, 1, &mut rng);
    let (_dir, handles) = build_overlay(&mut net, &topology, &rendezvous, None);
    FaultPlan::new(sim_seed).default_loss(loss).apply(&mut net);
    let publisher = &handles[1];
    let seeker = &handles[3];
    let advert = ServiceAdvertisement::new("Echo", publisher.peer()).with_pipe("in");
    publisher.enqueue_at(&mut net, Time::ZERO, PeerCommand::Publish(advert));
    seeker.enqueue_at(
        &mut net,
        Time::millis(100),
        PeerCommand::ResilientQuery {
            token: 1,
            query: P2psQuery::by_name("Echo"),
            ttl: None,
            attempt_timeout: Dur::millis(80),
            max_attempts,
            backoff: Dur::millis(15),
        },
    );
    net.run_to_quiescence();
    seeker
        .take_events()
        .into_iter()
        .map(|(_, e)| e)
        .filter(|e| {
            matches!(e, PeerEvent::QueryFailed { .. })
                || matches!(e, PeerEvent::QueryResult { adverts, .. } if !adverts.is_empty())
        })
        .collect()
}

#[test]
fn p2ps_loss_matrix_terminates_classified() {
    for (i, loss) in [0.0, 0.05, 0.2].into_iter().enumerate() {
        let terminal = run_p2ps(seed() + 100 + i as u64, loss, 8);
        assert_eq!(
            terminal.len(),
            1,
            "exactly one terminal event at {loss} loss: {terminal:?}"
        );
        if loss == 0.0 {
            assert!(
                matches!(&terminal[0], PeerEvent::QueryResult { .. }),
                "lossless discovery succeeds"
            );
        }
    }
}

#[test]
fn p2ps_total_loss_fails_classified_not_hanging() {
    let terminal = run_p2ps(seed() + 200, 1.0, 3);
    assert_eq!(terminal.len(), 1);
    assert!(
        matches!(terminal[0], PeerEvent::QueryFailed { attempts: 3, .. }),
        "a dead overlay classifies as QueryFailed after the budget: {terminal:?}"
    );
}

#[test]
fn p2ps_fault_runs_are_bit_reproducible() {
    let a = run_p2ps(seed() + 300, 0.25, 8);
    let b = run_p2ps(seed() + 300, 0.25, 8);
    assert_eq!(a, b, "same seed ⇒ same terminal events");
}

// --- threaded wsp-core path --------------------------------------------------

/// Fails transport-style `failures` times, then echoes.
struct Flaky {
    failures: u32,
    calls: std::sync::atomic::AtomicU32,
}

impl Invoker for Flaky {
    fn invoke(
        &self,
        _service: &LocatedService,
        _operation: &str,
        args: &[wsp_wsdl::Value],
    ) -> Result<wsp_wsdl::Value, WspError> {
        let n = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        if n < self.failures {
            Err(WspError::Transport("injected fault".into()))
        } else {
            Ok(args.first().cloned().unwrap_or(wsp_wsdl::Value::Null))
        }
    }
    fn handles(&self, endpoint: &str) -> bool {
        endpoint.starts_with("test://")
    }
    fn kind(&self) -> &'static str {
        "flaky"
    }
}

fn test_service() -> LocatedService {
    LocatedService::new(
        wsp_wsdl::WsdlDocument::new(wsp_wsdl::ServiceDescriptor::echo(), vec![]),
        "test://somewhere/Echo",
        wsp_core::BindingKind::HttpUddi,
    )
}

#[test]
fn threaded_client_retries_within_policy() {
    let client = Client::new(EventBus::new());
    client.add_invoker(Arc::new(Flaky {
        failures: 2,
        calls: Default::default(),
    }));
    let policy = ResiliencePolicy::retrying(5)
        .with_backoff(Duration::from_millis(1), 1.0, Duration::from_millis(1))
        .with_deadline(Duration::from_secs(5));
    let out = client
        .invoke_with_policy(
            &test_service(),
            "echoString",
            &[wsp_wsdl::Value::string("ok")],
            policy,
        )
        .expect("third attempt succeeds");
    assert_eq!(out, wsp_wsdl::Value::string("ok"));
}

#[test]
fn threaded_watchdog_never_hangs() {
    // An invoker that stalls far beyond the watchdog: wait_within
    // cancels and classifies instead of blocking forever.
    struct Stall;
    impl Invoker for Stall {
        fn invoke(
            &self,
            _service: &LocatedService,
            _operation: &str,
            _args: &[wsp_wsdl::Value],
        ) -> Result<wsp_wsdl::Value, WspError> {
            std::thread::sleep(Duration::from_millis(400));
            Ok(wsp_wsdl::Value::Null)
        }
        fn handles(&self, endpoint: &str) -> bool {
            endpoint.starts_with("test://")
        }
        fn kind(&self) -> &'static str {
            "stall"
        }
    }
    let client = Client::new(EventBus::new());
    client.add_invoker(Arc::new(Stall));
    let started = std::time::Instant::now();
    let err = client
        .invoke_async(test_service(), "echoString", vec![])
        .wait_within(Duration::from_millis(50))
        .unwrap_err();
    assert!(
        matches!(
            err,
            WspError::Timeout {
                what: "call deadline",
                millis: 50
            }
        ),
        "watchdog classifies, got {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_millis(350),
        "the watchdog must not wait for the stalled job"
    );
}

#[test]
fn threaded_event_sequences_are_reproducible() {
    // Two fresh clients, identical scripted faults: identical attempt
    // counts and identical resilience action sequences.
    let run = || {
        let events = EventBus::new();
        let listener = wsp_core::CollectingListener::new();
        events.add_listener(listener.clone());
        let client = Client::new(events);
        // Two failures: enough to exercise retries without tripping the
        // endpoint's breaker (threshold 3).
        let flaky = Arc::new(Flaky {
            failures: 2,
            calls: Default::default(),
        });
        client.add_invoker(flaky.clone());
        let policy = ResiliencePolicy::retrying(6)
            .with_backoff(Duration::from_millis(1), 1.0, Duration::from_millis(1))
            .with_jitter(0.5)
            .with_jitter_seed(seed());
        let handle = client.invoke_async_with_policy(
            test_service(),
            "echoString",
            vec![wsp_wsdl::Value::string("x")],
            policy,
        );
        let token = handle.token();
        handle.wait().expect("recovers within budget");
        client.dispatcher().flush();
        let actions: Vec<String> = listener
            .resilience_for(token)
            .into_iter()
            .map(|e| format!("{:?}", e.action))
            .collect();
        (
            flaky.calls.load(std::sync::atomic::Ordering::SeqCst),
            actions,
        )
    };
    let (attempts_a, actions_a) = run();
    let (attempts_b, actions_b) = run();
    assert_eq!(attempts_a, attempts_b, "same seed ⇒ same attempt count");
    assert_eq!(actions_a, actions_b, "same seed ⇒ same event sequence");
    assert_eq!(attempts_a, 3, "two injected faults, then success");
}

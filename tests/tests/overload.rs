//! Wire-level overload protection: a burst past capacity is shed with
//! retry hints while admitted work completes, an expired deadline is
//! rejected before the handler runs, the P2PS busy fault round-trips
//! with its hint, and a draining host finishes every request it
//! admitted while turning new connections away.
//!
//! Doubles as the CI overload smoke test (`scripts/ci.sh` runs this
//! suite under two fixed seeds).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use wsp_core::bindings::{HttpUddiBinding, HttpUddiConfig, P2psBinding, P2psConfig};
use wsp_core::{EventBus, LoadShedPolicy, Peer, ResiliencePolicy, ServiceQuery, WspError};
use wsp_http::{http_call, Request, Response, Router, ServerConfig, TcpServer};
use wsp_integration_tests::{p2ps_star, wait_until};
use wsp_wsdl::{OperationDef, ServiceDescriptor, ServiceHandler, Value, XsdType};

/// A single-operation service whose handler sleeps, then counts.
fn nap_descriptor(name: &str) -> ServiceDescriptor {
    ServiceDescriptor::new(name, "urn:wspeer:test:overload")
        .operation(OperationDef::new("nap").returns(XsdType::String))
}

fn nap_handler(naps: Arc<AtomicU32>, length: Duration) -> Arc<dyn ServiceHandler> {
    Arc::new(move |_op: &str, _args: &[Value]| {
        std::thread::sleep(length);
        naps.fetch_add(1, Ordering::SeqCst);
        Ok(Value::string("rested"))
    })
}

fn binding_with_policy(policy: LoadShedPolicy) -> HttpUddiBinding {
    HttpUddiBinding::new(
        wsp_uddi::UddiClient::direct(wsp_uddi::Registry::new()),
        EventBus::new(),
        HttpUddiConfig {
            load_shed: policy,
            ..HttpUddiConfig::default()
        },
    )
}

/// 8 callers against an in-flight budget of 1: the host must shed the
/// overflow as `Overloaded` (with the server's retry hint attached) in
/// bounded time, while everything it admits completes successfully —
/// goodput survives the burst and no caller hangs.
#[test]
fn burst_past_capacity_sheds_with_hint_and_serves_the_rest() {
    let binding = binding_with_policy(LoadShedPolicy::bounded(1, 1024));
    let peer = Peer::with_binding(&binding);
    let naps = Arc::new(AtomicU32::new(0));
    peer.server()
        .deploy_and_publish(
            nap_descriptor("BurstNap"),
            nap_handler(naps.clone(), Duration::from_millis(100)),
        )
        .unwrap();
    let service = peer
        .client()
        .locate_one(&ServiceQuery::by_name("BurstNap"))
        .unwrap();

    const CALLERS: usize = 8;
    let barrier = Arc::new(Barrier::new(CALLERS));
    let started = Instant::now();
    let outcomes: Vec<Result<Value, WspError>> = (0..CALLERS)
        .map(|_| {
            let client = peer.client().clone();
            let service = service.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                // No retries: observe the raw admission decision.
                client.invoke_with_policy(&service, "nap", &[], ResiliencePolicy::none())
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    let elapsed = started.elapsed();

    let mut served = 0usize;
    let mut shed = 0usize;
    for outcome in outcomes {
        match outcome {
            Ok(value) => {
                assert_eq!(value, Value::string("rested"));
                served += 1;
            }
            Err(WspError::Overloaded { retry_after_ms }) => {
                // The hint crossed the wire (the policy default, 100 ms).
                assert_eq!(retry_after_ms, Some(100), "shed carries the server hint");
                shed += 1;
            }
            Err(other) => panic!("expected success or Overloaded, got {other}"),
        }
    }
    assert_eq!(served + shed, CALLERS);
    assert!(served >= 1, "the first caller through is always admitted");
    assert!(shed >= 1, "an 8-wide burst against budget 1 must shed");
    assert_eq!(naps.load(Ordering::SeqCst) as usize, served);
    // Nothing hung: sheds are immediate and admitted naps serialize at
    // 100 ms each, far under the transport timeouts.
    assert!(elapsed < Duration::from_secs(5), "burst took {elapsed:?}");
}

/// A request whose propagated deadline is already spent is shed at
/// admission — 503 with both retry-hint headers — and the handler is
/// never invoked. The same service still serves live-deadline calls.
#[test]
fn expired_deadline_is_rejected_before_the_handler_runs() {
    let binding = binding_with_policy(LoadShedPolicy::unlimited());
    let peer = Peer::with_binding(&binding);
    let naps = Arc::new(AtomicU32::new(0));
    peer.server()
        .deploy_and_publish(
            nap_descriptor("DeadlineNap"),
            nap_handler(naps.clone(), Duration::ZERO),
        )
        .unwrap();
    let port = binding.host_port().expect("deployment launched the host");

    // Zero remaining budget: expired by the time admission samples it.
    let mut request = Request::post("/DeadlineNap", "text/xml", "<unparsed/>");
    request.headers.set("X-WSP-Deadline", "0");
    let response = http_call("127.0.0.1", port, request).unwrap();
    assert_eq!(response.status, 503);
    assert_eq!(response.headers.get("Retry-After"), Some("1"));
    assert_eq!(response.headers.get("X-WSP-Retry-After-Ms"), Some("100"));
    assert_eq!(naps.load(Ordering::SeqCst), 0, "handler never ran");

    // A live deadline sails through the same admission gate.
    let service = peer
        .client()
        .locate_one(&ServiceQuery::by_name("DeadlineNap"))
        .unwrap();
    let value = peer
        .client()
        .invoke_with_policy(
            &service,
            "nap",
            &[],
            ResiliencePolicy::none().with_deadline(Duration::from_secs(5)),
        )
        .unwrap();
    assert_eq!(value, Value::string("rested"));
    assert_eq!(naps.load(Ordering::SeqCst), 1);
}

/// Over P2PS the shed takes the form of a SOAP busy fault on the return
/// pipe; the consumer's invoker decodes it back into `Overloaded` with
/// the provider's hint instead of a generic fault.
#[test]
fn p2ps_overload_surfaces_busy_fault_as_overloaded_with_hint() {
    let (_network, _rv, mut peers) = p2ps_star(2);
    let consumer_thread = peers.pop().unwrap();
    let provider_thread = peers.pop().unwrap();
    // Queue budget 0: the provider sheds every service request while
    // discovery and the definition pipe stay un-gated.
    let provider_binding = P2psBinding::new(
        provider_thread,
        EventBus::new(),
        P2psConfig {
            discovery_window: Duration::from_millis(400),
            request_timeout: Duration::from_secs(3),
            load_shed: LoadShedPolicy::bounded(usize::MAX, 0),
        },
    );
    let provider = Peer::with_binding(&provider_binding);
    let consumer_binding = P2psBinding::new(
        consumer_thread,
        EventBus::new(),
        P2psConfig {
            discovery_window: Duration::from_millis(400),
            request_timeout: Duration::from_secs(3),
            load_shed: LoadShedPolicy::unlimited(),
        },
    );
    let consumer = Peer::with_binding(&consumer_binding);

    let naps = Arc::new(AtomicU32::new(0));
    provider
        .server()
        .deploy_and_publish(
            nap_descriptor("BusyNap"),
            nap_handler(naps.clone(), Duration::ZERO),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));

    let service = consumer
        .client()
        .locate_one(&ServiceQuery::by_name("BusyNap"))
        .unwrap();
    assert!(service.endpoint.starts_with("p2ps://"));

    let started = Instant::now();
    let err = consumer
        .client()
        .invoke_with_policy(&service, "nap", &[], ResiliencePolicy::none())
        .unwrap_err();
    assert!(
        matches!(
            err,
            WspError::Overloaded {
                retry_after_ms: Some(100)
            }
        ),
        "busy fault decodes to Overloaded with the provider's hint: {err:?}"
    );
    // The shed came back on the return pipe, not via the timeout.
    assert!(started.elapsed() < Duration::from_secs(2));
    assert_eq!(naps.load(Ordering::SeqCst), 0, "handler never ran");
}

/// Graceful drain over live sockets: every admitted request finishes
/// with a full response, connections arriving mid-drain are turned away
/// with 503 + Retry-After, and `shutdown` reports a complete drain.
#[test]
fn draining_host_finishes_admitted_work_and_rejects_new_connections() {
    let router = Router::new();
    router.deploy(
        "Slow",
        Arc::new(|_request: &Request| {
            std::thread::sleep(Duration::from_millis(400));
            Response::ok("text/plain", "done")
        }),
    );
    let server = Arc::new(
        TcpServer::launch_with(0, router, ServerConfig::default()).expect("ephemeral port"),
    );
    let port = server.port();

    const IN_FLIGHT: usize = 3;
    let workers: Vec<_> = (0..IN_FLIGHT)
        .map(|_| {
            std::thread::spawn(move || http_call("127.0.0.1", port, Request::get("/Slow")).unwrap())
        })
        .collect();
    assert!(
        wait_until(Duration::from_secs(2), || {
            server.active_connections() >= IN_FLIGHT
        }),
        "all slow requests are in flight"
    );

    let drainer = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let started = Instant::now();
            (server.shutdown(), started.elapsed())
        })
    };
    assert!(
        wait_until(Duration::from_secs(1), || server.is_draining()),
        "drain mode engaged"
    );

    // A connection arriving mid-drain is refused, with the hint.
    let turned_away = http_call("127.0.0.1", port, Request::get("/Slow")).unwrap();
    assert_eq!(turned_away.status, 503);
    assert!(turned_away.headers.get("Retry-After").is_some());

    for worker in workers {
        let response = worker.join().unwrap();
        assert_eq!(response.status, 200, "admitted work ran to completion");
        assert_eq!(response.body_str(), "done");
    }
    let (drained, drain_took) = drainer.join().unwrap();
    assert!(drained, "in-flight work fit inside the drain deadline");
    assert!(drain_took < ServerConfig::default().drain_deadline);
}

//! The pooled wire path under concurrency: many threads encoding
//! through one process-wide [`wsp_xml::BufPool`] must (a) actually
//! share buffers — observable as pool hits in the telemetry render —
//! and (b) never corrupt each other's output: every wire document
//! stays bit-identical to the unpooled legacy writer's bytes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use wsp_bench::e12::{self, LegacyEnvelope};
use wsp_core::bindings::HttpUddiBinding;
use wsp_core::{telemetry, EventBus, Peer, ServiceQuery};
use wsp_http::{http_call, Request};
use wsp_wsdl::{ServiceDescriptor, Value};
use wsp_xml::BufPool;

const THREADS: usize = 8;

/// Threads hammering encode/decode through the shared pool while each
/// compares every single output against the pre-PR-5 writer's bytes.
/// A pooled buffer leaking state between threads (stale bytes, wrong
/// clear) would break the comparison immediately.
#[test]
fn concurrent_encodes_stay_bit_identical_to_the_legacy_writer() {
    let corpus: Arc<Vec<(String, wsp_soap::Envelope, Vec<u8>)>> = Arc::new(
        e12::corpus()
            .into_iter()
            .map(|(name, envelope)| {
                let legacy = e12::legacy_encode(&LegacyEnvelope::from_current(&envelope));
                (name.to_owned(), envelope, legacy.into_bytes())
            })
            .collect(),
    );
    let before = BufPool::global().stats();
    let mismatches = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let corpus = Arc::clone(&corpus);
            let mismatches = Arc::clone(&mismatches);
            std::thread::spawn(move || {
                let pool = BufPool::global();
                for round in 0..50 {
                    // Rotate entry per thread/round so threads overlap
                    // on different sizes and pool buffers get recycled
                    // across size classes.
                    let (name, envelope, expected) = &corpus[(t + round) % corpus.len()];
                    let wire = envelope.to_xml_bytes();
                    if wire != *expected {
                        eprintln!("thread {t} round {round}: {name} diverged");
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                    // Decode from the pooled bytes, then hand the
                    // buffer back so other threads can hit on it.
                    let xml = std::str::from_utf8(&wire).unwrap();
                    let decoded = wsp_soap::Envelope::from_xml(xml).unwrap();
                    assert_eq!(decoded.payload().is_some(), envelope.payload().is_some());
                    pool.put(wire);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(mismatches.load(Ordering::Relaxed), 0);
    let after = BufPool::global().stats();
    assert!(
        after.hits > before.hits,
        "threads never reused a pooled buffer: {before:?} -> {after:?}"
    );
    assert!(after.returns > before.returns);
    assert!(after.bytes_reused > before.bytes_reused);
}

/// End-to-end: concurrent invokes through one peer over real HTTP, then
/// the pool counters must be visible (and moving) in the `/metrics`
/// scrape — the wire path's pooling is observable, not just internal.
#[test]
fn concurrent_invokes_surface_pool_hits_in_metrics() {
    telemetry::global().set_enabled(true);
    let events = EventBus::new();
    let binding = HttpUddiBinding::with_local_registry(wsp_uddi::Registry::new(), events.clone());
    let peer = Peer::with_event_bus(events);
    peer.attach(&binding);
    peer.server()
        .deploy_and_publish(
            ServiceDescriptor::echo(),
            Arc::new(|_op: &str, args: &[Value]| Ok(args[0].clone())),
        )
        .unwrap();
    let service = peer
        .client()
        .locate_one(&ServiceQuery::by_name("Echo"))
        .unwrap();

    let before = BufPool::global().stats();
    let peer = Arc::new(peer);
    let service = Arc::new(service);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let peer = Arc::clone(&peer);
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                for i in 0..10 {
                    let msg = format!("pooled-{t}-{i}");
                    let out = peer
                        .client()
                        .invoke(&service, "echoString", &[Value::string(&msg)])
                        .unwrap();
                    assert_eq!(out, Value::string(&msg));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let after = BufPool::global().stats();
    assert!(
        after.hits > before.hits,
        "invoke path never hit the pool: {before:?} -> {after:?}"
    );

    // And the counters are scrapeable where operators look for them.
    let port = binding.host_port().expect("deployment launched the host");
    let response = http_call("127.0.0.1", port, Request::get("/metrics")).unwrap();
    assert!(response.is_success());
    let body = response.body_str();
    for needle in [
        "bufpool_hits",
        "bufpool_misses",
        "bufpool_returns",
        "bufpool_bytes_reused",
    ] {
        assert!(body.contains(needle), "missing {needle:?} in:\n{body}");
    }
    let hits_line = body
        .lines()
        .find(|l| l.starts_with("bufpool_hits "))
        .unwrap();
    let rendered_hits: u64 = hits_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(rendered_hits >= after.hits.min(1));
}

//! The seed-sweep tier: population-scale simulations, asserted
//! bit-identical.
//!
//! The ISSUE-7 acceptance bar lives here: one scenario simulates
//! ≥ 100,000 peers in under 60 s wall-clock, and rerunning it under the
//! same `WSP_FAULT_SEED` produces a **bit-identical** event-trace
//! digest — asserted, not documented. The non-ignored tests are the CI
//! smoke subset (`scripts/ci.sh` runs them in release under two seeds
//! with a wall-clock budget); the `#[ignore]`d sweeps run every
//! scenario under eight seeds, twice each:
//!
//! ```text
//! cargo test -q --release -p wsp-integration-tests --test sim_scale -- --ignored
//! ```

use std::time::{Duration, Instant};
use wsp_bench::e14;

/// Seed discipline shared with the fault-injection suite: 2005 (the
/// paper's year) unless `WSP_FAULT_SEED` overrides it.
fn seed() -> u64 {
    std::env::var("WSP_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2005)
}

const SWEEP_SEEDS: [u64; 8] = [2005, 7, 42, 99, 1234, 31337, 0xdead_beef, u64::MAX];

/// The tentpole assertion: a 100k-peer flash crowd finishes fast and
/// reruns bit-identically.
#[test]
fn flash_crowd_100k_is_fast_and_bit_identical() {
    let seed = seed();
    let started = Instant::now();
    let first = e14::flash_crowd(seed, 100_000);
    let one_run = started.elapsed();
    assert!(
        one_run < Duration::from_secs(60),
        "100k-peer flash crowd must simulate in under 60 s, took {one_run:?}"
    );
    assert!(first.peers >= 100_000);
    assert!(
        first.completed as f64 >= 0.99 * 100_000.0,
        "flash crowd at this load should nearly all complete: {}",
        first.completed
    );

    let second = e14::flash_crowd(seed, 100_000);
    assert_eq!(
        first.digest, second.digest,
        "same WSP_FAULT_SEED must give a bit-identical event-trace digest"
    );
    assert_eq!(first.events, second.events);
    assert_eq!(first.completed, second.completed);
    assert_eq!((first.p50_us, first.p99_us), (second.p50_us, second.p99_us));
}

/// Different seeds must actually diverge (a constant digest would pass
/// the identity test vacuously).
#[test]
fn flash_crowd_digest_depends_on_seed() {
    let a = e14::flash_crowd(2005, 5_000);
    let b = e14::flash_crowd(2006, 5_000);
    assert_ne!(a.digest, b.digest);
}

/// Partition smoke: breakers trip in the blackout, recover after the
/// heal, and the run is reproducible.
#[test]
fn partition_heal_smoke_trips_heals_and_reproduces() {
    let seed = seed();
    let sim = e14::partition_heal_sim(seed, 2_000);
    assert!(sim.metrics().counter("e14.trips") > 0);
    assert!(sim.metrics().counter("e14.recoveries") > 0);
    let closed = e14::mesh_closed_breakers(&sim);
    assert!(
        closed as f64 >= 0.95 * 2_000.0,
        "mesh should re-close after heal: {closed}/2000"
    );
    let rerun = e14::partition_heal_sim(seed, 2_000);
    assert_eq!(sim.digest(), rerun.digest());
}

/// Straggler smoke: slow providers fatten the tail, deterministically.
#[test]
fn straggler_smoke_tail_and_determinism() {
    let seed = seed();
    let clean = e14::straggler_sweep(seed, 5_000, 32, 0);
    let slow = e14::straggler_sweep(seed, 5_000, 32, 300);
    assert!(slow.p99_us > clean.p99_us);
    assert_eq!(
        e14::straggler_sweep(seed, 5_000, 32, 300).digest,
        slow.digest
    );
}

// ---------------------------------------------------------------------------
// The #[ignore]d sweep tier: 8 seeds × 2 runs per scenario.
// ---------------------------------------------------------------------------

#[test]
#[ignore = "seed sweep: 8 seeds x 2 runs of a 100k flash crowd"]
fn seed_sweep_flash_crowd() {
    let mut digests = Vec::new();
    for &seed in &SWEEP_SEEDS {
        let a = e14::flash_crowd(seed, 100_000);
        let b = e14::flash_crowd(seed, 100_000);
        assert_eq!(a.digest, b.digest, "seed {seed} must rerun bit-identically");
        digests.push(a.digest);
    }
    digests.sort();
    digests.dedup();
    assert_eq!(digests.len(), SWEEP_SEEDS.len(), "every seed must diverge");
}

#[test]
#[ignore = "seed sweep: 8 seeds x 2 runs of a 20k partition+heal mesh"]
fn seed_sweep_partition_heal() {
    let mut digests = Vec::new();
    for &seed in &SWEEP_SEEDS {
        let a = e14::partition_heal(seed, 20_000);
        let b = e14::partition_heal(seed, 20_000);
        assert_eq!(a.digest, b.digest, "seed {seed} must rerun bit-identically");
        assert!(a.completed > 0);
        digests.push(a.digest);
    }
    digests.sort();
    digests.dedup();
    assert_eq!(digests.len(), SWEEP_SEEDS.len(), "every seed must diverge");
}

#[test]
#[ignore = "seed sweep: 8 seeds x 2 runs of a 50k straggler pool"]
fn seed_sweep_straggler() {
    let mut digests = Vec::new();
    for &seed in &SWEEP_SEEDS {
        let a = e14::straggler_sweep(seed, 50_000, 64, 200);
        let b = e14::straggler_sweep(seed, 50_000, 64, 200);
        assert_eq!(a.digest, b.digest, "seed {seed} must rerun bit-identically");
        digests.push(a.digest);
    }
    digests.sort();
    digests.dedup();
    assert_eq!(digests.len(), SWEEP_SEEDS.len(), "every seed must diverge");
}

#[test]
#[ignore = "10^6-peer flash crowd: ~1 min in release"]
fn million_peer_flash_crowd_reproduces() {
    let seed = seed();
    let a = e14::flash_crowd(seed, 1_000_000);
    assert!(a.peers >= 1_000_000);
    // Overload regime: the single provider cannot absorb 500k arrivals
    // per second, so admission sheds and some clients exhaust their
    // retry budget — but the majority still completes.
    assert!(a.completed as f64 >= 0.5 * 1_000_000.0);
    let b = e14::flash_crowd(seed, 1_000_000);
    assert_eq!(a.digest, b.digest);
}

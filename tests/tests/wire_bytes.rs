//! Wire-byte identity: the single-pass writer (PR 5) must produce
//! byte-for-byte the same output as the pre-PR-5 two-pass writer on
//! every document family the stack puts on the wire — SOAP envelopes,
//! WSDL contracts, UDDI registry messages, and hostile hand-built
//! trees. The old writer is the vendored copy in
//! `wsp_bench::e12_legacy`; trees are deep-converted into its tree
//! model and serialised under an equivalent configuration.

use wsp_bench::e12::{self, to_legacy_element, LegacyEnvelope};
use wsp_bench::e12_legacy as legacy;
use wsp_integration_tests::calc_descriptor;
use wsp_soap::{SOAP_ENV_NS, WSA_NS};
use wsp_uddi::{BindingTemplate, BusinessService, KeyedReference, ServiceQuery};
use wsp_wsdl::{Port, TransportKind, WsdlDocument};
use wsp_xml::{Element, Writer, WriterConfig};

/// Serialise `root` with both writers under the same logical config
/// and assert the bytes agree, for wire and pretty modes.
fn assert_identity(label: &str, root: &Element, prefers: &[(&str, &str)]) {
    let old_root = to_legacy_element(root);
    for pretty in [false, true] {
        let mut new_cfg = if pretty {
            WriterConfig::pretty()
        } else {
            WriterConfig::wire()
        };
        let mut old_cfg = if pretty {
            legacy::writer::WriterConfig::pretty()
        } else {
            legacy::writer::WriterConfig::wire()
        };
        for (ns, prefix) in prefers {
            new_cfg = new_cfg.prefer(*ns, *prefix);
            old_cfg = old_cfg.prefer(*ns, *prefix);
        }
        let new = Writer::new(new_cfg).write(root);
        let old = legacy::writer::Writer::new(old_cfg).write(&old_root);
        assert_eq!(old, new, "{label} (pretty={pretty})");
    }
}

#[test]
fn soap_envelopes_are_byte_identical() {
    for (name, envelope) in e12::corpus() {
        let old = e12::legacy_encode(&LegacyEnvelope::from_current(&envelope));
        let new = envelope.to_xml_bytes();
        assert_eq!(old.as_bytes(), new.as_slice(), "{name}");
    }
}

#[test]
fn wsdl_contracts_are_byte_identical() {
    let doc = WsdlDocument::new(
        calc_descriptor(),
        vec![
            Port {
                name: "CalcHttp".into(),
                transport: TransportKind::Http,
                location: "http://127.0.0.1:9001/services/Calc".into(),
            },
            Port {
                name: "CalcP2ps".into(),
                transport: TransportKind::P2ps,
                location: "p2ps://peer-7/Calc".into(),
            },
        ],
    );
    // The same prefixes WsdlDocument::to_xml uses.
    assert_identity(
        "wsdl definitions",
        &doc.to_element(),
        &[
            ("http://schemas.xmlsoap.org/wsdl/", "wsdl"),
            ("http://schemas.xmlsoap.org/wsdl/soap/", "soap"),
            ("http://www.w3.org/2001/XMLSchema", "xsd"),
        ],
    );
}

#[test]
fn uddi_messages_are_byte_identical() {
    let service = BusinessService::new("svc-1", "biz-9", "Calc")
        .with_description("adds & subtracts <doubles>")
        .with_category(KeyedReference::new("uddi:tmodel:types", "type", "calc"))
        .with_binding(
            BindingTemplate::new("bind-1", "http://127.0.0.1:9001/services/Calc")
                .with_tmodel("uddi:tmodel:http"),
        );
    assert_identity("uddi businessService", &service.to_element(), &[]);

    let query = ServiceQuery::by_name("Calc%");
    assert_identity("uddi find_service", &query.to_element(), &[]);
}

#[test]
fn hostile_documents_are_byte_identical() {
    // Every writer edge the rewrite touched: CDATA with embedded
    // terminators, comments, processing instructions, attribute
    // escaping (quotes, tabs, newlines), text escaping back to back
    // with multi-byte UTF-8, default-namespace children, unprefixed
    // attributes, and a namespace with no preferred prefix (generated
    // ns0/ns1 counters).
    let mut root = Element::build("urn:a", "root")
        .attr(wsp_xml::QName::new("urn:b", "ref"), "x\"y\t<z>\n&€")
        .attr_str("plain", "value")
        .child(
            Element::build("", "unqualified")
                .text("text & <markup> 𐍈é€")
                .finish(),
        )
        .child(
            Element::build("urn:c", "deep")
                .text("x".repeat(300))
                .finish(),
        )
        .finish();
    let mut data = Element::new("urn:a", "data");
    data.children_mut()
        .push(wsp_xml::Node::CData("raw ]]> raw ]]>]]> tail".into()));
    root.push_element(data);
    root.children_mut()
        .push(wsp_xml::Node::Comment("a - comment".into()));
    root.children_mut()
        .push(wsp_xml::Node::ProcessingInstruction {
            target: "target".into(),
            data: "data here".into(),
        });
    assert_identity("hostile tree", &root, &[("urn:a", "a")]);
}

#[test]
fn addressed_fault_envelope_is_byte_identical() {
    use wsp_soap::{Envelope, Fault, FaultCode, MessageHeaders};
    let mut envelope = Envelope::fault(Fault::new(FaultCode::Receiver, "boom & <bust> \"quoted\""));
    envelope.set_addressing(MessageHeaders::request("urn:to", "urn:action"));
    // The fault path goes through Fault::to_element inside
    // Envelope::to_element on both stacks; convert the rendered tree.
    let shell = envelope.to_element();
    assert_identity(
        "fault envelope",
        &shell,
        &[(SOAP_ENV_NS, "env"), (WSA_NS, "wsa")],
    );
}

//! Figures 1 and 2: WSPeer as buffer/interpreter between application
//! and remote services, and the interface tree's event propagation.

use std::sync::Arc;
use wsp_core::bindings::HttpUddiBinding;
use wsp_core::{CollectingListener, EventBus, Peer, ServerPhase, ServiceQuery};
use wsp_integration_tests::{calc_descriptor, calc_handler};
use wsp_uddi::Registry;
use wsp_wsdl::Value;

/// Figure 1: the application talks only to WSPeer data structures; the
/// wire formats (SOAP, WSDL, UDDI records) never surface.
#[test]
fn fig1_application_sees_only_wspeer_structures() {
    let registry = Registry::new();
    let provider = Peer::with_binding(&HttpUddiBinding::with_local_registry(
        registry.clone(),
        EventBus::new(),
    ));
    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();

    let consumer = Peer::with_binding(&HttpUddiBinding::with_local_registry(
        registry,
        EventBus::new(),
    ));
    // The application's whole vocabulary: ServiceQuery in,
    // LocatedService out, Values through.
    let service = consumer
        .client()
        .locate_one(&ServiceQuery::by_name("Calc"))
        .unwrap();
    let sum = consumer
        .client()
        .invoke(&service, "add", &[Value::Double(1.5), Value::Double(2.25)])
        .unwrap();
    assert_eq!(sum, Value::Double(3.75));
    // Typed arrays cross the wire too.
    let joined = consumer
        .client()
        .invoke(
            &service,
            "concat",
            &[Value::Array(vec![
                Value::string("a"),
                Value::string("b"),
                Value::string("c"),
            ])],
        )
        .unwrap();
    assert_eq!(joined, Value::string("abc"));
}

/// Figure 2: every node of the tree fires events that reach the
/// listener registered at the Peer root — deployment, publish,
/// discovery, server (both phases) and client messages, in order.
#[test]
fn fig2_events_propagate_to_root_listener() {
    let registry = Registry::new();
    let events = EventBus::new();
    let listener = CollectingListener::new();
    events.add_listener(listener.clone());

    let binding = HttpUddiBinding::with_local_registry(registry, events.clone());
    let peer = Peer::with_event_bus(events);
    peer.attach(&binding);
    // The binding and the peer share one bus, so the listener hears
    // every node in the tree.

    peer.server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();
    let service = peer
        .client()
        .locate_one(&ServiceQuery::by_name("Calc"))
        .unwrap();
    let _ = peer
        .client()
        .invoke(&service, "add", &[Value::Double(1.0), Value::Double(2.0)])
        .unwrap();

    assert_eq!(
        listener.deployments.read().len(),
        1,
        "ServiceDeployer fired"
    );
    assert_eq!(listener.publishes.read().len(), 1, "ServicePublisher fired");
    assert_eq!(listener.discoveries.read().len(), 1, "ServiceLocator fired");
    assert_eq!(listener.client_messages.read().len(), 1, "Invocation fired");
    let phases: Vec<ServerPhase> = listener
        .server_messages
        .read()
        .iter()
        .map(|e| e.phase)
        .collect();
    assert_eq!(
        phases,
        vec![ServerPhase::Inbound, ServerPhase::Outbound],
        "application notified either side of the messaging engine"
    );
}

/// Runtime re-plugging: replace the locator after construction without
/// disturbing the rest of the tree ("individual nodes in the tree [can]
/// be replaced at runtime").
#[test]
fn components_replaceable_at_runtime() {
    let registry_a = Registry::new();
    let registry_b = Registry::new();
    let binding_a = HttpUddiBinding::with_local_registry(registry_a, EventBus::new());
    let binding_b = HttpUddiBinding::with_local_registry(registry_b, EventBus::new());

    // Publish Calc only into registry B.
    let provider = Peer::with_binding(&binding_b);
    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();

    let consumer = Peer::with_binding(&binding_a);
    assert!(consumer
        .client()
        .locate(&ServiceQuery::by_name("Calc"))
        .unwrap()
        .is_empty());
    // Swap in B's locator: now the same application finds it.
    consumer
        .client()
        .set_locator(wsp_core::Binding::locator(&binding_b));
    assert_eq!(
        consumer
            .client()
            .locate(&ServiceQuery::by_name("Calc"))
            .unwrap()
            .len(),
        1
    );
}

/// The server-side interceptor: the application may answer requests
/// itself, before the messaging engine ("the user [can] intercept these
/// processes" — the reversal of container control).
#[test]
fn application_intercepts_before_engine() {
    let registry = Registry::new();
    let binding = HttpUddiBinding::with_local_registry(registry.clone(), EventBus::new());
    let provider = Peer::with_binding(&binding);
    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();

    // Reach under the hood: install an application-level interceptor on
    // the lightweight host.
    let port = binding.host_port().unwrap();
    let marker = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let seen = marker.clone();
    // The router is reachable through a fresh request — use wsp-http
    // directly to show the interception point exists at the HTTP layer.
    let response = wsp_http::http_call("127.0.0.1", port, wsp_http::Request::get("/")).unwrap();
    assert_eq!(
        response.body_str(),
        "Calc",
        "host lists deployed services at /"
    );
    let _ = seen;
    let _ = marker;
}

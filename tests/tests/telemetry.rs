//! Cross-crate telemetry integration: the histogram agrees with exact
//! order statistics, the container-less host serves `/metrics`, and a
//! faulty multi-attempt invocation is reconstructable from a single
//! correlation id.
//!
//! All tests share the process-wide registry, so they enable it and
//! never disable it, and every assertion keys on names (services,
//! endpoints, correlation tokens) unique to that test.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wsp_core::bindings::HttpUddiBinding;
use wsp_core::telemetry::{self, bucket_bounds, bucket_index};
use wsp_core::{
    Client, EventBus, Invoker, LocatedService, Peer, ResiliencePolicy, ServiceLocator,
    ServiceQuery, Telemetry, WspError,
};
use wsp_http::{http_call, Request};
use wsp_simnet::Summary;
use wsp_wsdl::{ServiceDescriptor, Value, WsdlDocument};

const SEED: u64 = 2005;

// --- histogram vs exact percentiles -----------------------------------------

/// The log-bucketed histogram's nearest-rank percentiles must land in
/// the same bucket as the exact (sorted) nearest-rank percentile — i.e.
/// within one bucket width, which by construction is within 1/16
/// relative error.
#[test]
fn histogram_percentiles_track_exact_summary_within_one_bucket() {
    let registry = Telemetry::new();
    registry.set_enabled(true);
    let mut rng = StdRng::seed_from_u64(SEED);
    for (name, samples) in [
        ("uniform", 10_000usize),
        ("skewed", 5_000),
        ("tiny", 3),
        ("single", 1),
    ] {
        let histogram = registry.histogram(name);
        let mut exact: Vec<u64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let value = match name {
                // Heavy tail: most samples small, occasional huge.
                "skewed" => {
                    if rng.random_bool(0.01) {
                        rng.random_range(1_000_000u64..100_000_000)
                    } else {
                        rng.random_range(1u64..5_000)
                    }
                }
                _ => rng.random_range(0u64..1_000_000),
            };
            histogram.record(value);
            exact.push(value);
        }
        let snapshot = histogram.snapshot();
        let summary = Summary::of(&exact).unwrap();
        assert_eq!(snapshot.count, exact.len() as u64, "{name}");
        for (estimated, truth, label) in [
            (snapshot.p50(), summary.p50, "p50"),
            (snapshot.p90(), summary.p90, "p90"),
            (snapshot.p99(), summary.p99, "p99"),
        ] {
            let truth_bucket = bucket_index(truth);
            assert_eq!(
                bucket_index(estimated),
                truth_bucket,
                "{name}/{label}: {estimated} vs exact {truth}"
            );
            let (low, high) = bucket_bounds(truth_bucket);
            assert!(
                estimated.abs_diff(truth) <= high - low,
                "{name}/{label}: {estimated} more than one bucket from {truth}"
            );
        }
        assert_eq!(snapshot.max, summary.max, "{name}: max is exact");
    }
}

/// Merging per-run snapshots must agree with one histogram that saw
/// all samples — the property that makes cross-seed aggregation sound.
#[test]
fn merged_snapshots_equal_single_histogram_over_union() {
    let registry = Telemetry::new();
    registry.set_enabled(true);
    let combined = registry.histogram("combined");
    let part_a = registry.histogram("part_a");
    let part_b = registry.histogram("part_b");
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    for i in 0..4_000u64 {
        let value = rng.random_range(0u64..1_000_000);
        combined.record(value);
        if i % 2 == 0 {
            part_a.record(value);
        } else {
            part_b.record(value);
        }
    }
    let mut merged = part_a.snapshot();
    merged.merge(&part_b.snapshot());
    let whole = combined.snapshot();
    assert_eq!(merged.count, whole.count);
    assert_eq!(merged.sum, whole.sum);
    assert_eq!(merged.max, whole.max);
    assert_eq!(
        (merged.p50(), merged.p90(), merged.p99()),
        (whole.p50(), whole.p90(), whole.p99()),
    );
}

// --- /metrics over real HTTP ------------------------------------------------

/// Deploy a service on the standard binding, invoke it over real HTTP,
/// then scrape the host's `/metrics` route: the counters, histograms,
/// pool/dispatcher gauges and the trace section must all be there.
#[test]
fn metrics_route_served_by_container_less_host() {
    telemetry::global().set_enabled(true);
    let events = EventBus::new();
    let binding = HttpUddiBinding::with_local_registry(wsp_uddi::Registry::new(), events.clone());
    let peer = Peer::with_event_bus(events);
    peer.attach(&binding);
    peer.server()
        .deploy_and_publish(
            ServiceDescriptor::echo(),
            Arc::new(|_op: &str, args: &[Value]| Ok(args[0].clone())),
        )
        .unwrap();
    let service = peer
        .client()
        .locate_one(&ServiceQuery::by_name("Echo"))
        .unwrap();
    let handle =
        peer.client()
            .invoke_async(service, "echoString", vec![Value::string("observable")]);
    let token = handle.token();
    assert_eq!(handle.wait().unwrap(), Value::string("observable"));

    let port = binding.host_port().expect("deployment launched the host");
    let response = http_call("127.0.0.1", port, Request::get("/metrics")).unwrap();
    assert!(response.is_success());
    let body = response.body_str();
    for needle in [
        "client.invoke_us_count",
        "client.invoke_us_p99",
        "dispatch.run_us_count",
        "server.serve_us_count",
        "http_pool_hits",
        "http_pool_misses",
        "dispatch_submitted",
        "dispatch_workers",
        "# trace (most recent spans)",
    ] {
        assert!(body.contains(needle), "missing {needle:?} in:\n{body}");
    }
    // The invoke above is reconstructable from the scrape alone: its
    // correlation id appears on client- and server-side spans.
    let corr = format!("corr={token}");
    let stages: Vec<&str> = body
        .lines()
        .filter(|l| l.contains(&corr))
        .flat_map(|l| l.split_whitespace().find(|w| w.starts_with("stage=")))
        .collect();
    for stage in [
        "stage=http.request",
        "stage=server.request",
        "stage=server.response",
        "stage=http.response",
        "stage=client.ok",
    ] {
        assert!(stages.contains(&stage), "missing {stage} in {stages:?}");
    }
}

// --- correlated reconstruction under faults ---------------------------------

/// Fails every call to endpoints it was told to poison; echoes
/// otherwise. Counts attempts per endpoint.
struct PartitionedInvoker {
    poisoned: Vec<String>,
    calls: AtomicU32,
}

impl Invoker for PartitionedInvoker {
    fn invoke(
        &self,
        service: &LocatedService,
        _operation: &str,
        args: &[Value],
    ) -> Result<Value, WspError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if self.poisoned.contains(&service.endpoint) {
            Err(WspError::Transport("connection reset".into()))
        } else {
            Ok(args.first().cloned().unwrap_or(Value::Null))
        }
    }
    fn handles(&self, endpoint: &str) -> bool {
        endpoint.starts_with("test://")
    }
    fn kind(&self) -> &'static str {
        "partitioned"
    }
}

struct FixedLocator(Vec<LocatedService>);
impl ServiceLocator for FixedLocator {
    fn locate(&self, _query: &ServiceQuery) -> Result<Vec<LocatedService>, WspError> {
        Ok(self.0.clone())
    }
    fn kind(&self) -> &'static str {
        "fixed"
    }
}

fn service_at(endpoint: &str) -> LocatedService {
    LocatedService::new(
        WsdlDocument::new(ServiceDescriptor::echo(), vec![]),
        endpoint,
        wsp_core::BindingKind::HttpUddi,
    )
}

/// Kill one endpoint until its breaker trips, then make a resilient
/// call: every stage of the multi-attempt invocation — failed attempt,
/// breaker trip, failover, recovery — is reconstructable from the
/// correlation ids in the trace and the `/metrics` text.
#[test]
fn faulty_invocation_reconstructed_from_correlation_ids() {
    let registry = telemetry::global();
    registry.set_enabled(true);
    let dead = "test://telemetry-dead/Echo";
    let alive = "test://telemetry-alive/Echo";
    let events = EventBus::new();
    let client = Client::new(events);
    client.set_locator(Arc::new(FixedLocator(vec![
        service_at(dead),
        service_at(alive),
    ])));
    client.add_invoker(Arc::new(PartitionedInvoker {
        poisoned: vec![dead.to_owned()],
        calls: AtomicU32::new(0),
    }));

    // Trip the dead endpoint's breaker (threshold 3) with no-retry,
    // no-failover calls; remember the call that crossed the threshold.
    let no_retry = ResiliencePolicy::none();
    let mut trip_token = 0;
    for _ in 0..3 {
        let handle = client.invoke_async_with_policy(
            service_at(dead),
            "echoString",
            vec![Value::string("x")],
            no_retry.clone(),
        );
        trip_token = handle.token();
        assert!(handle.wait().is_err());
    }
    let trip_trace = registry.trace_for(trip_token);
    assert!(
        trip_trace
            .iter()
            .any(|e| e.stage == "resilience.breaker_tripped"),
        "third failure trips under its own correlation id: {trip_trace:?}"
    );

    // The resilient call: rejected by the open breaker, fails over to
    // the healthy endpoint, succeeds on attempt two.
    let policy = ResiliencePolicy::retrying(4).with_backoff(Duration::ZERO, 1.0, Duration::ZERO);
    let handle = client.invoke_async_with_policy(
        service_at(dead),
        "echoString",
        vec![Value::string("rerouted")],
        policy,
    );
    let token = handle.token();
    assert_eq!(handle.wait().unwrap(), Value::string("rerouted"));

    let stages: Vec<&'static str> = registry.trace_for(token).iter().map(|e| e.stage).collect();
    for stage in [
        "resilience.attempt_failed",
        "resilience.failed_over",
        "client.ok",
    ] {
        assert!(stages.contains(&stage), "missing {stage} in {stages:?}");
    }
    // And the same story is visible in the rendered /metrics text:
    // per-endpoint attempt counters plus the correlated trace lines.
    let rendered = telemetry::render_metrics(registry);
    assert!(rendered.contains(&format!("client.attempts{{endpoint={dead}}}")));
    assert!(rendered.contains(&format!("client.attempts{{endpoint={alive}}}")));
    assert!(rendered.contains("breaker.trips"));
    let corr = format!("corr={token}");
    assert!(
        rendered.lines().any(|l| l.contains(&corr)),
        "trace lines for the call present in /metrics output"
    );
}

// --- concurrent scrape under overload ----------------------------------------

/// Scraper threads render the `/metrics` text and take histogram
/// snapshots continuously while burst threads hammer an admission
/// controller past its limits. Every observation must be internally
/// consistent — counts never move backwards, percentile estimates stay
/// inside the recorded value range — and the final admitted/shed split
/// accounts for every attempt. Guards against torn reads in the
/// lock-free counters and histogram buckets.
#[test]
fn metrics_scrape_is_consistent_during_overload_burst() {
    use std::sync::atomic::AtomicBool;
    use wsp_core::{AdmissionController, LoadShedPolicy};

    let registry = telemetry::global();
    registry.set_enabled(true);
    // Register the admission counters up front so every scrape sees
    // them, then remember the baseline (other tests share the registry).
    let admitted_counter = registry.counter("admission.admitted");
    let shed_counter = registry.counter("admission.shed");
    let admitted_before = admitted_counter.get();
    let shed_before = shed_counter.get();

    // Queue cap 8; every 4th attempt reports a deep queue and must be
    // shed deterministically. In-flight cap 4 with 4 single-permit
    // threads means the rest are admitted deterministically.
    let controller = Arc::new(AdmissionController::new(LoadShedPolicy::bounded(4, 8)));
    let histogram = registry.histogram("overload_scrape_us");
    let stop = Arc::new(AtomicBool::new(false));

    const BURST_THREADS: usize = 4;
    const ATTEMPTS_PER_THREAD: usize = 500;
    let mut workers = Vec::new();
    for t in 0..BURST_THREADS {
        let controller = Arc::clone(&controller);
        let histogram = Arc::clone(&histogram);
        workers.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(SEED ^ (t as u64 + 11));
            let mut admitted = 0usize;
            for attempt in 0..ATTEMPTS_PER_THREAD {
                let queue_depth = if attempt % 4 == 3 { 64 } else { 0 };
                match controller.try_admit(queue_depth, None) {
                    Ok(_permit) => {
                        admitted += 1;
                        histogram.record(rng.random_range(1u64..50_000));
                        std::thread::yield_now();
                    }
                    Err(WspError::Overloaded { retry_after_ms }) => {
                        assert!(retry_after_ms.is_some(), "every shed carries a hint");
                    }
                    Err(other) => panic!("unexpected admission error: {other}"),
                }
            }
            admitted
        }));
    }

    const SCRAPERS: usize = 3;
    let mut scrapers = Vec::new();
    for _ in 0..SCRAPERS {
        let stop = Arc::clone(&stop);
        let histogram = Arc::clone(&histogram);
        scrapers.push(std::thread::spawn(move || {
            let registry = telemetry::global();
            let mut last_histogram_count = 0u64;
            let mut last_admitted = 0u64;
            let mut scrapes = 0usize;
            while !stop.load(Ordering::SeqCst) {
                let snapshot = histogram.snapshot();
                assert!(
                    snapshot.count >= last_histogram_count,
                    "histogram count went backwards: {} < {last_histogram_count}",
                    snapshot.count
                );
                last_histogram_count = snapshot.count;
                if snapshot.count > 0 {
                    assert!(snapshot.p50() <= snapshot.p99(), "percentiles ordered");
                    assert!(snapshot.max < 50_000, "max within the recorded range");
                    assert!(snapshot.sum >= snapshot.count, "every sample is >= 1");
                    let (_, high) = bucket_bounds(bucket_index(snapshot.max));
                    assert!(
                        snapshot.p99() <= high,
                        "p99 {} above the max bucket {high}",
                        snapshot.p99()
                    );
                }
                let rendered = telemetry::render_metrics(registry);
                let admitted_now = rendered
                    .lines()
                    .find_map(|line| {
                        let mut parts = line.split_whitespace();
                        (parts.next() == Some("admission.admitted"))
                            .then(|| parts.next())
                            .flatten()
                    })
                    .and_then(|value| value.parse::<u64>().ok())
                    .expect("admission.admitted rendered on every scrape");
                assert!(
                    admitted_now >= last_admitted,
                    "admitted counter went backwards: {admitted_now} < {last_admitted}"
                );
                last_admitted = admitted_now;
                scrapes += 1;
            }
            scrapes
        }));
    }

    let locally_admitted: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    stop.store(true, Ordering::SeqCst);
    for scraper in scrapers {
        assert!(scraper.join().unwrap() > 0, "scraper observed the burst");
    }

    let total = BURST_THREADS * ATTEMPTS_PER_THREAD;
    let deterministic_sheds = total / 4;
    assert_eq!(locally_admitted, total - deterministic_sheds);
    assert_eq!(histogram.snapshot().count, locally_admitted as u64);
    assert!(admitted_counter.get() - admitted_before >= locally_admitted as u64);
    assert!(shed_counter.get() - shed_before >= deterministic_sheds as u64);
}

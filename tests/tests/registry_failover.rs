//! The replicated discovery plane driven end-to-end: committed
//! registrations surviving a primary crash, versioned shard-map
//! redirects refreshing stale clients over both real bindings (SOAP
//! over HTTP and SOAP over a P2PS pipe), and lease expiry pinned to the
//! logical clock so seeded runs replay bit-identically.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;
use wsp_p2ps::{pipe_call, P2psMessage, PeerId, PipeAdvertisement, PipeTcpConfig, PipeTcpServer};
use wsp_registry::{ClusterConfig, LeaseTrace, RegistryCluster, RegistryError, ShardedUddiClient};
use wsp_simnet::{Dur, Time};
use wsp_soap::Envelope;
use wsp_uddi::client::{http_transport, SoapTransport};
use wsp_uddi::{BusinessService, ServiceQuery};

fn fault_seed() -> u64 {
    std::env::var("WSP_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2005)
}

fn test_cluster() -> RegistryCluster {
    RegistryCluster::new(ClusterConfig {
        nodes: 6,
        shard_count: 4,
        replication: 3,
        default_ttl: None,
    })
}

fn svc(name: &str) -> BusinessService {
    BusinessService::new("", "uddi:wspeer:itest", name)
}

/// A client whose breakers re-probe immediately: these tests crash and
/// revive nodes faster than any wall-clock cooldown.
fn eager_client(transports: Vec<SoapTransport>) -> ShardedUddiClient {
    ShardedUddiClient::connect(transports)
        .expect("bootstrap shard map")
        .with_breaker_config(wsp_core::health::BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::ZERO,
        })
}

#[test]
fn committed_registrations_survive_the_primary_crash() {
    let cluster = test_cluster();
    let client = eager_client((0..6).map(|n| cluster.node_transport(n)).collect());

    let mut acked = Vec::new();
    for i in 0..12 {
        let name = format!("svc-{i}");
        acked.push(client.publish(&svc(&name)).expect("publish acked"));
    }

    // Crash the primary of the shard that owns svc-0.
    let map = cluster.shard_map();
    let shard = map.shard_of("svc-0");
    let epoch_before = client.cached_epoch();
    cluster.crash(map.shard(shard).primary());

    // Writes fail over (driving the view change); afterwards every
    // acked registration is still locatable — zero lost commits.
    let republished = client.publish(&acked[0]).expect("failover publish");
    assert_eq!(republished.key, acked[0].key, "same record, same key");
    assert!(
        client.cached_epoch() > epoch_before,
        "the view change bumped the shard-map epoch"
    );
    for record in &acked {
        let found = client
            .locate(&ServiceQuery::by_name(&record.name))
            .expect("locate through the degraded plane");
        assert!(
            found.iter().any(|s| s.key == record.key),
            "{} lost after primary crash",
            record.name
        );
    }
}

#[test]
fn quorum_loss_is_an_error_not_a_lie() {
    let cluster = test_cluster();
    let client = eager_client((0..6).map(|n| cluster.node_transport(n)).collect());
    let record = client.publish(&svc("lonely")).expect("publish");

    // Kill every member of the owning shard: the plane must refuse the
    // write, not pretend it committed.
    let map = cluster.shard_map();
    let shard = map.shard_of("lonely");
    for &m in &map.shard(shard).members {
        cluster.crash(m);
    }
    match client.publish(&record) {
        Err(RegistryError::Unavailable(_)) => {}
        other => panic!("expected Unavailable, got {other:?}"),
    }
}

/// HTTP binding: each cluster node mounted behind a real TCP server,
/// the client talking SOAP-over-HTTP through the full codecs. A second
/// client with a stale cached map gets the versioned redirect, refreshes
/// and completes without surfacing an error.
#[test]
fn stale_epoch_client_refreshes_over_http() {
    let cluster = test_cluster();
    let mut servers = Vec::new();
    let mut transports: Vec<SoapTransport> = Vec::new();
    for n in 0..6 {
        let router = wsp_http::Router::new();
        router.deploy("uddi", cluster.node_http_handler(n));
        let server = wsp_http::TcpServer::launch(0, router).expect("launch node host");
        transports.push(http_transport(server.service_uri("uddi")));
        servers.push(server);
    }

    let writer = eager_client(transports.clone());
    let reader = eager_client(transports);
    let record = writer.publish(&svc("http-svc")).expect("publish over http");

    // Crash the owning shard's primary and force a view change through
    // the writer. The reader's cached map is now a stale epoch.
    let map = cluster.shard_map();
    let shard = map.shard_of("http-svc");
    cluster.crash(map.shard(shard).primary());
    writer.publish(&record).expect("failover over http");
    let stale_epoch = reader.cached_epoch();
    assert!(
        stale_epoch < cluster.shard_map().epoch(),
        "reader must actually be stale for this test to mean anything"
    );

    // The reader's stamped locate hits the bumped plane, eats the
    // versioned redirect, adopts the fresh map and still answers.
    let found = reader
        .locate(&ServiceQuery::by_name("http-svc"))
        .expect("stale reader completes after redirect");
    assert!(found.iter().any(|s| s.key == record.key));
    assert!(
        reader.cached_epoch() > stale_epoch,
        "the redirect refreshed the reader's map"
    );

    for server in servers {
        server.shutdown();
    }
}

/// P2PS binding: the same cluster nodes reachable only through framed
/// P2PS pipes (`PipeData` carrying SOAP envelopes), proving the
/// discovery plane is binding-agnostic exactly like the paper's hosting
/// claim. The stale-epoch redirect dance must work here too.
#[test]
fn stale_epoch_client_refreshes_over_p2ps() {
    let cluster = test_cluster();
    let peer = PeerId::random(&mut StdRng::seed_from_u64(fault_seed()));
    let mut servers = Vec::new();
    let mut transports: Vec<SoapTransport> = Vec::new();
    for n in 0..6 {
        let cluster_n = cluster.clone();
        let server = PipeTcpServer::launch(
            "127.0.0.1:0",
            move |message| match message {
                P2psMessage::PipeData { to, payload } => {
                    if !cluster_n.is_up(n) {
                        return None;
                    }
                    let envelope = Envelope::from_xml(&payload).ok()?;
                    Some(P2psMessage::PipeData {
                        to,
                        payload: cluster_n.process(n, &envelope).to_xml(),
                    })
                }
                _ => None,
            },
            PipeTcpConfig::default(),
        )
        .expect("launch pipe host");
        let addr = server.addr();
        let pipe = PipeAdvertisement::new(peer, Some("uddi".into()), format!("registry-{n}"));
        transports.push(Arc::new(move |request: &Envelope| {
            let message = P2psMessage::PipeData {
                to: pipe.clone(),
                payload: request.to_xml(),
            };
            // A down node never replies; the read timeout is the
            // client's only failure signal, so keep it short.
            let reply = pipe_call(addr, &message, Duration::from_millis(400))
                .map_err(|e| format!("pipe error: {e}"))?;
            match reply {
                P2psMessage::PipeData { payload, .. } => {
                    Envelope::from_xml(&payload).map_err(|e| e.to_string())
                }
                other => Err(format!("unexpected pipe reply: {other:?}")),
            }
        }));
        servers.push(server);
    }

    let writer = eager_client(transports.clone());
    let reader = eager_client(transports);
    let record = writer.publish(&svc("p2ps-svc")).expect("publish over p2ps");

    let map = cluster.shard_map();
    let shard = map.shard_of("p2ps-svc");
    cluster.crash(map.shard(shard).primary());
    writer.publish(&record).expect("failover over p2ps");
    let stale_epoch = reader.cached_epoch();
    assert!(stale_epoch < cluster.shard_map().epoch());

    let found = reader
        .locate(&ServiceQuery::by_name("p2ps-svc"))
        .expect("stale reader completes after redirect");
    assert!(found.iter().any(|s| s.key == record.key));
    assert!(reader.cached_epoch() > stale_epoch);

    for server in servers {
        server.shutdown();
    }
}

/// One seeded lease run: publish with short TTLs, refresh the evens
/// through a mid-run primary crash, let the odds lapse, and return every
/// shard's lease trace.
fn lease_run(seed: u64) -> Vec<Vec<LeaseTrace>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cluster = RegistryCluster::new(ClusterConfig {
        nodes: 6,
        shard_count: 4,
        replication: 3,
        default_ttl: Some(Dur::millis(50)),
    });
    let client = eager_client((0..6).map(|n| cluster.node_transport(n)).collect());
    let mut saved = Vec::new();
    for i in 0..10 {
        saved.push(
            client
                .publish(&svc(&format!("lease-{i}")))
                .expect("publish"),
        );
    }
    // Walk virtual time in seeded steps; refresh evens while they are
    // still alive, crash/revive a seeded node midway.
    let mut now = 0u64;
    for round in 0..6 {
        now += rng.random_range(5u64..20);
        cluster.advance_to(Time::millis(now));
        if round == 2 {
            cluster.crash(rng.random_range(0..6));
        }
        if round == 4 {
            for n in 0..6 {
                cluster.restart(n);
            }
        }
        for record in saved.iter().step_by(2) {
            let _ = client.publish(record);
        }
    }
    cluster.advance_to(Time::millis(now + 200));
    (0..4).map(|s| cluster.lease_trace(s)).collect()
}

#[test]
fn lease_expiry_replays_bit_identically_under_one_seed() {
    let seed = fault_seed();
    let first = lease_run(seed);
    let second = lease_run(seed);
    assert_eq!(first, second, "same seed, same lease trace");
    let expiries: usize = first
        .iter()
        .flatten()
        .filter(|t| matches!(t.action, wsp_registry::LeaseAction::Expired))
        .count();
    assert!(
        expiries > 0,
        "the run must actually shed unrefreshed leases for the pin to bite"
    );
}

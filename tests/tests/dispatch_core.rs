//! Stress and isolation tests for the shared dispatch core: the
//! worker pool, correlation table and event bus under concurrent load,
//! backpressure and misbehaving listeners.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wsp_core::{
    Client, ClientMessageEvent, CollectingListener, DeliveryMode, Dispatcher, DispatcherConfig,
    EventBus, Invoker, LocatedService, PeerMessageListener, WspError,
};
use wsp_wsdl::{ServiceDescriptor, Value, WsdlDocument};

struct EchoInvoker;
impl Invoker for EchoInvoker {
    fn invoke(
        &self,
        _service: &LocatedService,
        _operation: &str,
        args: &[Value],
    ) -> Result<Value, WspError> {
        Ok(args.first().cloned().unwrap_or(Value::Null))
    }
    fn handles(&self, endpoint: &str) -> bool {
        endpoint.starts_with("test://")
    }
    fn kind(&self) -> &'static str {
        "test"
    }
}

fn test_service() -> LocatedService {
    LocatedService::new(
        WsdlDocument::new(ServiceDescriptor::echo(), vec![]),
        "test://somewhere/Echo",
        wsp_core::BindingKind::HttpUddi,
    )
}

/// The acceptance stress: at least 1000 invocations through a pool of
/// at least 4 workers, issued from several application threads at
/// once. Every token must complete exactly once, with the right
/// result, and the dispatcher's books must balance.
#[test]
fn thousand_concurrent_invocations_complete_exactly_once() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 150; // 1200 total

    let events = EventBus::new();
    let per_token = Arc::new(Mutex::new(HashMap::<u64, usize>::new()));
    struct CountPerToken(Arc<Mutex<HashMap<u64, usize>>>);
    impl PeerMessageListener for CountPerToken {
        fn on_client_message(&self, event: &ClientMessageEvent) {
            *self.0.lock().entry(event.token).or_insert(0) += 1;
        }
    }
    events.add_listener(Arc::new(CountPerToken(per_token.clone())));

    let dispatcher = Dispatcher::new(DispatcherConfig {
        workers: 4,
        queue_capacity: 64,
    });
    let client = Client::with_dispatcher(events, dispatcher);
    client.add_invoker(Arc::new(EchoInvoker));

    let mut app_threads = Vec::new();
    for thread_index in 0..THREADS {
        let client = client.clone();
        app_threads.push(std::thread::spawn(move || {
            let mut outcomes = Vec::with_capacity(PER_THREAD);
            for call_index in 0..PER_THREAD {
                let payload = format!("t{thread_index}c{call_index}");
                let handle = client.invoke_async(
                    test_service(),
                    "echoString",
                    vec![Value::string(payload.clone())],
                );
                outcomes.push((handle, payload));
            }
            outcomes
                .into_iter()
                .map(|(handle, payload)| {
                    let token = handle.token();
                    let result = handle.wait().expect("echo succeeds");
                    assert_eq!(result, Value::string(payload));
                    token
                })
                .collect::<Vec<u64>>()
        }));
    }

    let mut all_tokens = Vec::new();
    for thread in app_threads {
        all_tokens.extend(thread.join().expect("application thread panicked"));
    }
    client.dispatcher().flush();

    assert_eq!(all_tokens.len(), THREADS * PER_THREAD);
    let mut deduped = all_tokens.clone();
    deduped.sort_unstable();
    deduped.dedup();
    assert_eq!(
        deduped.len(),
        all_tokens.len(),
        "correlation tokens must be unique"
    );

    let per_token = per_token.lock();
    for token in &all_tokens {
        assert_eq!(
            per_token.get(token),
            Some(&1),
            "token {token} must complete exactly once"
        );
    }

    let stats = client.dispatcher().stats();
    assert_eq!(stats.workers, 4);
    assert!(stats.submitted >= (THREADS * PER_THREAD) as u64);
    assert_eq!(stats.submitted, stats.completed, "books balance: {stats:?}");
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.in_flight, 0);
    assert!(
        client.dispatcher().pending_tokens().is_empty(),
        "table fully drained"
    );
}

/// A queue smaller than the burst: `try_submit` must reject with a
/// Dispatch error rather than block or drop silently, and blocking
/// submits must drain through by helping.
#[test]
fn bounded_queue_pushes_back() {
    let dispatcher = Dispatcher::new(DispatcherConfig {
        workers: 1,
        queue_capacity: 4,
    });
    let gate = Arc::new(AtomicUsize::new(0));
    // Pin the single worker down, and wait until it has actually
    // dequeued the blocker so the burst below sees the full queue.
    let blocker = {
        let gate = gate.clone();
        dispatcher
            .submit(move || {
                while gate.load(Ordering::SeqCst) == 0 {
                    std::thread::yield_now();
                }
            })
            .unwrap()
    };
    while dispatcher.stats().in_flight == 0 {
        std::thread::yield_now();
    }

    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut bad_reason = None;
    let mut handles = Vec::new();
    for n in 0..64u32 {
        match dispatcher.try_submit(move || n) {
            Ok(handle) => {
                accepted += 1;
                handles.push(handle);
            }
            Err(WspError::Dispatch(reason)) => {
                if !reason.contains("full") {
                    bad_reason = Some(reason);
                }
                rejected += 1;
            }
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }

    // Release the worker before asserting — a failed assert while it
    // is still pinned would wedge the dispatcher's drop/join.
    gate.store(1, Ordering::SeqCst);
    blocker.wait();
    for handle in handles {
        handle.wait();
    }

    assert_eq!(
        bad_reason, None,
        "backpressure must be reported as a full queue"
    );
    assert!(
        rejected > 0,
        "64 try_submits cannot all fit in a 4-slot queue"
    );
    assert!(accepted >= 4, "the queue capacity itself must be usable");
    // flush() waits for job bookkeeping, not just result delivery.
    dispatcher.flush();
    let stats = dispatcher.stats();
    assert_eq!(stats.submitted, stats.completed);
}

/// A panicking listener must neither kill delivery to other listeners
/// nor take down the worker pool; a re-entrant listener (firing events
/// and registering listeners from inside a callback) must not deadlock.
#[test]
fn hostile_listeners_do_not_break_the_pipeline() {
    struct Bomb;
    impl PeerMessageListener for Bomb {
        fn on_client_message(&self, _: &ClientMessageEvent) {
            panic!("listener bug");
        }
    }
    struct Reentrant {
        bus: EventBus,
        nested: Arc<AtomicUsize>,
    }
    impl PeerMessageListener for Reentrant {
        fn on_client_message(&self, event: &ClientMessageEvent) {
            // Re-enter the bus from inside delivery: add a listener and
            // fire a different event kind.
            self.bus.add_listener(CollectingListener::new());
            self.bus.fire_deployment(&wsp_core::DeploymentMessageEvent {
                service: event.service.clone(),
                endpoints: vec![],
            });
            self.nested.fetch_add(1, Ordering::SeqCst);
        }
    }

    let events = EventBus::new();
    let nested = Arc::new(AtomicUsize::new(0));
    let after = CollectingListener::new();
    events.add_listener(Arc::new(Bomb));
    events.add_listener(Arc::new(Reentrant {
        bus: events.clone(),
        nested: nested.clone(),
    }));
    events.add_listener(after.clone());

    let client = Client::new(events.clone());
    client.add_invoker(Arc::new(EchoInvoker));

    for i in 0..10 {
        let out = client
            .invoke(
                &test_service(),
                "echoString",
                &[Value::string(format!("v{i}"))],
            )
            .expect("pipeline survives hostile listeners");
        assert_eq!(out, Value::string(format!("v{i}")));
    }

    assert_eq!(
        events.listener_panics(),
        10,
        "each delivery isolated one panic"
    );
    assert_eq!(
        nested.load(Ordering::SeqCst),
        10,
        "re-entrant listener ran every time"
    );
    assert_eq!(
        after.client_messages.read().len(),
        10,
        "listeners after the bomb still ran"
    );
    client.dispatcher().flush();
    let stats = client.dispatcher().stats();
    assert_eq!(
        stats.failed, 0,
        "listener panics never count as job failures"
    );
    assert_eq!(stats.submitted, stats.completed);
}

/// Queued delivery defers all callbacks to flush(), giving tests a
/// deterministic barrier even for events fired from pool workers.
#[test]
fn queued_delivery_with_flush_barrier() {
    let events = EventBus::new();
    events.set_delivery_mode(DeliveryMode::Queued);
    let listener = CollectingListener::new();
    events.add_listener(listener.clone());

    let client = Client::new(events.clone());
    client.add_invoker(Arc::new(EchoInvoker));

    let handles: Vec<_> = (0..16)
        .map(|i| {
            client.invoke_async(
                test_service(),
                "echoString",
                vec![Value::string(format!("q{i}"))],
            )
        })
        .collect();
    // Wait for the jobs themselves (results flow through handles even
    // though no event has been delivered yet).
    client.dispatcher().flush();
    assert_eq!(listener.total(), 0, "queued mode defers listener callbacks");
    events.flush();
    assert_eq!(listener.client_messages.read().len(), 16);
    for handle in handles {
        let token = handle.token();
        assert!(
            listener.client_message_for(token).is_some(),
            "event for token {token}"
        );
        handle.wait().unwrap();
    }
}

/// `wait_timeout` hands the handle back on timeout; `cancel` settles
/// the call so a late completion is dropped, and the cancellation is
/// visible in the stats.
#[test]
fn timeout_and_cancel_round_trip() {
    let dispatcher = Dispatcher::new(DispatcherConfig {
        workers: 2,
        queue_capacity: 16,
    });
    let (handle, completer) = dispatcher.register::<u32>(dispatcher.next_token());
    let handle = handle
        .wait_timeout(Duration::from_millis(20))
        .expect_err("nothing completes the call yet");
    assert!(handle.cancel());
    assert!(!completer.complete(1), "completion after cancel is dropped");
    assert_eq!(dispatcher.stats().cancelled, 1);
}

//! The mediation gateway end-to-end: real backends behind real TCP
//! servers, the sharded registry cluster as the discovery plane, and
//! the gateway fronting both — caching, fair-share admission, routing
//! and failover driven through the public bindings.
//!
//! The fault scenarios are seeded (`WSP_FAULT_SEED`, default 2005) so
//! CI replays the same crash/flood schedule bit-identically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wsp_core::overload::{KeyedLoadShedPolicy, RETRY_AFTER_MS_HEADER, TENANT_HEADER};
use wsp_core::telemetry;
use wsp_gateway::{Gateway, GatewayCacheConfig, GatewayConfig, GatewayError};
use wsp_http::{http_call_uri, Request, Response, Router, TcpServer};
use wsp_p2ps::{pipe_call, P2psMessage, PeerId, PipeAdvertisement};
use wsp_registry::{ClusterConfig, RegistryCluster, ShardedUddiClient};
use wsp_soap::{Envelope, HeaderBlock};
use wsp_uddi::{BindingTemplate, BusinessService};
use wsp_xml::Element;

fn fault_seed() -> u64 {
    std::env::var("WSP_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2005)
}

fn test_cluster() -> RegistryCluster {
    RegistryCluster::new(ClusterConfig {
        nodes: 6,
        shard_count: 4,
        replication: 3,
        default_ttl: None,
    })
}

fn eager_client(cluster: &RegistryCluster) -> ShardedUddiClient {
    ShardedUddiClient::connect((0..6).map(|n| cluster.node_transport(n)).collect())
        .expect("bootstrap shard map")
        .with_breaker_config(wsp_core::health::BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::ZERO,
        })
}

/// A backend serving `service`: answers any POST with a SOAP envelope
/// wrapping `marker`, counting hits. Returns the server and the access
/// point to register.
fn backend(service: &str, marker: &str) -> (TcpServer, String, Arc<AtomicU64>) {
    let hits = Arc::new(AtomicU64::new(0));
    let marker = marker.to_owned();
    let counted = Arc::clone(&hits);
    let router = Router::new();
    router.deploy(
        service,
        Arc::new(move |_req: &Request| {
            counted.fetch_add(1, Ordering::SeqCst);
            let reply = Envelope::request(
                Element::build("urn:itest", "reply")
                    .text(marker.clone())
                    .finish(),
            );
            Response::ok("application/soap+xml; charset=utf-8", reply.to_xml())
        }),
    );
    let server = TcpServer::launch(0, router).expect("launch backend");
    let uri = server.service_uri(service);
    (server, uri, hits)
}

fn publish(client: &ShardedUddiClient, service: &str, access_points: &[&str]) -> BusinessService {
    let mut svc = BusinessService::new("", "uddi:wspeer:gwtest", service);
    for (i, ap) in access_points.iter().enumerate() {
        svc = svc.with_binding(BindingTemplate::new(format!("binding-{i}"), *ap));
    }
    client.publish(&svc).expect("publish backend bindings")
}

fn soap_request(text: &str) -> Vec<u8> {
    Envelope::request(Element::build("urn:itest", "ask").text(text).finish())
        .to_xml()
        .into_bytes()
}

fn reply_text(body: &[u8]) -> String {
    let envelope = Envelope::from_xml(std::str::from_utf8(body).unwrap()).unwrap();
    envelope.payload().map(|p| p.text()).unwrap_or_default()
}

// ---------------------------------------------------------------------------
// Caching
// ---------------------------------------------------------------------------

/// An idempotent operation is served from the response cache on the
/// second byte-equal request — byte-identical to the first reply, with
/// the backend untouched.
#[test]
fn idempotent_responses_replay_byte_identically_without_the_backend() {
    let cluster = test_cluster();
    let (server, uri, hits) = backend("EchoCache", "cached-v1");
    publish(&eager_client(&cluster), "EchoCache", &[&uri]);

    let gateway = Gateway::new(
        eager_client(&cluster),
        GatewayConfig::default().idempotent("EchoCache", "*"),
    );
    let request = soap_request("same-bytes");
    let first = gateway
        .invoke("tenant-a", "EchoCache", &request, None)
        .expect("first call reaches the backend");
    assert!(!first.cached);
    assert_eq!(hits.load(Ordering::SeqCst), 1);

    let second = gateway
        .invoke("tenant-a", "EchoCache", &request, None)
        .expect("second call");
    assert!(second.cached, "byte-equal request must hit the cache");
    assert_eq!(
        second.body, first.body,
        "cache hits are byte-identical to the backend reply"
    );
    assert_eq!(hits.load(Ordering::SeqCst), 1, "the backend saw one call");

    // A different request body is a different cache identity.
    let other = soap_request("different-bytes");
    let third = gateway
        .invoke("tenant-a", "EchoCache", &other, None)
        .expect("third call");
    assert!(!third.cached);
    assert_eq!(hits.load(Ordering::SeqCst), 2);
    server.shutdown();
}

/// TTL expiry backstops the response cache: after the TTL the same
/// bytes go back to the backend.
#[test]
fn response_ttl_expiry_returns_to_the_backend() {
    let cluster = test_cluster();
    let (server, uri, hits) = backend("EchoTtl", "ttl-v1");
    publish(&eager_client(&cluster), "EchoTtl", &[&uri]);

    let gateway = Gateway::new(
        eager_client(&cluster),
        GatewayConfig::default()
            .idempotent("EchoTtl", "*")
            .with_cache(GatewayCacheConfig {
                response_ttl: Duration::from_millis(40),
                ..GatewayCacheConfig::default()
            }),
    );
    let request = soap_request("ttl-bytes");
    gateway
        .invoke("t", "EchoTtl", &request, None)
        .expect("fill the cache");
    assert!(
        gateway
            .invoke("t", "EchoTtl", &request, None)
            .expect("hit")
            .cached
    );
    std::thread::sleep(Duration::from_millis(80));
    let after = gateway
        .invoke("t", "EchoTtl", &request, None)
        .expect("after TTL");
    assert!(!after.cached, "the TTL must expire the entry");
    assert_eq!(hits.load(Ordering::SeqCst), 2);
    server.shutdown();
}

/// The acceptance bar for invalidation-on-republish: with TTLs far
/// longer than the test, a republish that moves the service to a new
/// backend reaches gateway clients on the next data-version probe —
/// the cached route is dropped without waiting out any TTL.
#[test]
fn republish_reaches_gateway_clients_without_waiting_out_the_ttl() {
    let cluster = test_cluster();
    let (old_server, old_uri, old_hits) = backend("Movable", "v1");
    let (new_server, new_uri, new_hits) = backend("Movable", "v2");
    let writer = eager_client(&cluster);
    let mut record = publish(&writer, "Movable", &[&old_uri]);

    let gateway = Gateway::new(
        eager_client(&cluster),
        GatewayConfig::default()
            // Hour-long TTLs: if invalidation relied on expiry, this
            // test could never pass.
            .with_cache(GatewayCacheConfig {
                locate_ttl: Duration::from_secs(3600),
                wsdl_ttl: Duration::from_secs(3600),
                response_ttl: Duration::from_secs(3600),
                response_capacity: 64,
            })
            .with_revalidate_interval(Duration::ZERO),
    );
    let request = soap_request("which-backend");
    let first = gateway
        .invoke("t", "Movable", &request, None)
        .expect("route to the original backend");
    assert_eq!(reply_text(&first.body), "v1");
    assert_eq!(gateway.caches().locate_entries(), 1, "route cached");

    // Republish: the same record, rebound to the new backend. The
    // registry bumps the owning shard's data version on commit.
    record.bindings = vec![BindingTemplate::new("binding-0", new_uri.clone())];
    writer
        .publish(&record)
        .expect("republish onto the new backend");

    let second = gateway
        .invoke("t", "Movable", &request, None)
        .expect("route after republish");
    assert_eq!(
        reply_text(&second.body),
        "v2",
        "the republished binding must be served without waiting out the TTL"
    );
    assert_eq!(old_hits.load(Ordering::SeqCst), 1);
    assert_eq!(new_hits.load(Ordering::SeqCst), 1);
    old_server.shutdown();
    new_server.shutdown();
}

// ---------------------------------------------------------------------------
// Routing and failover
// ---------------------------------------------------------------------------

/// Seeded backend-crash matrix: one of the registered backends dies;
/// the gateway's failover loop records the breaker outcome and answers
/// from the survivor on the same request.
#[test]
fn backend_crash_fails_over_to_the_survivor() {
    let _seed = fault_seed(); // one deterministic schedule; no randomness needed here
    let cluster = test_cluster();
    let (doomed, doomed_uri, _) = backend("Calc", "doomed");
    let (survivor, survivor_uri, survivor_hits) = backend("Calc", "survivor");
    publish(
        &eager_client(&cluster),
        "Calc",
        &[&doomed_uri, &survivor_uri],
    );

    let gateway = Gateway::new(eager_client(&cluster), GatewayConfig::default());
    let failovers_before = telemetry::global()
        .counter("gateway.backend.failovers")
        .get();

    // Crash the first backend before any traffic: the first pick (tie
    // on load, so candidate order) hits the corpse and must fail over.
    doomed.shutdown();
    let reply = gateway
        .invoke("t", "Calc", &soap_request("2+2"), None)
        .expect("failover must answer from the survivor");
    assert_eq!(reply_text(&reply.body), "survivor");
    assert_eq!(survivor_hits.load(Ordering::SeqCst), 1);
    assert!(
        telemetry::global()
            .counter("gateway.backend.failovers")
            .get()
            > failovers_before,
        "the failover counter must record the retried attempt"
    );

    // With the breaker now open on the corpse, the next call goes
    // straight to the survivor — no second failover.
    let reply = gateway
        .invoke("t", "Calc", &soap_request("3+3"), None)
        .expect("survivor keeps answering");
    assert_eq!(reply_text(&reply.body), "survivor");
    survivor.shutdown();
}

/// When every backend is gone the gateway reports Unavailable and
/// drops the (now suspect) cached route, so recovery re-locates.
#[test]
fn total_backend_loss_is_unavailable_and_invalidates_the_route() {
    let cluster = test_cluster();
    let (server, uri, _) = backend("Gone", "gone");
    publish(&eager_client(&cluster), "Gone", &[&uri]);
    let gateway = Gateway::new(eager_client(&cluster), GatewayConfig::default());

    gateway
        .invoke("t", "Gone", &soap_request("hello"), None)
        .expect("backend up");
    assert_eq!(gateway.caches().locate_entries(), 1);
    server.shutdown();
    match gateway.invoke("t", "Gone", &soap_request("hello"), None) {
        Err(GatewayError::Unavailable(_)) => {}
        other => panic!("expected Unavailable, got {other:?}"),
    }
    assert_eq!(
        gateway.caches().locate_entries(),
        0,
        "an all-backends-down route must be invalidated"
    );
}

/// Seeded registry-failover matrix: the shard primary crashes while the
/// gateway holds cached routes filled under the old epoch. The view
/// change bumps the map epoch; the gateway's next probe flushes the
/// routing cache, and the request still completes through the degraded
/// discovery plane.
#[test]
fn registry_failover_under_cached_maps_flushes_and_recovers() {
    let cluster = test_cluster();
    let (server, uri, _) = backend("Durable", "still-here");
    let writer = eager_client(&cluster);
    let record = publish(&writer, "Durable", &[&uri]);

    let gateway = Gateway::new(
        eager_client(&cluster),
        GatewayConfig::default().with_revalidate_interval(Duration::ZERO),
    );
    gateway
        .invoke("t", "Durable", &soap_request("pre-crash"), None)
        .expect("pre-crash call");
    assert_eq!(gateway.caches().locate_entries(), 1);
    let epoch_before = gateway.caches().epoch();

    // Crash the owning shard's primary and drive the view change with a
    // write (exactly what a live deployer would be doing).
    let map = cluster.shard_map();
    let shard = map.shard_of("Durable");
    cluster.crash(map.shard(shard).primary());
    writer
        .publish(&record)
        .expect("failover publish drives the view change");
    assert!(cluster.shard_map().epoch() > epoch_before);

    let reply = gateway
        .invoke("t", "Durable", &soap_request("post-crash"), None)
        .expect("mediation must survive the registry failover");
    assert_eq!(reply_text(&reply.body), "still-here");
    assert!(
        gateway.caches().epoch() > epoch_before,
        "the probe must adopt the post-failover epoch"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Fair-share admission across the fronts
// ---------------------------------------------------------------------------

/// Seeded hot-tenant flood: the hot tenant saturates its guaranteed
/// share plus everything borrowable, and is shed with a per-tenant
/// retry hint — while the cold tenant's requests keep flowing
/// end-to-end through the HTTP front.
#[test]
fn hot_tenant_flood_cannot_starve_the_cold_tenant() {
    let cluster = test_cluster();
    let (server, uri, _) = backend("Shared", "ok");
    publish(&eager_client(&cluster), "Shared", &[&uri]);

    let gateway = Gateway::new(
        eager_client(&cluster),
        GatewayConfig::default().with_admission(
            KeyedLoadShedPolicy::fair(4)
                .with_weight("hot", 1)
                .with_weight("cold", 1)
                .with_counter_prefix("gateway.tenant"),
        ),
    );
    let front = gateway.launch_http(0).expect("launch gateway http front");
    let gw_uri = front.service_uri("Shared");

    // The flood: hold the hot tenant's entire admissible budget open
    // (its guaranteed share; borrowing is blocked by the cold tenant's
    // reserve).
    let mut held = Vec::new();
    while let Ok(permit) = gateway.admission().try_admit("hot", None) {
        held.push(permit);
        assert!(held.len() <= 4, "admission must be bounded");
    }
    assert_eq!(
        held.len(),
        gateway.admission().guaranteed_share("hot"),
        "the hot tenant can fill exactly its guaranteed share"
    );

    // Hot is shed at the edge with the retry hint…
    let mut hot_req = Request::post(
        "/",
        "application/soap+xml; charset=utf-8",
        soap_request("flood"),
    );
    hot_req.headers.set(TENANT_HEADER, "hot");
    let shed = http_call_uri(&gw_uri, hot_req).expect("transport ok");
    assert_eq!(shed.status, 503);
    assert!(shed.headers.get("Retry-After").is_some());
    assert!(shed.headers.get(RETRY_AFTER_MS_HEADER).is_some());

    // …while the cold tenant sails through the same front.
    let mut cold_req = Request::post(
        "/",
        "application/soap+xml; charset=utf-8",
        soap_request("calm"),
    );
    cold_req.headers.set(TENANT_HEADER, "cold");
    let ok = http_call_uri(&gw_uri, cold_req).expect("transport ok");
    assert_eq!(ok.status, 200, "the cold tenant must not be starved");
    assert_eq!(reply_text(&ok.body), "ok");

    // Releasing the flood restores the hot tenant.
    held.clear();
    let mut retry = Request::post(
        "/",
        "application/soap+xml; charset=utf-8",
        soap_request("after-flood"),
    );
    retry.headers.set(TENANT_HEADER, "hot");
    assert_eq!(http_call_uri(&gw_uri, retry).expect("ok").status, 200);
    front.shutdown();
    server.shutdown();
}

/// The P2PS front runs the same pipeline: tenant from the `Tenant`
/// SOAP header, mediated reply on the same pipe, and a busy fault with
/// the retry hint when the tenant is shed.
#[test]
fn p2ps_front_mediates_and_sheds_with_busy_faults() {
    let cluster = test_cluster();
    let (server, uri, _) = backend("Piped", "via-pipe");
    publish(&eager_client(&cluster), "Piped", &[&uri]);

    let gateway = Gateway::new(
        eager_client(&cluster),
        GatewayConfig::default().with_admission(
            KeyedLoadShedPolicy::fair(2)
                .with_weight("pipe-hot", 1)
                .with_weight("pipe-cold", 1)
                .with_counter_prefix("gateway.tenant"),
        ),
    );
    let front = gateway
        .launch_pipe("127.0.0.1:0")
        .expect("launch pipe front");
    let addr = front.addr();
    let advert = PipeAdvertisement::new(PeerId(0xC0), Some("Piped".into()), "gw-in");

    let call = |tenant: &str| -> Envelope {
        let mut envelope = Envelope::request(
            Element::build("urn:itest", "ask")
                .text("over-pipe")
                .finish(),
        );
        envelope.add_header(HeaderBlock::new(
            Element::build("", "Tenant").text(tenant).finish(),
        ));
        let message = P2psMessage::PipeData {
            to: advert.clone(),
            payload: envelope.to_xml(),
        };
        match pipe_call(addr, &message, Duration::from_secs(2)).expect("pipe call") {
            P2psMessage::PipeData { payload, .. } => Envelope::from_xml(&payload).expect("reply"),
            other => panic!("unexpected pipe reply: {other:?}"),
        }
    };

    let reply = call("pipe-cold");
    assert_eq!(
        reply.payload().map(|p| p.text()).as_deref(),
        Some("via-pipe"),
        "the pipe front must mediate to the HTTP backend"
    );

    // Flood the hot tenant's share, then observe the busy fault.
    let _held: Vec<_> =
        std::iter::from_fn(|| gateway.admission().try_admit("pipe-hot", None).ok()).collect();
    let fault = call("pipe-hot");
    let fault = fault.fault_body().expect("a shed surfaces as a SOAP fault");
    assert!(
        fault.reason.contains("wsp:overloaded"),
        "busy fault with the machine-readable prefix, got: {}",
        fault.reason
    );
    front.shutdown();
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// `/metrics` on the gateway front reports the cache counters, the
/// per-tenant gauges, and the advert-cache lines from the shared
/// telemetry splice.
#[test]
fn metrics_report_cache_counters_and_tenant_gauges() {
    let cluster = test_cluster();
    let (server, uri, _) = backend("Metered", "m");
    publish(&eager_client(&cluster), "Metered", &[&uri]);

    let gateway = Gateway::new(
        eager_client(&cluster),
        GatewayConfig::default().idempotent("Metered", "*"),
    );
    let front = gateway.launch_http(0).expect("launch gateway http front");
    let request = soap_request("metered");
    gateway
        .invoke("acme", "Metered", &request, None)
        .expect("miss");
    gateway
        .invoke("acme", "Metered", &request, None)
        .expect("hit");

    let metrics = http_call_uri(&front.service_uri("metrics"), Request::get("/"))
        .expect("metrics endpoint")
        .body;
    let text = String::from_utf8(metrics).expect("utf-8 metrics");
    for needle in [
        "gateway.cache.locate.miss",
        "gateway.cache.response.hit",
        "gateway.cache.response.miss",
        "gateway_locate_entries",
        "gateway_response_entries",
        "gateway_in_flight_total",
        "gateway_tenant_in_flight{tenant=\"acme\"}",
        "advert_cache_hits",
        "advert_cache_misses",
        "bufpool_hits",
    ] {
        assert!(
            text.contains(needle),
            "metrics must report {needle}\n{text}"
        );
    }
    front.shutdown();
    server.shutdown();
}

//! The simulated stack end to end: P2PS discovery at scale, churn
//! survival, and the HTTP registry under load — quick versions of the
//! benchmark experiments, asserting the *shapes* the paper predicts.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wsp_p2ps::{build_overlay, P2psQuery, PeerCommand, PeerEvent, ServiceAdvertisement};
use wsp_simnet::{ChurnModel, Dur, LinkSpec, SimNet, Time, Topology};

fn publish(handles: &[wsp_p2ps::P2psHandle], net: &mut SimNet<String>, slot: usize, name: &str) {
    let advert = ServiceAdvertisement::new(name, handles[slot].peer()).with_pipe("in");
    handles[slot].enqueue_at(net, Time::ZERO, PeerCommand::Publish(advert));
}

fn found(handle: &wsp_p2ps::P2psHandle) -> bool {
    handle
        .events()
        .iter()
        .any(|(_, e)| matches!(e, PeerEvent::QueryResult { adverts, .. } if !adverts.is_empty()))
}

#[test]
fn discovery_succeeds_across_200_peer_overlay() {
    let mut net: SimNet<String> = SimNet::new(42);
    net.set_default_link(LinkSpec::wan());
    let mut rng = StdRng::seed_from_u64(42);
    let (topology, rendezvous) = Topology::rendezvous_groups(20, 10, 4, &mut rng);
    assert_eq!(topology.node_count(), 200);
    let (_dir, handles) = build_overlay(&mut net, &topology, &rendezvous, None);

    // Publisher: a leaf in group 0; seekers: leaves in far groups.
    publish(&handles, &mut net, 1, "Echo");
    for seeker_slot in [55, 105, 155, 195] {
        handles[seeker_slot].enqueue_at(
            &mut net,
            Time::secs(2),
            PeerCommand::Query {
                token: seeker_slot as u64,
                query: P2psQuery::by_name("Echo"),
                ttl: None,
            },
        );
    }
    net.run_until(Time::secs(20));

    for seeker_slot in [55, 105, 155, 195] {
        assert!(
            found(&handles[seeker_slot]),
            "seeker {seeker_slot} failed to discover"
        );
    }
    // Per-node load stays modest: total messages bounded well below
    // n^2 flooding.
    let sent = net.metrics().counter("simnet.sent");
    assert!(
        sent < 6_000,
        "P2P discovery should not flood: {sent} messages"
    );
}

#[test]
fn p2p_discovery_survives_rendezvous_churn() {
    let mut net: SimNet<String> = SimNet::new(7);
    net.set_default_link(LinkSpec::lan());
    let mut rng = StdRng::seed_from_u64(7);
    let (topology, rendezvous) = Topology::rendezvous_groups(6, 6, 3, &mut rng);
    // Refresh keeps rendezvous caches warm through churn.
    let (_dir, handles) = build_overlay(&mut net, &topology, &rendezvous, Some(Dur::secs(5)));

    publish(&handles, &mut net, 1, "Echo");
    // Hammer the rendezvous peers with churn (mean 20s up / 4s down).
    let churn = ChurnModel::new(Dur::secs(20), Dur::secs(4));
    churn.apply(&mut net, &rendezvous, Time::secs(120), 99);

    // Repeated queries from a far leaf; most should succeed despite the
    // churn, thanks to soft-state refresh.
    let seeker = &handles[31];
    let attempts = 10;
    for i in 0..attempts {
        seeker.enqueue_at(
            &mut net,
            Time::secs(10 + i * 10),
            PeerCommand::Query {
                token: i,
                query: P2psQuery::by_name("Echo"),
                ttl: None,
            },
        );
    }
    net.run_until(Time::secs(130));

    let successes: std::collections::HashSet<u64> = seeker
        .events()
        .iter()
        .filter_map(|(_, e)| match e {
            PeerEvent::QueryResult { token, adverts } if !adverts.is_empty() => Some(*token),
            _ => None,
        })
        .collect();
    assert!(
        successes.len() >= attempts as usize / 2,
        "only {}/{attempts} queries succeeded under churn",
        successes.len()
    );
}

#[test]
fn central_registry_saturates_single_worker() {
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::sync::Arc;
    use wsp_http::{HttpSimServer, Request, Response, Router, SimHttpClient};
    use wsp_simnet::{Context, Node, NodeEvent, NodeId};

    // Registry modelled as 5ms service time, single worker.
    let router = Router::new();
    router.deploy(
        "uddi",
        Arc::new(|_r: &Request| Response::ok("text/xml", "<serviceList/>")),
    );
    let mut net: SimNet<String> = SimNet::new(3);
    net.set_default_link(LinkSpec {
        latency: Dur::millis(1),
        jitter: Dur::ZERO,
        loss: 0.0,
        per_byte: Dur::ZERO,
    });
    let server = net.add_node(Box::new(HttpSimServer::new(router, Dur::millis(5), 1)));

    struct Load {
        server: NodeId,
        client: SimHttpClient,
        latencies: Rc<RefCell<Vec<u64>>>,
        sent_at: std::collections::HashMap<u64, Time>,
        count: usize,
    }
    impl Node<String> for Load {
        fn handle(&mut self, ctx: &mut Context<'_, String>, event: NodeEvent<String>) {
            match event {
                NodeEvent::Start => {
                    for _ in 0..self.count {
                        let corr = self.client.send(ctx, self.server, Request::get("/uddi"));
                        self.sent_at.insert(corr, ctx.now());
                    }
                }
                NodeEvent::Message { msg, .. } => {
                    if let Some((corr, _resp)) = self.client.accept(&msg) {
                        if let Some(at) = self.sent_at.remove(&corr) {
                            self.latencies
                                .borrow_mut()
                                .push((ctx.now() - at).as_micros());
                        }
                    }
                }
                _ => {}
            }
        }
    }

    let run = |clients: usize, seed: u64| -> f64 {
        let router = Router::new();
        router.deploy(
            "uddi",
            Arc::new(|_r: &Request| Response::ok("text/xml", "<serviceList/>")),
        );
        let mut net: SimNet<String> = SimNet::new(seed);
        net.set_default_link(LinkSpec {
            latency: Dur::millis(1),
            jitter: Dur::ZERO,
            loss: 0.0,
            per_byte: Dur::ZERO,
        });
        let server = net.add_node(Box::new(HttpSimServer::new(router, Dur::millis(5), 1)));
        let latencies = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..clients {
            net.add_node(Box::new(Load {
                server,
                client: SimHttpClient::new(),
                latencies: latencies.clone(),
                sent_at: Default::default(),
                count: 4,
            }));
        }
        net.run_to_quiescence();
        let all = latencies.borrow();
        all.iter().sum::<u64>() as f64 / all.len() as f64
    };
    let _ = server;

    let light = run(2, 11);
    let heavy = run(40, 11);
    // Saturation: 40 concurrent clients on one 5ms worker queue up;
    // mean latency grows by an order of magnitude.
    assert!(
        heavy > light * 5.0,
        "registry should saturate: light {light:.0}us vs heavy {heavy:.0}us"
    );
}

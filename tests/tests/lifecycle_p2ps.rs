//! Figure 4 over real threads: the P2PS lifecycle, including the
//! definition pipe, request/response over unidirectional pipes, faults,
//! one-way operations and provider departure.

use std::time::Duration;
use wsp_core::{ServiceQuery, WspError};
use wsp_integration_tests::{calc_descriptor, calc_handler, p2ps_star, p2ps_wspeer, wait_until};
use wsp_wsdl::Value;

#[test]
fn full_lifecycle_over_pipes() {
    let (_network, _rv, mut peers) = p2ps_star(2);
    let consumer_thread = peers.pop().unwrap();
    let provider_thread = peers.pop().unwrap();
    let (provider, _pb) = p2ps_wspeer(provider_thread);
    let (consumer, _cb) = p2ps_wspeer(consumer_thread);

    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));

    let service = consumer
        .client()
        .locate_one(&ServiceQuery::by_name("Calc"))
        .unwrap();
    assert!(service.endpoint.starts_with("p2ps://"));
    // WSDL came through the definition pipe with the full contract.
    assert_eq!(service.wsdl.descriptor.operations.len(), 4);

    let sum = consumer
        .client()
        .invoke(&service, "add", &[Value::Double(20.0), Value::Double(22.0)])
        .unwrap();
    assert_eq!(sum, Value::Double(42.0));
}

#[test]
fn fault_travels_back_down_return_pipe() {
    let (_network, _rv, mut peers) = p2ps_star(2);
    let (provider, _pb) = p2ps_wspeer(peers.pop().unwrap());
    let (consumer, _cb) = p2ps_wspeer(peers.pop().unwrap());
    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));

    let service = consumer
        .client()
        .locate_one(&ServiceQuery::by_name("Calc"))
        .unwrap();
    let err = consumer.client().invoke(&service, "fail", &[]).unwrap_err();
    assert!(
        matches!(&err, WspError::Fault(f) if f.reason == "deliberate failure"),
        "{err:?}"
    );
}

#[test]
fn one_way_is_fire_and_forget() {
    let (_network, _rv, mut peers) = p2ps_star(2);
    let (provider, _pb) = p2ps_wspeer(peers.pop().unwrap());
    let (consumer, _cb) = p2ps_wspeer(peers.pop().unwrap());
    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));

    let service = consumer
        .client()
        .locate_one(&ServiceQuery::by_name("Calc"))
        .unwrap();
    let started = std::time::Instant::now();
    let out = consumer
        .client()
        .invoke(&service, "log", &[Value::string("note")])
        .unwrap();
    assert_eq!(out, Value::Null);
    // No return pipe wait: far below the request timeout.
    assert!(started.elapsed() < Duration::from_secs(1));
}

#[test]
fn attribute_discovery_over_pipes() {
    let (_network, _rv, mut peers) = p2ps_star(2);
    let (provider, _pb) = p2ps_wspeer(peers.pop().unwrap());
    let (consumer, _cb) = p2ps_wspeer(peers.pop().unwrap());
    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));

    let hit = consumer
        .client()
        .locate(&ServiceQuery::any().with_property("suite", "integration"))
        .unwrap();
    assert_eq!(hit.len(), 1);
    let miss = consumer
        .client()
        .locate(&ServiceQuery::any().with_property("suite", "nope"))
        .unwrap();
    assert!(miss.is_empty());
}

#[test]
fn departed_provider_times_out_not_hangs() {
    let (_network, _rv, mut peers) = p2ps_star(2);
    let (consumer, _cb) = p2ps_wspeer(peers.pop().unwrap());
    let provider_thread = peers.pop().unwrap();
    let (provider, _pb) = p2ps_wspeer(provider_thread);
    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));

    let service = consumer
        .client()
        .locate_one(&ServiceQuery::by_name("Calc"))
        .unwrap();
    // The provider (and its peer thread) leaves the network. The
    // binding's demultiplexer shuts down asynchronously; give it a
    // moment to disappear from the directory.
    drop(provider);
    drop(_pb);
    std::thread::sleep(Duration::from_millis(300));

    let started = std::time::Instant::now();
    let err = consumer
        .client()
        .invoke(&service, "add", &[Value::Double(1.0), Value::Double(1.0)])
        .unwrap_err();
    assert!(matches!(err, WspError::Timeout { .. }), "{err:?}");
    assert!(
        started.elapsed() >= Duration::from_secs(2),
        "waited out the timeout"
    );
}

#[test]
fn unpublished_service_ages_out_of_discovery() {
    let (_network, _rv, mut peers) = p2ps_star(2);
    let (provider, _pb) = p2ps_wspeer(peers.pop().unwrap());
    let (consumer, _cb) = p2ps_wspeer(peers.pop().unwrap());
    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(
        consumer
            .client()
            .locate(&ServiceQuery::by_name("Calc"))
            .unwrap()
            .len(),
        1
    );

    provider.server().undeploy("Calc");
    // The rendezvous cache still holds the advert (soft state), but the
    // provider no longer serves the definition pipe, so the locate
    // returns nothing usable.
    let found = wait_until(Duration::from_secs(3), || {
        consumer
            .client()
            .locate(&ServiceQuery::by_name("Calc"))
            .unwrap()
            .is_empty()
    });
    assert!(found, "undeployed service should stop being locatable");
}

#[test]
fn concurrent_invocations_multiplex_one_peer() {
    let (_network, _rv, mut peers) = p2ps_star(2);
    let (provider, _pb) = p2ps_wspeer(peers.pop().unwrap());
    let (consumer, _cb) = p2ps_wspeer(peers.pop().unwrap());
    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let service = consumer
        .client()
        .locate_one(&ServiceQuery::by_name("Calc"))
        .unwrap();

    // Several async invocations in flight at once over one peer; each
    // gets its own return pipe and correlates independently through
    // the dispatcher's table.
    let handles: Vec<_> = (0..6)
        .map(|i| {
            consumer.client().invoke_async(
                service.clone(),
                "add",
                vec![Value::Double(i as f64), Value::Double(100.0)],
            )
        })
        .collect();
    let mut tokens: Vec<u64> = handles.iter().map(|h| h.token()).collect();
    tokens.sort_unstable();
    tokens.dedup();
    assert_eq!(
        tokens.len(),
        6,
        "each in-flight call has a distinct correlation token"
    );
    for (i, handle) in handles.into_iter().enumerate() {
        let sum = handle.wait().unwrap();
        assert_eq!(sum, Value::Double(100.0 + i as f64));
    }
}

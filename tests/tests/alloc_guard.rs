//! Allocation-regression guard (tier-2, wired into `scripts/ci.sh`).
//!
//! This binary installs the counting global allocator and re-runs
//! E12's allocation measurement, pinning the two properties PR 5
//! bought: the fast path stays under a recorded allocations-per-round-
//! trip ceiling, and it stays at least 2x cheaper than the vendored
//! pre-PR-5 stack. A future change that quietly re-introduces per-name
//! or per-buffer churn fails here, not in a benchmark someone has to
//! remember to read.

use wsp_bench::alloc_count::{self, CountingAllocator};
use wsp_bench::e12;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Ceilings over the release-mode measurements (55 / 200 / 1463 as of
/// PR 5) with ~30% headroom for allocator-neutral refactors. If a
/// change pushes past these, either it regressed the wire path or it
/// consciously re-priced it — update the numbers only with the
/// measurement story in EXPERIMENTS.md §E12.
const CEILINGS: [(&str, f64); 3] = [
    ("small (0 items)", 90.0),
    ("medium (10 items)", 280.0),
    ("large (100 items)", 1900.0),
];

#[test]
fn round_trip_allocations_stay_under_ceiling_and_2x_better_than_legacy() {
    assert!(
        alloc_count::is_installed(),
        "counting allocator must be live in this binary"
    );
    let rows = e12::allocations(100);
    assert_eq!(rows.len(), CEILINGS.len());
    for (row, (name, ceiling)) in rows.iter().zip(CEILINGS) {
        assert_eq!(row.corpus, name);
        assert!(row.counted);
        assert!(
            row.fast_allocs <= ceiling,
            "{name}: fast path now allocates {:.1}/round-trip (ceiling {ceiling})",
            row.fast_allocs
        );
        assert!(
            row.ratio >= 2.0,
            "{name}: legacy/fast ratio fell to {:.2} ({:.1} vs {:.1})",
            row.ratio,
            row.legacy_allocs,
            row.fast_allocs
        );
    }
}

/// The single-pass writer in its pooled steady state: serialising an
/// already-built tree into a warm pooled buffer must not allocate at
/// all — names are interned, escaping streams straight into the
/// output, and there are no per-tag temporaries left.
#[test]
fn warm_single_pass_writer_is_allocation_free() {
    let (_, envelope) = e12::corpus().swap_remove(1);
    let root = envelope.to_element();
    let config = wsp_xml::WriterConfig::wire()
        .prefer(wsp_soap::SOAP_ENV_NS, "env")
        .prefer(wsp_soap::WSA_NS, "wsa");
    let pool = wsp_xml::BufPool::global();
    let mut writer = wsp_xml::Writer::new(config);
    for _ in 0..50 {
        let mut buf = pool.take();
        buf.clear();
        writer.write_into(&root, &mut buf);
        pool.put(buf);
    }
    let mut worst = 0u64;
    for _ in 0..20 {
        let mut buf = pool.take();
        buf.clear();
        let before = alloc_count::allocations();
        writer.write_into(&root, &mut buf);
        worst = worst.max(alloc_count::allocations() - before);
        pool.put(buf);
    }
    assert_eq!(worst, 0, "warm single-pass write allocated");
}

/// The full envelope encode keeps exactly one allocating step: the
/// `to_element` staging shell (headers and payload cloned into the
/// `env:Envelope` scaffold). For the small corpus entry that is ~28
/// allocations; the bound fails if the writer or the pool start
/// allocating again on top of it.
#[test]
fn warm_pooled_envelope_encode_pays_only_the_staging_tree() {
    let (_, envelope) = e12::corpus().swap_remove(0);
    let pool = wsp_xml::BufPool::global();
    for _ in 0..50 {
        let mut buf = pool.take();
        buf.clear();
        envelope.to_xml_into(&mut buf);
        pool.put(buf);
    }
    let mut worst = 0u64;
    for _ in 0..20 {
        let mut buf = pool.take();
        buf.clear();
        let before = alloc_count::allocations();
        envelope.to_xml_into(&mut buf);
        worst = worst.max(alloc_count::allocations() - before);
        pool.put(buf);
    }
    assert!(worst <= 40, "warm pooled encode allocated {worst} times");
}

//! Bisimulation between the runtime shells and their pure machines.
//!
//! Each shell (circuit breaker, admission controller, dispatcher
//! correlation table, P2PS RPC correlator) claims to be a thin wrapper
//! around a pure `Machine`: events in, effects out, nothing else. These
//! properties drive random event sequences through the shell and a
//! hand-stepped mirror of the machine in lockstep, asserting after
//! every event that all observable state agrees — return values,
//! counters, phases, pending tables. Any shortcut the shell takes
//! around its machine (a cached flag, a forgotten transition, a
//! time-conversion bug) shows up as divergence.

use proptest::prelude::*;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use wsp_core::dispatch::Dispatcher;
use wsp_core::health::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
use wsp_core::machines::admission::{AdmissionEffect, AdmissionEvent, AdmissionMachine};
use wsp_core::machines::breaker::{Admit, BreakerEffect, BreakerEvent, BreakerMachine, Phase};
use wsp_core::machines::correlation::{CallPhase, CorrelationEvent, CorrelationMachine};
use wsp_core::machines::keyed_admission::{
    KeyedAdmissionEffect, KeyedAdmissionEvent, KeyedAdmissionMachine,
};
use wsp_core::overload::{
    AdmissionController, AdmissionPermit, KeyedAdmissionController, KeyedAdmissionPermit,
    KeyedLoadShedPolicy, LoadShedPolicy,
};
use wsp_p2ps::rpc::{decode_request, encode_response};
use wsp_p2ps::{PeerId, PipeAdvertisement, RpcCorrelator};
use wsp_simnet::{step_mut, Machine};
use wsp_soap::Envelope;
use wsp_xml::Element;

// ---------------------------------------------------------------------------
// Circuit breaker ⇔ BreakerMachine
// ---------------------------------------------------------------------------

/// Breaker ops: the event plus how far the clock advances first.
#[derive(Debug, Clone, Copy)]
enum BreakerOp {
    Acquire,
    Success,
    Failure,
    ProbeAborted,
}

fn arb_breaker_ops() -> impl Strategy<Value = Vec<(u8, u8)>> {
    // (op selector, time advance in ms 0..=30); cooldown is 25 ms so
    // sequences straddle every phase boundary.
    proptest::collection::vec((0u8..4, 0u8..31), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The shell converts `Instant`s to tick offsets from a private
    /// epoch; the mirror uses offsets from the test's own base. All
    /// breaker decisions are *differences* of times, so the two frames
    /// must produce identical observables at every step.
    #[test]
    fn circuit_breaker_bisimulates_breaker_machine(ops in arb_breaker_ops()) {
        let cooldown = Duration::from_millis(25);
        let shell = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown,
        });
        let base = Instant::now();
        let machine = BreakerMachine {
            failure_threshold: 2,
            cooldown: cooldown.as_nanos() as u64,
        };
        let mut mirror = machine.initial();
        let mut elapsed = Duration::ZERO;

        for (op, advance_ms) in ops {
            elapsed += Duration::from_millis(advance_ms as u64);
            let now = base + elapsed;
            let ticks = elapsed.as_nanos() as u64;
            let op = match op {
                0 => BreakerOp::Acquire,
                1 => BreakerOp::Success,
                2 => BreakerOp::Failure,
                _ => BreakerOp::ProbeAborted,
            };
            match op {
                BreakerOp::Acquire => {
                    let got = shell.try_acquire(now);
                    let effects = step_mut(&machine, &mut mirror, &BreakerEvent::Acquire { now: ticks });
                    let expected = match effects.first() {
                        Some(BreakerEffect::Admit(Admit::Allowed)) => Admission::Allowed,
                        Some(BreakerEffect::Admit(Admit::Probe)) => Admission::Probe,
                        _ => Admission::Rejected,
                    };
                    prop_assert_eq!(got, expected, "acquire at {:?}", elapsed);
                }
                BreakerOp::Success => {
                    let got = shell.on_success(now);
                    let effects = step_mut(&machine, &mut mirror, &BreakerEvent::Success);
                    prop_assert_eq!(got, effects.contains(&BreakerEffect::Recovered));
                }
                BreakerOp::Failure => {
                    let got = shell.on_failure(now);
                    let effects = step_mut(&machine, &mut mirror, &BreakerEvent::Failure { now: ticks });
                    prop_assert_eq!(got, effects.contains(&BreakerEffect::Tripped));
                }
                BreakerOp::ProbeAborted => {
                    let got = shell.on_probe_aborted(now);
                    let effects =
                        step_mut(&machine, &mut mirror, &BreakerEvent::ProbeAborted { now: ticks });
                    prop_assert_eq!(got, effects.contains(&BreakerEffect::ProbeDiscarded));
                }
            }
            // Observable state agrees after every event.
            let expected_state = match machine.phase(&mirror, ticks) {
                Phase::Closed => BreakerState::Closed,
                Phase::Open => BreakerState::Open,
                Phase::HalfOpen => BreakerState::HalfOpen,
            };
            prop_assert_eq!(shell.state(now), expected_state, "phase after {:?}", op);
            let expected_failures = match mirror {
                wsp_core::machines::breaker::BreakerState::Closed { failures } => failures,
                wsp_core::machines::breaker::BreakerState::Tripped { .. } => 0,
            };
            prop_assert_eq!(shell.consecutive_failures(), expected_failures);
            let expected_probe = matches!(
                mirror,
                wsp_core::machines::breaker::BreakerState::Tripped {
                    probe_in_flight: true,
                    ..
                }
            );
            prop_assert_eq!(shell.probe_in_flight(), expected_probe);
        }
    }
}

// ---------------------------------------------------------------------------
// Admission controller ⇔ AdmissionMachine
// ---------------------------------------------------------------------------

fn arb_admission_ops() -> impl Strategy<Value = Vec<(u8, u8, bool)>> {
    // (op selector, queue depth 0..3, deadline already expired?)
    proptest::collection::vec((0u8..4, 0u8..3, any::<bool>()), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn admission_controller_bisimulates_admission_machine(ops in arb_admission_ops()) {
        let shell = AdmissionController::new(LoadShedPolicy::bounded(2, 1));
        let machine = AdmissionMachine {
            max_in_flight: 2,
            max_queue_depth: 1,
        };
        let mut mirror = machine.initial();
        let mut permits: Vec<AdmissionPermit> = Vec::new();

        for (op, queue_depth, expired) in ops {
            match op {
                0 => {
                    // The policy has no queue-wait watermark, so the
                    // shell's sampled observation is always false.
                    let deadline = if expired {
                        Some(Instant::now())
                    } else {
                        Some(Instant::now() + Duration::from_secs(3600))
                    };
                    let got = shell.try_admit(queue_depth as usize, deadline);
                    let effects = step_mut(&machine, &mut mirror, &AdmissionEvent::Admit {
                        queue_depth: queue_depth as u64,
                        deadline_expired: expired,
                        over_watermark: false,
                    });
                    prop_assert_eq!(
                        got.is_ok(),
                        effects.contains(&AdmissionEffect::Admitted),
                        "admit(queue={}, expired={})", queue_depth, expired
                    );
                    if let Ok(permit) = got {
                        permits.push(permit);
                    }
                }
                1 => {
                    // Release = drop a held permit (RAII), mirrored only
                    // when the shell actually holds one.
                    if permits.pop().is_some() {
                        step_mut(&machine, &mut mirror, &AdmissionEvent::Release);
                    }
                }
                2 => {
                    shell.start_draining();
                    step_mut(&machine, &mut mirror, &AdmissionEvent::BeginDrain);
                }
                _ => {
                    shell.stop_draining();
                    step_mut(&machine, &mut mirror, &AdmissionEvent::EndDrain);
                }
            }
            prop_assert_eq!(shell.in_flight() as u64, mirror.in_flight);
            prop_assert_eq!(shell.is_draining(), mirror.draining);
        }
    }
}

// ---------------------------------------------------------------------------
// Keyed admission controller ⇔ KeyedAdmissionMachine
// ---------------------------------------------------------------------------

fn arb_keyed_ops() -> impl Strategy<Value = Vec<(u8, u8, bool)>> {
    // (op selector, tenant 0..3, deadline already expired?)
    proptest::collection::vec((0u8..4, 0u8..3, any::<bool>()), 0..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The gateway's per-tenant controller is a thin shell over the
    /// keyed machine: pre-seeding the policy weights pins the tenant
    /// interning order, so a hand-stepped mirror with the same weight
    /// vector must agree on every admit verdict and every counter.
    #[test]
    fn keyed_admission_controller_bisimulates_keyed_machine(ops in arb_keyed_ops()) {
        let shell = KeyedAdmissionController::new(
            KeyedLoadShedPolicy::fair(4)
                .with_weight("alpha", 2)
                .with_weight("beta", 1)
                .with_weight("gamma", 1)
                .with_tenant_cap(3),
        );
        let names = ["alpha", "beta", "gamma"];
        let machine = KeyedAdmissionMachine {
            global_cap: 4,
            weights: vec![2, 1, 1],
            tenant_cap: 3,
        };
        let mut mirror = machine.initial();
        let mut permits: Vec<Vec<KeyedAdmissionPermit>> = vec![Vec::new(), Vec::new(), Vec::new()];

        for (op, tenant, expired) in ops {
            let t = tenant as usize;
            match op {
                0 => {
                    // No watermark configured, so the shell's sampled
                    // observation is always false.
                    let deadline = if expired {
                        Some(Instant::now())
                    } else {
                        Some(Instant::now() + Duration::from_secs(3600))
                    };
                    let got = shell.try_admit(names[t], deadline);
                    let effects = step_mut(&machine, &mut mirror, &KeyedAdmissionEvent::Admit {
                        tenant: t,
                        deadline_expired: expired,
                        over_watermark: false,
                    });
                    let admitted = effects
                        .iter()
                        .any(|e| matches!(e, KeyedAdmissionEffect::Admitted { .. }));
                    prop_assert_eq!(
                        got.is_ok(),
                        admitted,
                        "admit(tenant={}, expired={})", names[t], expired
                    );
                    match got {
                        Ok(permit) => permits[t].push(permit),
                        Err(err) => {
                            // Sheds always carry a retry hint.
                            prop_assert!(matches!(
                                err,
                                wsp_core::WspError::Overloaded { retry_after_ms: Some(_) }
                            ));
                        }
                    }
                }
                1 => {
                    // Release = drop a held permit (RAII), mirrored only
                    // when the shell actually holds one for this tenant.
                    if permits[t].pop().is_some() {
                        step_mut(&machine, &mut mirror, &KeyedAdmissionEvent::Release { tenant: t });
                    }
                }
                2 => {
                    shell.start_draining();
                    step_mut(&machine, &mut mirror, &KeyedAdmissionEvent::BeginDrain);
                }
                _ => {
                    shell.stop_draining();
                    step_mut(&machine, &mut mirror, &KeyedAdmissionEvent::EndDrain);
                }
            }
            for (i, name) in names.iter().enumerate() {
                prop_assert_eq!(shell.in_flight(name) as u64, mirror.in_flight[i]);
            }
            prop_assert_eq!(shell.total_in_flight() as u64, mirror.total());
            prop_assert_eq!(shell.is_draining(), mirror.draining);
            // With the population fixed up-front the fair-share reserve
            // invariant is inductive, so it must hold at every step.
            let guaranteed = machine.guaranteed();
            let reserve: u64 = guaranteed
                .iter()
                .zip(&mirror.in_flight)
                .map(|(&g, &f)| g.saturating_sub(f))
                .sum();
            prop_assert!(
                mirror.total() + reserve <= 4,
                "borrows ate the reserve: total={} reserve={}",
                mirror.total(),
                reserve
            );
        }
    }

    /// Permit conservation under random tenant traffic, including
    /// tenants interned on the fly: the sum of granted permits never
    /// exceeds the global cap and each tenant respects the tenant cap,
    /// even while interning re-apportions every guaranteed share under
    /// permits that were granted against the old apportionment. (The
    /// stronger reserve invariant is only inductive over a *fixed*
    /// population — asserted in the bisimulation property above.)
    #[test]
    fn keyed_permits_are_conserved_under_random_tenant_traffic(
        ops in proptest::collection::vec((0u8..2, 0u8..4), 0..120),
    ) {
        let ctl = KeyedAdmissionController::new(
            KeyedLoadShedPolicy::fair(5).with_tenant_cap(4),
        );
        let mut held: HashMap<String, Vec<KeyedAdmissionPermit>> = HashMap::new();
        for (op, t) in ops {
            let tenant = format!("tenant-{}", t % 4);
            match op {
                0 => {
                    if let Ok(permit) = ctl.try_admit(&tenant, None) {
                        held.entry(tenant.clone()).or_default().push(permit);
                    }
                }
                _ => {
                    if let Some(perms) = held.get_mut(&tenant) {
                        perms.pop();
                    }
                }
            }
            // The controller's books equal the RAII ground truth…
            let held_total: usize = held.values().map(Vec::len).sum();
            prop_assert_eq!(ctl.total_in_flight(), held_total);
            // …and never exceed the caps.
            prop_assert!(ctl.total_in_flight() <= 5);
            for name in ctl.tenants() {
                let f = ctl.in_flight(&name);
                prop_assert!(f <= 4, "tenant {} over its cap: {}", name, f);
                prop_assert_eq!(f, held.get(&name).map(Vec::len).unwrap_or(0));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatcher correlation table ⇔ CorrelationMachine
// ---------------------------------------------------------------------------

fn arb_correlation_ops() -> impl Strategy<Value = Vec<(u8, u8)>> {
    // (op selector, token 0..3)
    proptest::collection::vec((0u8..4, 0u8..3), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dispatcher_correlation_bisimulates_correlation_machine(ops in arb_correlation_ops()) {
        let dispatcher = Dispatcher::with_defaults();
        let machine = CorrelationMachine;
        let mut mirror = machine.initial();
        let mut handles = HashMap::new();
        let mut completers = HashMap::new();

        for (op, token) in ops {
            let token = token as u64;
            match op {
                0 => {
                    // Register a fresh token (the shell requires
                    // uniqueness; the machine's or_insert mirrors it).
                    if !handles.contains_key(&token)
                        && !completers.contains_key(&token)
                        && mirror.phase(token).is_none()
                    {
                        let (handle, completer) = dispatcher.register::<u64>(token);
                        handles.insert(token, handle);
                        completers.insert(token, completer);
                        step_mut(&machine, &mut mirror, &CorrelationEvent::Register(token));
                    }
                }
                1 => {
                    // Complete — possibly late, after cancel/drop.
                    if let Some(completer) = completers.remove(&token) {
                        let got = completer.complete(token * 10);
                        let effects =
                            step_mut(&machine, &mut mirror, &CorrelationEvent::Complete(token));
                        let delivered = effects.iter().any(|e| {
                            matches!(
                                e,
                                wsp_core::machines::correlation::CorrelationEffect::DeliverValue(_)
                            )
                        });
                        prop_assert_eq!(got, delivered, "complete({})", token);
                    }
                }
                2 => {
                    // Explicit cancel.
                    if let Some(handle) = handles.remove(&token) {
                        let got = handle.cancel();
                        let effects =
                            step_mut(&machine, &mut mirror, &CorrelationEvent::Cancel(token));
                        let cancelled = effects.iter().any(|e| {
                            matches!(
                                e,
                                wsp_core::machines::correlation::CorrelationEffect::CountCancelled(_)
                            )
                        });
                        prop_assert_eq!(got, cancelled, "cancel({})", token);
                    }
                }
                _ => {
                    // Dropping the handle is an eager implicit cancel.
                    if handles.remove(&token).is_some() {
                        step_mut(&machine, &mut mirror, &CorrelationEvent::Cancel(token));
                    }
                }
            }
            // The shell's pending table is exactly the machine's.
            let mut shell_pending = dispatcher.pending_tokens();
            shell_pending.sort_unstable();
            prop_assert_eq!(shell_pending, mirror.table_tokens());
            // A live handle observes completion exactly when the
            // machine holds a settled, unclaimed call.
            for (t, handle) in &handles {
                let settled = matches!(
                    mirror.phase(*t),
                    Some(CallPhase::Ready) | Some(CallPhase::Poisoned)
                );
                prop_assert_eq!(handle.is_complete(), settled, "is_complete({})", t);
            }
        }
        // Abandon the rest without further assertions: handle drops
        // step Cancel through the same machine (asserted above).
        handles.clear();
    }
}

// ---------------------------------------------------------------------------
// P2PS RPC correlator ⇔ RpcMachine
// ---------------------------------------------------------------------------

fn arb_rpc_ops() -> impl Strategy<Value = Vec<(u8, u8)>> {
    // (op selector, request slot 0..4)
    proptest::collection::vec((0u8..4, 0u8..4), 0..40)
}

fn rpc_service_pipe() -> PipeAdvertisement {
    PipeAdvertisement::new(PeerId(0xAA), Some("Echo".into()), "in")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Drives the full wire path — encode a request, decode it
    /// provider-side, encode the response, accept it consumer-side —
    /// and checks the correlator's pure state and observable outcomes
    /// against what the machine semantics dictate.
    #[test]
    fn rpc_correlator_bisimulates_rpc_machine(ops in arb_rpc_ops()) {
        let mut correlator = RpcCorrelator::new();
        let service = rpc_service_pipe();
        // One distinct return pipe per request slot, reused across the
        // sequence to exercise open → close → reopen interning.
        let return_pipes: Vec<PipeAdvertisement> = (0..4)
            .map(|i| PipeAdvertisement::new(PeerId(0xBB), None, format!("return-{i}")))
            .collect();
        // Expected pending set: slot → wire request (for the response
        // path); `None` once settled or forgotten.
        let mut outstanding: Vec<Option<String>> = vec![None; 4];

        for (op, slot) in ops {
            let slot = slot as usize;
            let token = slot as u64;
            match op {
                0 => {
                    // Send: one outstanding request per slot at a time
                    // (tokens are unique in the runtime).
                    if outstanding[slot].is_none() {
                        let body = Envelope::request(
                            Element::build("urn:demo", "echoString")
                                .text(format!("req-{slot}"))
                                .finish(),
                        );
                        let wire = correlator.encode_request(
                            token,
                            &service,
                            &return_pipes[slot],
                            body,
                        );
                        outstanding[slot] = Some(wire);
                    }
                }
                1 => {
                    // Response arrives for the slot's request.
                    if let Some(wire) = outstanding[slot].take() {
                        let received = decode_request(&wire).unwrap();
                        let (_, response) =
                            encode_response(&received, Envelope::empty()).unwrap();
                        let got = correlator.accept_response(&response);
                        prop_assert_eq!(got.map(|(t, _)| t), Some(token));
                        // And a duplicate of the same response no
                        // longer correlates.
                        prop_assert!(correlator.accept_response(&response).is_none());
                    }
                }
                2 => {
                    // Timeout: forget by token.
                    let was_pending = outstanding[slot].take().is_some();
                    prop_assert_eq!(correlator.forget_token(token), was_pending);
                }
                _ => {
                    // The slot's return pipe closes; its request (if
                    // any) is abandoned.
                    let had = outstanding[slot].take().is_some();
                    let abandoned = correlator.pipe_closed(&return_pipes[slot]);
                    prop_assert_eq!(abandoned, usize::from(had));
                }
            }
            // The pure state mirrors the expected pending set, and
            // every pending token's reply pipe is open.
            let state = correlator.machine_state();
            let expected: Vec<u64> = (0..4u64)
                .filter(|t| outstanding[*t as usize].is_some())
                .collect();
            let mut pending: Vec<u64> = state.pending.keys().copied().collect();
            pending.sort_unstable();
            prop_assert_eq!(pending, expected);
            prop_assert_eq!(correlator.pending(), state.pending.len());
            for pipe in state.pending.values() {
                prop_assert!(state.open_pipes.contains(pipe), "reply pipe closed");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SimNet (boxed-node front-end) ⇔ PeerSim (population front-end)
// ---------------------------------------------------------------------------
//
// Both simulation front-ends now schedule through the same
// `EventWheel`, but they reach it through very different machinery:
// SimNet dispatches boxed `Node` behaviours with per-node timer ids,
// PeerSim dispatches one struct-of-arrays model with raw wheel keys.
// These properties drive the *same* timed op sequence through a
// machine hosted in each world and assert the machine-observable
// traces — (virtual time, effects) pairs — are identical. Any drift
// between the two wheels' timer semantics (firing order, clamping,
// cancellation) shows up as a trace mismatch.

use std::cell::RefCell;
use std::rc::Rc;
use wsp_core::machines::breaker::BreakerState as MBreakerState;
use wsp_simnet::{
    Context, Dur, NodeEvent, PeerCtx, PeerEvent as SimPeerEvent, PeerModel, PeerSim, SimNet, Time,
};

type EffectTrace = Vec<(u64, Vec<u8>)>;

fn breaker_event_for(op: u8, now_ms: u64) -> BreakerEvent {
    match op {
        0 => BreakerEvent::Acquire { now: now_ms },
        1 => BreakerEvent::Success,
        2 => BreakerEvent::Failure { now: now_ms },
        _ => BreakerEvent::ProbeAborted { now: now_ms },
    }
}

fn breaker_effect_code(e: &BreakerEffect) -> u8 {
    match e {
        BreakerEffect::Admit(Admit::Allowed) => 0,
        BreakerEffect::Admit(Admit::Probe) => 1,
        BreakerEffect::Admit(Admit::Rejected) => 2,
        BreakerEffect::Tripped => 3,
        BreakerEffect::Recovered => 4,
        BreakerEffect::ProbeDiscarded => 5,
    }
}

fn wheel_breaker_machine() -> BreakerMachine {
    BreakerMachine {
        failure_threshold: 2,
        cooldown: 40, // ms — sequences of 1..30 ms steps straddle it
    }
}

/// Drive `ops` through a breaker hosted in a boxed SimNet node: each op
/// fires as a timer, steps the machine at the virtual-ms clock, and the
/// next op's timer is set from inside the handler.
fn simnet_breaker_trace(ops: &[(u8, u64)]) -> EffectTrace {
    let trace: Rc<RefCell<EffectTrace>> = Rc::default();
    let sink = Rc::clone(&trace);
    let ops = ops.to_vec();
    let machine = wheel_breaker_machine();
    let mut state = machine.initial();
    let mut net: SimNet<u64> = SimNet::new(1);
    net.add_node(Box::new(
        move |ctx: &mut Context<'_, u64>, ev: NodeEvent<u64>| match ev {
            NodeEvent::Start => {
                ctx.set_timer(Dur::millis(ops[0].1), 0);
            }
            NodeEvent::Timer { tag } => {
                let i = tag as usize;
                let now_ms = ctx.now().as_micros() / 1000;
                let effects = step_mut(&machine, &mut state, &breaker_event_for(ops[i].0, now_ms));
                sink.borrow_mut().push((
                    ctx.now().as_micros(),
                    effects.iter().map(breaker_effect_code).collect(),
                ));
                if i + 1 < ops.len() {
                    ctx.set_timer(Dur::millis(ops[i + 1].1), (i + 1) as u64);
                }
            }
            _ => {}
        },
    ));
    net.run_to_quiescence();
    let out = trace.borrow().clone();
    out
}

struct WheelBreakerModel {
    ops: Vec<(u8, u64)>,
    machine: BreakerMachine,
    state: MBreakerState,
    trace: EffectTrace,
}

impl PeerModel for WheelBreakerModel {
    type Msg = u64;

    fn on_event(&mut self, ctx: &mut PeerCtx<'_, u64>, _peer: u32, event: SimPeerEvent<u64>) {
        if let SimPeerEvent::Timer { tag } = event {
            let i = tag as usize;
            let now_ms = ctx.now().as_micros() / 1000;
            let effects = step_mut(
                &self.machine,
                &mut self.state,
                &breaker_event_for(self.ops[i].0, now_ms),
            );
            self.trace.push((
                ctx.now().as_micros(),
                effects.iter().map(breaker_effect_code).collect(),
            ));
            if i + 1 < self.ops.len() {
                ctx.set_timer(Dur::millis(self.ops[i + 1].1), (i + 1) as u64);
            }
        }
    }
}

/// The same schedule through the population front-end.
fn peersim_breaker_trace(ops: &[(u8, u64)]) -> EffectTrace {
    let machine = wheel_breaker_machine();
    let state = machine.initial();
    let mut sim = PeerSim::new(
        1,
        WheelBreakerModel {
            ops: ops.to_vec(),
            machine,
            state,
            trace: Vec::new(),
        },
    );
    sim.add_peers(1, 0);
    sim.schedule_timer_at(Time::millis(ops[0].1), 0, 0);
    sim.run_to_quiescence();
    sim.model().trace.clone()
}

fn admission_event_for(op: u8) -> AdmissionEvent {
    match op {
        0 => AdmissionEvent::Admit {
            queue_depth: 0,
            deadline_expired: false,
            over_watermark: false,
        },
        1 => AdmissionEvent::Release,
        2 => AdmissionEvent::BeginDrain,
        _ => AdmissionEvent::EndDrain,
    }
}

fn admission_effect_code(e: &AdmissionEffect) -> u8 {
    match e {
        AdmissionEffect::Admitted => 0,
        AdmissionEffect::Shed(r) => 1 + *r as u8,
        AdmissionEffect::Released => 10,
        AdmissionEffect::PermitUnderflow => 11,
    }
}

/// Admission machine under the boxed front-end.
fn simnet_admission_trace(ops: &[(u8, u64)]) -> EffectTrace {
    let trace: Rc<RefCell<EffectTrace>> = Rc::default();
    let sink = Rc::clone(&trace);
    let ops = ops.to_vec();
    let machine = AdmissionMachine {
        max_in_flight: 2,
        max_queue_depth: u64::MAX,
    };
    let mut state = machine.initial();
    let mut net: SimNet<u64> = SimNet::new(1);
    net.add_node(Box::new(
        move |ctx: &mut Context<'_, u64>, ev: NodeEvent<u64>| match ev {
            NodeEvent::Start => {
                ctx.set_timer(Dur::millis(ops[0].1), 0);
            }
            NodeEvent::Timer { tag } => {
                let i = tag as usize;
                let effects = step_mut(&machine, &mut state, &admission_event_for(ops[i].0));
                sink.borrow_mut().push((
                    ctx.now().as_micros(),
                    effects.iter().map(admission_effect_code).collect(),
                ));
                if i + 1 < ops.len() {
                    ctx.set_timer(Dur::millis(ops[i + 1].1), (i + 1) as u64);
                }
            }
            _ => {}
        },
    ));
    net.run_to_quiescence();
    let out = trace.borrow().clone();
    out
}

struct WheelAdmissionModel {
    ops: Vec<(u8, u64)>,
    machine: AdmissionMachine,
    state: wsp_core::machines::admission::AdmissionState,
    trace: EffectTrace,
}

impl PeerModel for WheelAdmissionModel {
    type Msg = u64;

    fn on_event(&mut self, ctx: &mut PeerCtx<'_, u64>, _peer: u32, event: SimPeerEvent<u64>) {
        if let SimPeerEvent::Timer { tag } = event {
            let i = tag as usize;
            let effects = step_mut(
                &self.machine,
                &mut self.state,
                &admission_event_for(self.ops[i].0),
            );
            self.trace.push((
                ctx.now().as_micros(),
                effects.iter().map(admission_effect_code).collect(),
            ));
            if i + 1 < self.ops.len() {
                ctx.set_timer(Dur::millis(self.ops[i + 1].1), (i + 1) as u64);
            }
        }
    }
}

/// Admission machine under the population front-end.
fn peersim_admission_trace(ops: &[(u8, u64)]) -> EffectTrace {
    let machine = AdmissionMachine {
        max_in_flight: 2,
        max_queue_depth: u64::MAX,
    };
    let state = machine.initial();
    let mut sim = PeerSim::new(
        1,
        WheelAdmissionModel {
            ops: ops.to_vec(),
            machine,
            state,
            trace: Vec::new(),
        },
    );
    sim.add_peers(1, 0);
    sim.schedule_timer_at(Time::millis(ops[0].1), 0, 0);
    sim.run_to_quiescence();
    sim.model().trace.clone()
}

fn arb_timed_ops() -> impl Strategy<Value = Vec<(u8, u64)>> {
    // (op selector, inter-op delay in ms 1..30)
    proptest::collection::vec((0u8..4, 1u64..30), 1..50)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Breaker: the boxed front-end and the population front-end
    /// produce identical machine-observable traces for any timed op
    /// sequence.
    #[test]
    fn breaker_traces_agree_across_front_ends(ops in arb_timed_ops()) {
        let old = simnet_breaker_trace(&ops);
        let new = peersim_breaker_trace(&ops);
        prop_assert_eq!(old.len(), ops.len(), "every op must fire");
        prop_assert_eq!(old, new);
    }

    /// Admission: same lockstep, same bar.
    #[test]
    fn admission_traces_agree_across_front_ends(ops in arb_timed_ops()) {
        let old = simnet_admission_trace(&ops);
        let new = peersim_admission_trace(&ops);
        prop_assert_eq!(old.len(), ops.len(), "every op must fire");
        prop_assert_eq!(old, new);
    }
}

//! Figure 3 over a real network registry: deploy / publish / locate /
//! invoke with every piece on the wire, plus fault paths, dynamic
//! undeploy and the HTTPG authenticated transport.

use std::sync::Arc;
use wsp_core::bindings::{HttpUddiBinding, HttpUddiConfig};
use wsp_core::{EventBus, Peer, ServiceQuery, WspError};
use wsp_http::HttpgCredential;
use wsp_integration_tests::{calc_descriptor, calc_handler};
use wsp_uddi::{RegistryServer, UddiClient};
use wsp_wsdl::Value;

fn networked_pair() -> (RegistryServer, Peer, Peer) {
    let registry = RegistryServer::launch(0).unwrap();
    let provider = Peer::with_binding(&HttpUddiBinding::with_registry_uri(
        &registry.uri(),
        EventBus::new(),
    ));
    let consumer = Peer::with_binding(&HttpUddiBinding::with_registry_uri(
        &registry.uri(),
        EventBus::new(),
    ));
    (registry, provider, consumer)
}

#[test]
fn full_lifecycle_over_network_registry() {
    let (registry, provider, consumer) = networked_pair();
    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();

    let service = consumer
        .client()
        .locate_one(&ServiceQuery::by_name("Calc"))
        .unwrap();
    assert!(service.endpoint.starts_with("http://127.0.0.1:"));
    // The WSDL fetched over the wire carries the full contract.
    assert_eq!(service.wsdl.descriptor.operations.len(), 4);

    let sum = consumer
        .client()
        .invoke(&service, "add", &[Value::Double(40.0), Value::Double(2.0)])
        .unwrap();
    assert_eq!(sum, Value::Double(42.0));
    registry.shutdown();
}

#[test]
fn service_fault_crosses_the_wire() {
    let (registry, provider, consumer) = networked_pair();
    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();
    let service = consumer
        .client()
        .locate_one(&ServiceQuery::by_name("Calc"))
        .unwrap();
    let err = consumer.client().invoke(&service, "fail", &[]).unwrap_err();
    match err {
        WspError::Fault(fault) => assert_eq!(fault.reason, "deliberate failure"),
        other => panic!("expected fault, got {other:?}"),
    }
    registry.shutdown();
}

#[test]
fn one_way_operation_returns_immediately() {
    let (registry, provider, consumer) = networked_pair();
    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();
    let service = consumer
        .client()
        .locate_one(&ServiceQuery::by_name("Calc"))
        .unwrap();
    let out = consumer
        .client()
        .invoke(&service, "log", &[Value::string("note")])
        .unwrap();
    assert_eq!(out, Value::Null);
    registry.shutdown();
}

#[test]
fn undeploy_yields_404_and_unpublish_removes_record() {
    let (registry, provider, consumer) = networked_pair();
    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();
    let service = consumer
        .client()
        .locate_one(&ServiceQuery::by_name("Calc"))
        .unwrap();

    assert!(provider.server().undeploy("Calc"));
    // Registry record is gone: fresh discovery finds nothing.
    assert!(consumer
        .client()
        .locate(&ServiceQuery::by_name("Calc"))
        .unwrap()
        .is_empty());
    // And the old endpoint no longer answers.
    let err = consumer
        .client()
        .invoke(&service, "add", &[Value::Double(1.0), Value::Double(1.0)])
        .unwrap_err();
    assert!(matches!(err, WspError::Invoke(_)), "{err:?}");
    registry.shutdown();
}

#[test]
fn redeploy_at_runtime_updates_behaviour() {
    let (registry, provider, consumer) = networked_pair();
    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();
    let service = consumer
        .client()
        .locate_one(&ServiceQuery::by_name("Calc"))
        .unwrap();
    assert_eq!(
        consumer
            .client()
            .invoke(&service, "add", &[Value::Double(1.0), Value::Double(1.0)])
            .unwrap(),
        Value::Double(2.0)
    );
    // Hot-swap the implementation (no restart — the container-less
    // host just replaces the route).
    provider
        .server()
        .deploy(
            calc_descriptor(),
            Arc::new(|_op: &str, _args: &[Value]| Ok(Value::Double(-1.0))),
        )
        .unwrap();
    assert_eq!(
        consumer
            .client()
            .invoke(&service, "add", &[Value::Double(1.0), Value::Double(1.0)])
            .unwrap(),
        Value::Double(-1.0)
    );
    registry.shutdown();
}

#[test]
fn discovery_by_property_category() {
    let (registry, provider, consumer) = networked_pair();
    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();
    let hits = consumer
        .client()
        .locate(&ServiceQuery::any().with_property("suite", "integration"))
        .unwrap();
    assert_eq!(hits.len(), 1);
    let misses = consumer
        .client()
        .locate(&ServiceQuery::any().with_property("suite", "production"))
        .unwrap();
    assert!(misses.is_empty());
    registry.shutdown();
}

#[test]
fn httpg_transport_requires_credentials() {
    let registry = RegistryServer::launch(0).unwrap();
    let credential = HttpgCredential::new("grid-secret", "/O=Grid/CN=wspeer-test");

    let provider_binding = HttpUddiBinding::new(
        UddiClient::http(registry.uri()),
        EventBus::new(),
        HttpUddiConfig {
            httpg: Some(credential.clone()),
            ..HttpUddiConfig::default()
        },
    );
    let provider = Peer::with_binding(&provider_binding);
    provider
        .server()
        .deploy_and_publish(calc_descriptor(), calc_handler())
        .unwrap();
    let deployed = provider.server().deployed_service("Calc").unwrap();
    assert!(deployed.primary_endpoint().unwrap().starts_with("httpg://"));

    // A consumer with the right credential succeeds.
    let good = Peer::with_binding(&HttpUddiBinding::new(
        UddiClient::http(registry.uri()),
        EventBus::new(),
        HttpUddiConfig {
            httpg: Some(credential),
            ..HttpUddiConfig::default()
        },
    ));
    let service = good
        .client()
        .locate_one(&ServiceQuery::by_name("Calc"))
        .unwrap();
    let sum = good
        .client()
        .invoke(&service, "add", &[Value::Double(2.0), Value::Double(3.0)])
        .unwrap();
    assert_eq!(sum, Value::Double(5.0));

    // A consumer with the wrong credential is rejected at the transport.
    let bad = Peer::with_binding(&HttpUddiBinding::new(
        UddiClient::http(registry.uri()),
        EventBus::new(),
        HttpUddiConfig {
            httpg: Some(HttpgCredential::new("wrong-secret", "/CN=mallory")),
            ..HttpUddiConfig::default()
        },
    ));
    // Discovery already fails: the WSDL fetch is guarded too.
    assert!(bad
        .client()
        .locate(&ServiceQuery::by_name("Calc"))
        .unwrap()
        .is_empty());
    // Direct invocation with a stale LocatedService fails as well.
    let err = bad
        .client()
        .invoke(&service, "add", &[Value::Double(1.0), Value::Double(1.0)]);
    assert!(err.is_err());
    registry.shutdown();
}

#[test]
fn two_providers_same_name_both_located() {
    let registry = RegistryServer::launch(0).unwrap();
    for _ in 0..2 {
        let provider = Peer::with_binding(&HttpUddiBinding::with_registry_uri(
            &registry.uri(),
            EventBus::new(),
        ));
        provider
            .server()
            .deploy_and_publish(calc_descriptor(), calc_handler())
            .unwrap();
        std::mem::forget(provider); // keep hosts alive for the assertion
    }
    let consumer = Peer::with_binding(&HttpUddiBinding::with_registry_uri(
        &registry.uri(),
        EventBus::new(),
    ));
    let hits = consumer
        .client()
        .locate(&ServiceQuery::by_name("Calc"))
        .unwrap();
    assert_eq!(hits.len(), 2);
    let endpoints: std::collections::HashSet<_> = hits.iter().map(|h| h.endpoint.clone()).collect();
    assert_eq!(endpoints.len(), 2, "distinct providers");
    registry.shutdown();
}

//! Rich (DAML-style) queries over both bindings: the expression is
//! pushed down as a sound base query and refined client-side against
//! the properties carried in each service's WSDL.

use std::sync::Arc;
use std::time::Duration;
use wsp_core::bindings::HttpUddiBinding;
use wsp_core::{EventBus, Peer, QueryExpr};
use wsp_integration_tests::{p2ps_star, p2ps_wspeer};
use wsp_uddi::Registry;
use wsp_wsdl::{OperationDef, ServiceDescriptor, ServiceHandler, Value, XsdType};

fn tool(name: &str, domain: &str, tier: &str) -> ServiceDescriptor {
    ServiceDescriptor::new(name, format!("urn:rq:{name}"))
        .property("domain", domain)
        .property("tier", tier)
        .operation(
            OperationDef::new("run")
                .input("x", XsdType::Int)
                .returns(XsdType::Int),
        )
}

fn handler() -> Arc<dyn ServiceHandler> {
    Arc::new(|_op: &str, args: &[Value]| Ok(args[0].clone()))
}

/// `(text % gold) OR (media % any-tier)` except the one named Legacy%.
fn expr() -> QueryExpr {
    QueryExpr::property("domain", "text")
        .and(QueryExpr::property("tier", "gold"))
        .or(QueryExpr::property("domain", "media"))
        .and(QueryExpr::name("Legacy%").not())
}

fn expected(names: &[&str]) -> Vec<String> {
    let mut v: Vec<String> = names.iter().map(|s| s.to_string()).collect();
    v.sort();
    v
}

#[test]
fn rich_query_over_http_uddi() {
    let registry = Registry::new();
    let provider = Peer::with_binding(&HttpUddiBinding::with_local_registry(
        registry.clone(),
        EventBus::new(),
    ));
    for descriptor in [
        tool("Tokenizer", "text", "gold"),
        tool("Upcase", "text", "bronze"), // text but not gold: excluded
        tool("Thumbnailer", "media", "bronze"),
        tool("LegacyRenderer", "media", "gold"), // excluded by Not(name)
    ] {
        provider
            .server()
            .deploy_and_publish(descriptor, handler())
            .unwrap();
    }

    let consumer = Peer::with_binding(&HttpUddiBinding::with_local_registry(
        registry,
        EventBus::new(),
    ));
    let mut found: Vec<String> = consumer
        .client()
        .locate_where(&expr())
        .unwrap()
        .iter()
        .map(|s| s.name().to_owned())
        .collect();
    found.sort();
    assert_eq!(found, expected(&["Thumbnailer", "Tokenizer"]));
}

#[test]
fn rich_query_over_p2ps() {
    let (_network, _rv, mut peers) = p2ps_star(2);
    let (provider, _pb) = p2ps_wspeer(peers.pop().unwrap());
    let (consumer, _cb) = p2ps_wspeer(peers.pop().unwrap());
    for descriptor in [
        tool("Tokenizer", "text", "gold"),
        tool("Upcase", "text", "bronze"),
        tool("Thumbnailer", "media", "bronze"),
        tool("LegacyRenderer", "media", "gold"),
    ] {
        provider
            .server()
            .deploy_and_publish(descriptor, handler())
            .unwrap();
    }
    std::thread::sleep(Duration::from_millis(200));

    let mut found: Vec<String> = consumer
        .client()
        .locate_where(&expr())
        .unwrap()
        .iter()
        .map(|s| s.name().to_owned())
        .collect();
    found.sort();
    assert_eq!(found, expected(&["Thumbnailer", "Tokenizer"]));
}

#!/usr/bin/env bash
# CI gate: build, test, format and lint the whole workspace.
# Run locally before pushing; the workflow runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

# Fault-injection matrix under two fixed seeds: the suite itself checks
# bit-reproducibility per seed; running a second seed (release, so the
# threaded watchdog timings are realistic) guards against tuning the
# resilience layer to one lucky point in seed space.
echo "==> fault injection matrix (seed 2005, debug)"
WSP_FAULT_SEED=2005 cargo test -q -p wsp-integration-tests --test fault_injection

echo "==> fault injection matrix (seed 7, release)"
WSP_FAULT_SEED=7 cargo test -q --release -p wsp-integration-tests --test fault_injection

# Overload smoke: the admission/deadline/drain suite runs over real
# sockets, then the simulated 4x-overload scenarios (shed-vs-serve
# split, backoff-beats-hammering, bit-reproducibility) are pinned under
# the same two fixed seeds as the fault matrix above so a regression in
# the shedding path cannot hide behind seed luck.
echo "==> overload smoke (admission control, deadlines, graceful drain)"
cargo test -q -p wsp-integration-tests --test overload

echo "==> overload matrix (seed 2005 / seed 7)"
WSP_FAULT_SEED=2005 cargo test -q -p wsp-integration-tests --test fault_injection http_overload
WSP_FAULT_SEED=7 cargo test -q -p wsp-integration-tests --test fault_injection http_overload

# Telemetry smoke-check: deploys a service on the container-less host,
# invokes it over real HTTP, and scrapes /metrics — counters,
# histograms, pool/dispatcher gauges and correlated trace lines must
# all be present (plus the fault-run reconstruction test).
echo "==> /metrics smoke check (telemetry integration suite)"
cargo test -q -p wsp-integration-tests --test telemetry

# Wire-path guards (PR 5): the single-pass writer must stay
# byte-identical to the vendored pre-PR-5 writer on every document
# family, the buffer pool must hold up under concurrency, and the
# allocation ceilings (counting global allocator, release mode so the
# numbers match EXPERIMENTS.md §E12) must not regress.
echo "==> wire-byte identity + pool concurrency"
cargo test -q -p wsp-integration-tests --test wire_bytes --test bufpool

echo "==> allocation-regression guard (release)"
cargo test -q --release -p wsp-integration-tests --test alloc_guard

# Population-scale smoke (PR 7): the seed-sweep tier's non-ignored
# subset — a 100k-peer flash crowd asserted bit-identical across two
# runs plus partition-heal and straggler smokes — under two fixed seeds
# in release. The whole subset runs in seconds; `timeout` enforces the
# 60 s wall-clock budget the E14 acceptance bar promises. The full
# 8-seed sweeps are `#[ignore]`d (run with `-- --ignored`).
echo "==> population-scale smoke (sim_scale, seed 2005 / seed 7, release)"
WSP_FAULT_SEED=2005 timeout 300 cargo test -q --release -p wsp-integration-tests --test sim_scale
WSP_FAULT_SEED=7 timeout 300 cargo test -q --release -p wsp-integration-tests --test sim_scale

# E14 artifact: sim events/sec, peak peer count and per-scenario
# digests, for the CI artifact trail (quick mode: 100k-peer ladder).
echo "==> E14 artifact (BENCH_E14.json)"
cargo run -q --release -p wsp-bench --bin e14 -- quick

# Reactor core (PR 8): the default transport is now the epoll reactor,
# so every socket-level suite above already ran on it. Re-pin the E11
# admission/deadline/drain suite explicitly under both fixed seeds in
# release (the reactor's timer wheel drives the staged deadlines), then
# emit the E15 connection-density artifact in quick mode (2 000 held
# keep-alive connections vs a 200-thread baseline; the full 10k-conn
# table lives in EXPERIMENTS.md §E15). The e15 bin exits nonzero unless
# the reactor holds every target connection AND is cheaper per
# connection than the threaded baseline, so this stage is a gate, not
# just an artifact.
echo "==> reactor overload/drain matrix (seed 2005 / seed 7, release)"
WSP_FAULT_SEED=2005 timeout 300 cargo test -q --release -p wsp-integration-tests --test overload
WSP_FAULT_SEED=7 timeout 300 cargo test -q --release -p wsp-integration-tests --test overload

echo "==> E15 artifact (BENCH_E15.json, quick)"
timeout 300 cargo run -q --release -p wsp-bench --bin e15 -- quick

# Model checking (PR 6): exhaustively explore every pure protocol
# machine (breaker, admission, correlation, drain, RPC routing) plus
# the composed breaker×admission×correlation pipeline, checking the
# invariant suite on every reachable state and transition. Runs in well
# under a minute; on failure it prints the shortest counterexample
# trace. The shell↔machine lockstep properties ride in the normal
# test pass (tests/tests/machine_bisim.rs).
echo "==> wsp-check (exhaustive state-machine exploration)"
cargo run -q --release -p wsp-check

# Discovery plane (PR 9): the replicated registry. The wsp-check run
# above already exhausts the VR-lite replication group and the lease
# machine; the mutation pass below re-runs every seeded mutant (the
# skip-log-catchup replica among them) and fails unless each one is
# condemned with a counterexample trace. Then the failover matrix:
# committed publishes must survive a primary crash, stale-epoch clients
# must complete after the versioned shard-map redirect over BOTH real
# bindings (HTTP and P2PS pipes), and lease-expiry traces must replay
# bit-identically per seed. Finally the E16 A/B artifact — the e16 bin
# exits nonzero if any committed publish is lost or sharded locate
# availability drops below 99% during the view change, so it is a gate.
echo "==> wsp-check mutation pass (seeded mutants must be condemned)"
cargo run -q --release -p wsp-check -- --mutants

echo "==> registry failover matrix (seed 2005 / seed 7)"
WSP_FAULT_SEED=2005 timeout 300 cargo test -q -p wsp-integration-tests --test registry_failover
WSP_FAULT_SEED=7 timeout 300 cargo test -q --release -p wsp-integration-tests --test registry_failover

echo "==> E16 artifact (BENCH_E16.json, quick)"
timeout 300 cargo run -q --release -p wsp-bench --bin e16 -- quick

# Mediation gateway (PR 10): the keyed (per-tenant) admission machine
# is exhausted by the wsp-check run above and its ignore-the-reserve
# mutant condemned by the mutation pass. The gateway fault matrix
# re-runs the integration suite — byte-identical cache replays,
# invalidation-on-republish without waiting out the TTL, backend
# crash failover, total-loss route invalidation, registry view-change
# under cached maps, hot-tenant flood isolation over both fronts —
# under the two fixed seeds. The e17 bin exits nonzero unless the
# gateway clears 3x direct goodput on the cache-friendly mix (every
# hit byte-identical), the hot flood is shed at the edge, and the cold
# tenant's p99 stays within 2x its isolated baseline, so it is a gate.
echo "==> gateway fault matrix (seed 2005 / seed 7)"
WSP_FAULT_SEED=2005 timeout 300 cargo test -q -p wsp-integration-tests --test gateway
WSP_FAULT_SEED=7 timeout 300 cargo test -q --release -p wsp-integration-tests --test gateway

echo "==> E17 artifact (BENCH_E17.json, quick)"
timeout 300 cargo run -q --release -p wsp-bench --bin e17 -- quick

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI gate passed."

#!/usr/bin/env bash
# CI gate: build, test, format and lint the whole workspace.
# Run locally before pushing; the workflow runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI gate passed."

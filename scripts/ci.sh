#!/usr/bin/env bash
# CI gate: build, test, format and lint the whole workspace.
# Run locally before pushing; the workflow runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

# Fault-injection matrix under two fixed seeds: the suite itself checks
# bit-reproducibility per seed; running a second seed (release, so the
# threaded watchdog timings are realistic) guards against tuning the
# resilience layer to one lucky point in seed space.
echo "==> fault injection matrix (seed 2005, debug)"
WSP_FAULT_SEED=2005 cargo test -q -p wsp-integration-tests --test fault_injection

echo "==> fault injection matrix (seed 7, release)"
WSP_FAULT_SEED=7 cargo test -q --release -p wsp-integration-tests --test fault_injection

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI gate passed."

//! Pure protocol state machines (see [`wsp_simnet::machine`]).
//!
//! Each submodule is the *entire* protocol logic of one runtime
//! component, expressed as a [`wsp_simnet::Machine`]: a pure
//! `step(&state, &event) -> (state, effects)` with no wall-clock, no
//! locks, no I/O. The runtime shells — [`crate::health`] for the
//! breaker, [`crate::overload`] for admission, [`crate::dispatch`] for
//! the correlation table — feed events in and execute effects out;
//! they hold no protocol decisions of their own. The `wsp-check` crate
//! exhaustively explores small configurations of these machines (and
//! compositions of them) for invariant violations.
//!
//! Time never enters a machine through a clock: events that depend on
//! elapsed time carry an explicit `now` in **logical ticks** (the
//! shell converts `Instant`s relative to a private epoch; the model
//! checker uses small integers).

pub mod admission;
pub mod breaker;
pub mod correlation;
pub mod keyed_admission;

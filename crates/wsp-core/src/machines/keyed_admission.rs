//! Per-tenant weighted fair-share admission as a pure machine.
//!
//! The global [`super::admission::AdmissionMachine`] protects a host
//! from aggregate overload but lets one hot caller consume the whole
//! in-flight budget. This machine generalises it to *keyed* admission:
//! tenants (interned to dense indices by the shell) share one global
//! cap, each with a weight, and the cap is split into guaranteed
//! shares by largest-remainder apportionment. The admit rule is:
//!
//! * a tenant below its guaranteed share is always admitted (unless
//!   draining / expired / over the watermark);
//! * a tenant at or above its share may borrow idle capacity, but only
//!   while `total < global_cap - reserve`, where `reserve` is the sum
//!   of every tenant's unused guaranteed share.
//!
//! The reserve term is what makes the no-starvation guarantee *local*:
//! borrowed capacity can never eat into another tenant's untaken
//! guarantee, so the inductive invariant
//!
//! ```text
//! total + Σ_t max(0, guaranteed(t) − in_flight(t)) ≤ global_cap
//! ```
//!
//! holds across every transition — and it directly implies both permit
//! conservation (`total ≤ global_cap`) and no-starvation (a tenant
//! below its share has positive slack, hence `total < global_cap`, and
//! the below-share branch admits unconditionally). `wsp-check`
//! explores small configurations exhaustively and the mutation pass
//! condemns a borrow rule that forgets the reserve.

use wsp_simnet::Machine;

/// Configuration: the global cap, per-tenant weights (index = tenant
/// id) and a per-tenant burst ceiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedAdmissionMachine {
    /// Hard ceiling on total in-flight permits across all tenants.
    pub global_cap: u64,
    /// Relative weight per tenant; guaranteed shares are apportioned
    /// `global_cap * weight / Σ weights` (largest remainder).
    pub weights: Vec<u64>,
    /// Hard per-tenant ceiling, the burst limit a single tenant can
    /// reach even when everything else is idle.
    pub tenant_cap: u64,
}

impl KeyedAdmissionMachine {
    /// Guaranteed share per tenant: largest-remainder apportionment of
    /// `global_cap` by weight, then every zero share is raised to 1
    /// while shares above 1 are trimmed to compensate (a tenant with a
    /// guarantee of zero could starve, which is the thing this machine
    /// exists to prevent). Shares never exceed `tenant_cap`, and their
    /// sum never exceeds `global_cap` — when there are more tenants
    /// than permits the later tenants keep a zero share (the guarantee
    /// needs `global_cap >= tenants`, which every real policy has).
    pub fn guaranteed(&self) -> Vec<u64> {
        let n = self.weights.len();
        if n == 0 {
            return Vec::new();
        }
        let total_weight = u128::from(self.weights.iter().sum::<u64>().max(1));
        let exact = |w: u64| u128::from(self.global_cap) * u128::from(w);
        let mut shares: Vec<u64> = self
            .weights
            .iter()
            .map(|&w| (exact(w) / total_weight) as u64)
            .collect();
        // Largest remainder: hand the leftover permits to the largest
        // fractional parts, index order breaking ties.
        let mut leftover = self.global_cap.saturating_sub(shares.iter().sum());
        let mut by_remainder: Vec<usize> = (0..n).collect();
        by_remainder.sort_by_key(|&i| {
            let rem = exact(self.weights[i]) % total_weight;
            (std::cmp::Reverse(rem), i)
        });
        for &i in &by_remainder {
            if leftover == 0 {
                break;
            }
            shares[i] += 1;
            leftover -= 1;
        }
        // Anti-starvation floor: raise zero shares to 1, paid for by
        // trimming the largest shares.
        for i in 0..n {
            if shares[i] == 0 {
                if let Some(donor) = (0..n).filter(|&j| shares[j] > 1).max_by_key(|&j| shares[j]) {
                    shares[donor] -= 1;
                    shares[i] = 1;
                }
            }
        }
        for s in &mut shares {
            *s = (*s).min(self.tenant_cap);
        }
        shares
    }

    /// [`Machine::step`] with the apportionment supplied by the caller.
    /// `guaranteed` must equal [`Self::guaranteed`]`()` for the current
    /// weight vector — the shell caches it and recomputes only when a
    /// tenant is interned, so the per-admission work under its lock
    /// stays O(tenants) instead of O(tenants log tenants).
    pub fn step_apportioned(
        &self,
        guaranteed: &[u64],
        state: &KeyedAdmissionState,
        event: &KeyedAdmissionEvent,
    ) -> (KeyedAdmissionState, Vec<KeyedAdmissionEffect>) {
        use KeyedAdmissionEffect::*;
        let mut next = state.clone();
        match *event {
            KeyedAdmissionEvent::Admit {
                tenant,
                deadline_expired,
                over_watermark,
            } => {
                let f = state.in_flight[tenant];
                let total = state.total();
                let shed = if deadline_expired {
                    Some(KeyedShedReason::DeadlineExpired)
                } else if state.draining {
                    Some(KeyedShedReason::Draining)
                } else if over_watermark {
                    Some(KeyedShedReason::OverWatermark)
                } else if f >= self.tenant_cap {
                    Some(KeyedShedReason::TenantCap)
                } else if total >= self.global_cap {
                    // The hard ceiling outranks the guaranteed share:
                    // with a fixed population the reserve invariant
                    // makes `f < guaranteed[tenant]` imply
                    // `total < global_cap` so this branch never sheds a
                    // below-share tenant, but re-apportionment (a new
                    // tenant interned mid-flight) can shrink shares
                    // under permits granted against the old ones.
                    Some(KeyedShedReason::GlobalCap)
                } else if f < guaranteed[tenant] {
                    // Below the guaranteed share: admit unconditionally.
                    None
                } else {
                    // Borrowing idle capacity: only what is not being
                    // held in reserve for under-share tenants.
                    let reserve: u64 = guaranteed
                        .iter()
                        .zip(&state.in_flight)
                        .map(|(&g, &used)| g.saturating_sub(used))
                        .sum();
                    if total + reserve >= self.global_cap {
                        Some(KeyedShedReason::FairShareReserve)
                    } else {
                        None
                    }
                };
                match shed {
                    Some(reason) => (next, vec![Shed { tenant, reason }]),
                    None => {
                        next.in_flight[tenant] += 1;
                        (next, vec![Admitted { tenant }])
                    }
                }
            }
            KeyedAdmissionEvent::Release { tenant } => {
                if state.in_flight[tenant] == 0 {
                    return (next, vec![PermitUnderflow]);
                }
                next.in_flight[tenant] -= 1;
                (next, vec![Released { tenant }])
            }
            KeyedAdmissionEvent::BeginDrain => {
                next.draining = true;
                (next, vec![])
            }
            KeyedAdmissionEvent::EndDrain => {
                next.draining = false;
                (next, vec![])
            }
        }
    }
}

/// Stored state: in-flight permits per tenant, plus drain mode.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct KeyedAdmissionState {
    pub in_flight: Vec<u64>,
    pub draining: bool,
}

impl KeyedAdmissionState {
    pub fn total(&self) -> u64 {
        self.in_flight.iter().sum()
    }
}

/// Events: one request per tenant asking in, one permit returning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyedAdmissionEvent {
    Admit {
        tenant: usize,
        /// The caller's propagated deadline had already expired.
        deadline_expired: bool,
        /// The sampled queue-wait watermark verdict.
        over_watermark: bool,
    },
    Release {
        tenant: usize,
    },
    BeginDrain,
    EndDrain,
}

/// Why a keyed admission was refused, in shed-priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyedShedReason {
    DeadlineExpired,
    Draining,
    OverWatermark,
    /// The tenant hit its own burst ceiling.
    TenantCap,
    /// The whole host is at the global cap.
    GlobalCap,
    /// Idle capacity exists, but it is reserved for tenants still
    /// below their guaranteed shares.
    FairShareReserve,
}

/// Instructions back to the shell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyedAdmissionEffect {
    Admitted {
        tenant: usize,
    },
    Shed {
        tenant: usize,
        reason: KeyedShedReason,
    },
    Released {
        tenant: usize,
    },
    /// A release arrived for a tenant with nothing in flight.
    PermitUnderflow,
}

impl Machine for KeyedAdmissionMachine {
    type State = KeyedAdmissionState;
    type Event = KeyedAdmissionEvent;
    type Effect = KeyedAdmissionEffect;

    fn initial(&self) -> KeyedAdmissionState {
        KeyedAdmissionState {
            in_flight: vec![0; self.weights.len()],
            draining: false,
        }
    }

    fn step(
        &self,
        state: &KeyedAdmissionState,
        event: &KeyedAdmissionEvent,
    ) -> (KeyedAdmissionState, Vec<KeyedAdmissionEffect>) {
        self.step_apportioned(&self.guaranteed(), state, event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_simnet::step_mut;

    fn admit(tenant: usize) -> KeyedAdmissionEvent {
        KeyedAdmissionEvent::Admit {
            tenant,
            deadline_expired: false,
            over_watermark: false,
        }
    }

    fn machine(cap: u64, weights: &[u64], tenant_cap: u64) -> KeyedAdmissionMachine {
        KeyedAdmissionMachine {
            global_cap: cap,
            weights: weights.to_vec(),
            tenant_cap,
        }
    }

    #[test]
    fn shares_apportion_by_weight_and_sum_to_cap() {
        let m = machine(8, &[3, 1], 8);
        assert_eq!(m.guaranteed(), vec![6, 2]);
        let m = machine(4, &[2, 1], 4);
        // floor gives [2,1]; remainder 1 goes to the larger fraction.
        let g = m.guaranteed();
        assert_eq!(g.iter().sum::<u64>(), 4);
        assert!(g[0] >= g[1]);
    }

    #[test]
    fn zero_floor_shares_are_raised_to_one() {
        let m = machine(4, &[1, 1, 1, 100], 4);
        let g = m.guaranteed();
        assert!(g.iter().all(|&s| s >= 1), "{g:?}");
        assert!(g.iter().sum::<u64>() <= 4);
    }

    #[test]
    fn a_greedy_tenant_cannot_take_the_reserve() {
        let m = machine(4, &[1, 1], 3);
        let g = m.guaranteed();
        assert_eq!(g, vec![2, 2]);
        let mut s = m.initial();
        // Tenant 0 takes its share of 2, then asks for a third: the
        // third permit would eat tenant 1's untouched reserve.
        assert!(matches!(
            step_mut(&m, &mut s, &admit(0))[0],
            KeyedAdmissionEffect::Admitted { tenant: 0 }
        ));
        assert!(matches!(
            step_mut(&m, &mut s, &admit(0))[0],
            KeyedAdmissionEffect::Admitted { tenant: 0 }
        ));
        assert_eq!(
            step_mut(&m, &mut s, &admit(0)),
            vec![KeyedAdmissionEffect::Shed {
                tenant: 0,
                reason: KeyedShedReason::FairShareReserve
            }]
        );
        // Tenant 1's guarantee is intact.
        assert!(matches!(
            step_mut(&m, &mut s, &admit(1))[0],
            KeyedAdmissionEffect::Admitted { tenant: 1 }
        ));
    }

    #[test]
    fn borrowing_is_allowed_once_the_owner_uses_its_share() {
        let m = machine(6, &[1, 1], 6);
        let mut s = m.initial();
        // Tenant 1 takes one of its three guaranteed permits; the
        // reserve is now 2, so the total may reach 6 - 2 = 4 and
        // tenant 0 may borrow up to three permits.
        step_mut(&m, &mut s, &admit(1));
        for _ in 0..3 {
            assert!(matches!(
                step_mut(&m, &mut s, &admit(0))[0],
                KeyedAdmissionEffect::Admitted { tenant: 0 }
            ));
        }
        assert!(matches!(
            step_mut(&m, &mut s, &admit(0))[0],
            KeyedAdmissionEffect::Shed {
                tenant: 0,
                reason: KeyedShedReason::FairShareReserve
            }
        ));
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn tenant_cap_binds_before_borrowing() {
        let m = machine(8, &[1, 1], 2);
        let mut s = m.initial();
        step_mut(&m, &mut s, &admit(0));
        step_mut(&m, &mut s, &admit(0));
        assert_eq!(
            step_mut(&m, &mut s, &admit(0)),
            vec![KeyedAdmissionEffect::Shed {
                tenant: 0,
                reason: KeyedShedReason::TenantCap
            }]
        );
    }

    #[test]
    fn shed_priority_order_is_stable() {
        let m = machine(2, &[1], 2);
        let mut s = KeyedAdmissionState {
            in_flight: vec![0],
            draining: true,
        };
        assert_eq!(
            step_mut(
                &m,
                &mut s,
                &KeyedAdmissionEvent::Admit {
                    tenant: 0,
                    deadline_expired: true,
                    over_watermark: true,
                }
            ),
            vec![KeyedAdmissionEffect::Shed {
                tenant: 0,
                reason: KeyedShedReason::DeadlineExpired
            }]
        );
        assert_eq!(
            step_mut(
                &m,
                &mut s,
                &KeyedAdmissionEvent::Admit {
                    tenant: 0,
                    deadline_expired: false,
                    over_watermark: true,
                }
            ),
            vec![KeyedAdmissionEffect::Shed {
                tenant: 0,
                reason: KeyedShedReason::Draining
            }]
        );
        s.draining = false;
        assert_eq!(
            step_mut(
                &m,
                &mut s,
                &KeyedAdmissionEvent::Admit {
                    tenant: 0,
                    deadline_expired: false,
                    over_watermark: true,
                }
            ),
            vec![KeyedAdmissionEffect::Shed {
                tenant: 0,
                reason: KeyedShedReason::OverWatermark
            }]
        );
    }

    #[test]
    fn release_underflow_is_an_effect_not_a_wrap() {
        let m = machine(2, &[1, 1], 2);
        let mut s = m.initial();
        assert_eq!(
            step_mut(&m, &mut s, &KeyedAdmissionEvent::Release { tenant: 1 }),
            vec![KeyedAdmissionEffect::PermitUnderflow]
        );
        assert_eq!(s.in_flight, vec![0, 0]);
    }

    #[test]
    fn drain_refuses_per_tenant_then_recovers() {
        let m = machine(4, &[1, 1], 4);
        let mut s = m.initial();
        step_mut(&m, &mut s, &admit(0));
        step_mut(&m, &mut s, &KeyedAdmissionEvent::BeginDrain);
        assert!(matches!(
            step_mut(&m, &mut s, &admit(1))[0],
            KeyedAdmissionEffect::Shed {
                reason: KeyedShedReason::Draining,
                ..
            }
        ));
        assert_eq!(s.total(), 1);
        step_mut(&m, &mut s, &KeyedAdmissionEvent::EndDrain);
        assert!(matches!(
            step_mut(&m, &mut s, &admit(1))[0],
            KeyedAdmissionEffect::Admitted { tenant: 1 }
        ));
    }

    /// Brute-force the reserve invariant over every event interleaving
    /// of a small configuration (the same property `wsp-check` explores
    /// on the graph, kept here as a fast unit-level sanity net).
    #[test]
    fn reserve_invariant_holds_on_random_walks() {
        let m = machine(5, &[2, 1, 1], 3);
        let g = m.guaranteed();
        let mut s = m.initial();
        let mut seed = 0x9e3779b97f4a7c15u64;
        for _ in 0..20_000 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let t = (seed >> 33) as usize % 3;
            let ev = match (seed >> 60) % 4 {
                0 | 1 => admit(t),
                2 => KeyedAdmissionEvent::Release { tenant: t },
                _ => {
                    if seed & 1 == 0 {
                        KeyedAdmissionEvent::BeginDrain
                    } else {
                        KeyedAdmissionEvent::EndDrain
                    }
                }
            };
            if matches!(ev, KeyedAdmissionEvent::Release { tenant } if s.in_flight[tenant] == 0) {
                continue; // the shell's RAII permits make this unreachable
            }
            step_mut(&m, &mut s, &ev);
            let reserve: u64 = g
                .iter()
                .zip(&s.in_flight)
                .map(|(&g, &f)| g.saturating_sub(f))
                .sum();
            assert!(
                s.total() + reserve <= m.global_cap,
                "invariant broken at {s:?}"
            );
            assert!(s.in_flight.iter().all(|&f| f <= m.tenant_cap));
        }
    }
}

//! The dispatcher's correlation-table token lifecycle as a pure
//! machine.
//!
//! Each pending call is one token moving through a small lifecycle:
//!
//! ```text
//!             Complete              Take (YieldValue)
//!  Pending ─────────────► Ready ─────────────────────► gone
//!     │    \
//!     │     └──Poison───► Poisoned ──Take (PanicWaiter)► gone
//!     └────────Cancel───► gone
//! ```
//!
//! The stored state is exactly the live-call set: a token is *in the
//! correlation table* while `Pending`, keeps a `Ready`/`Poisoned`
//! entry until its waiter claims (or abandons) the result, and leaves
//! the map entirely once terminal — so the runtime shell's state stays
//! bounded by the number of outstanding calls. Dropping a
//! [`crate::CallHandle`] before completion is an explicit
//! [`CorrelationEvent::Cancel`]: the entry leaves eagerly, never
//! relying on result delivery or dispatcher teardown.
//!
//! Invariants the model checker enforces (`wsp-check`):
//!
//! * **no lost token** — from every reachable state, every registered
//!   token can still reach "gone", and traces that cancel or drain
//!   fully end with an empty call map;
//! * **no double delivery** — [`CorrelationEffect::DeliverValue`] is
//!   emitted at most once per token; a second `Complete` (or one after
//!   cancel) yields [`CorrelationEffect::DropLateValue`];
//! * **[`CorrelationEffect::RemoveEntry`] exactly once** — a token
//!   never leaves the correlation table twice.

use std::collections::BTreeMap;
use wsp_simnet::Machine;

/// Where one live call is in its lifecycle. Terminal calls have no
/// phase — they are absent from the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallPhase {
    /// In the correlation table, awaiting its result.
    Pending,
    /// Result delivered, not yet claimed by the waiter.
    Ready,
    /// The producing job panicked; the message awaits the waiter.
    Poisoned,
}

/// Machine state: every live token. (`BTreeMap` so iteration — and
/// therefore hashing and exploration — is deterministic.)
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CorrelationState {
    pub calls: BTreeMap<u64, CallPhase>,
}

impl CorrelationState {
    /// Tokens still occupying a correlation-table entry (pending).
    pub fn table_tokens(&self) -> Vec<u64> {
        self.calls
            .iter()
            .filter(|(_, p)| **p == CallPhase::Pending)
            .map(|(&t, _)| t)
            .collect()
    }

    pub fn phase(&self, token: u64) -> Option<CallPhase> {
        self.calls.get(&token).copied()
    }
}

/// Configuration-free: the lifecycle rules are the whole machine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorrelationMachine;

/// What happened in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelationEvent {
    /// A call was registered under a fresh token.
    Register(u64),
    /// A result arrived for the token (job return or external
    /// completer).
    Complete(u64),
    /// The producing job panicked.
    Poison(u64),
    /// The call was abandoned: explicit [`crate::CallHandle::cancel`],
    /// or the handle was dropped before the result was claimed.
    Cancel(u64),
    /// The waiter claims the result.
    Take(u64),
}

/// Instructions back to the shell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelationEffect {
    /// Store the arrived value in the call's mailbox and wake waiters.
    DeliverValue(u64),
    /// Store the panic message in the mailbox and wake waiters.
    DeliverPoison(u64),
    /// The value (or poison) arrived after the call settled: drop it.
    DropLateValue(u64),
    /// The token left the correlation table. Emitted exactly once per
    /// registered token (on completion, poisoning or cancellation).
    RemoveEntry(u64),
    /// Count one cancellation (a call abandoned while pending).
    CountCancelled(u64),
    /// An unclaimed result was abandoned by its waiter: discard it.
    DropUnclaimed(u64),
    /// Hand the waiter the stored value.
    YieldValue(u64),
    /// Re-panic the waiter with the stored poison message.
    PanicWaiter(u64),
    /// The result is not there yet; the waiter keeps waiting.
    StillPending(u64),
}

impl Machine for CorrelationMachine {
    type State = CorrelationState;
    type Event = CorrelationEvent;
    type Effect = CorrelationEffect;

    fn initial(&self) -> CorrelationState {
        CorrelationState::default()
    }

    fn step(
        &self,
        state: &CorrelationState,
        event: &CorrelationEvent,
    ) -> (CorrelationState, Vec<CorrelationEffect>) {
        use CallPhase::*;
        use CorrelationEffect::*;
        let mut next = state.clone();
        let effects = match *event {
            CorrelationEvent::Register(t) => {
                // Tokens are allocated process-unique; re-registering a
                // live one is a shell bug, modeled as a no-op.
                next.calls.entry(t).or_insert(Pending);
                vec![]
            }
            CorrelationEvent::Complete(t) => match next.calls.get(&t) {
                Some(Pending) => {
                    next.calls.insert(t, Ready);
                    vec![DeliverValue(t), RemoveEntry(t)]
                }
                _ => vec![DropLateValue(t)],
            },
            CorrelationEvent::Poison(t) => match next.calls.get(&t) {
                Some(Pending) => {
                    next.calls.insert(t, Poisoned);
                    vec![DeliverPoison(t), RemoveEntry(t)]
                }
                _ => vec![DropLateValue(t)],
            },
            CorrelationEvent::Cancel(t) => match next.calls.get(&t) {
                Some(Pending) => {
                    next.calls.remove(&t);
                    vec![RemoveEntry(t), CountCancelled(t)]
                }
                Some(Ready) | Some(Poisoned) => {
                    next.calls.remove(&t);
                    vec![DropUnclaimed(t)]
                }
                None => vec![],
            },
            CorrelationEvent::Take(t) => match next.calls.get(&t) {
                Some(Ready) => {
                    next.calls.remove(&t);
                    vec![YieldValue(t)]
                }
                Some(Poisoned) => {
                    next.calls.remove(&t);
                    vec![PanicWaiter(t)]
                }
                Some(Pending) => vec![StillPending(t)],
                None => vec![],
            },
        };
        (next, effects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_simnet::step_mut;

    #[test]
    fn happy_path_register_complete_take() {
        let m = CorrelationMachine;
        let mut s = m.initial();
        step_mut(&m, &mut s, &CorrelationEvent::Register(7));
        assert_eq!(s.table_tokens(), vec![7]);
        assert_eq!(
            step_mut(&m, &mut s, &CorrelationEvent::Complete(7)),
            vec![
                CorrelationEffect::DeliverValue(7),
                CorrelationEffect::RemoveEntry(7)
            ]
        );
        assert!(s.table_tokens().is_empty(), "settled entries leave eagerly");
        assert_eq!(s.phase(7), Some(CallPhase::Ready));
        assert_eq!(
            step_mut(&m, &mut s, &CorrelationEvent::Take(7)),
            vec![CorrelationEffect::YieldValue(7)]
        );
        assert!(s.calls.is_empty(), "terminal calls leave no residue");
    }

    #[test]
    fn cancel_beats_late_completion() {
        let m = CorrelationMachine;
        let mut s = m.initial();
        step_mut(&m, &mut s, &CorrelationEvent::Register(1));
        assert_eq!(
            step_mut(&m, &mut s, &CorrelationEvent::Cancel(1)),
            vec![
                CorrelationEffect::RemoveEntry(1),
                CorrelationEffect::CountCancelled(1)
            ]
        );
        assert_eq!(
            step_mut(&m, &mut s, &CorrelationEvent::Complete(1)),
            vec![CorrelationEffect::DropLateValue(1)],
            "completion after cancel is dropped, never delivered"
        );
        assert_eq!(
            step_mut(&m, &mut s, &CorrelationEvent::Cancel(1)),
            vec![],
            "double cancel is a no-op"
        );
        assert!(s.calls.is_empty());
    }

    #[test]
    fn complete_twice_delivers_once() {
        let m = CorrelationMachine;
        let mut s = m.initial();
        step_mut(&m, &mut s, &CorrelationEvent::Register(2));
        let first = step_mut(&m, &mut s, &CorrelationEvent::Complete(2));
        assert!(first.contains(&CorrelationEffect::DeliverValue(2)));
        let second = step_mut(&m, &mut s, &CorrelationEvent::Complete(2));
        assert_eq!(second, vec![CorrelationEffect::DropLateValue(2)]);
    }

    #[test]
    fn poison_panics_the_waiter() {
        let m = CorrelationMachine;
        let mut s = m.initial();
        step_mut(&m, &mut s, &CorrelationEvent::Register(3));
        let effects = step_mut(&m, &mut s, &CorrelationEvent::Poison(3));
        assert!(effects.contains(&CorrelationEffect::DeliverPoison(3)));
        assert_eq!(
            step_mut(&m, &mut s, &CorrelationEvent::Take(3)),
            vec![CorrelationEffect::PanicWaiter(3)]
        );
        assert!(s.calls.is_empty());
    }

    #[test]
    fn take_while_pending_keeps_waiting() {
        let m = CorrelationMachine;
        let mut s = m.initial();
        step_mut(&m, &mut s, &CorrelationEvent::Register(4));
        assert_eq!(
            step_mut(&m, &mut s, &CorrelationEvent::Take(4)),
            vec![CorrelationEffect::StillPending(4)]
        );
        assert_eq!(s.phase(4), Some(CallPhase::Pending));
    }

    #[test]
    fn abandoning_an_unclaimed_result_discards_it() {
        let m = CorrelationMachine;
        let mut s = m.initial();
        step_mut(&m, &mut s, &CorrelationEvent::Register(5));
        step_mut(&m, &mut s, &CorrelationEvent::Complete(5));
        // The handle is dropped without ever taking the value.
        assert_eq!(
            step_mut(&m, &mut s, &CorrelationEvent::Cancel(5)),
            vec![CorrelationEffect::DropUnclaimed(5)],
            "not a cancellation — the call completed; the result is just unclaimed"
        );
        assert!(s.calls.is_empty(), "no residue after abandonment");
    }
}

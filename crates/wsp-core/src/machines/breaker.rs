//! The circuit-breaker protocol as a pure machine.
//!
//! Mirrors the classic three observable phases — closed, open,
//! half-open — with the *stored* state being just two shapes:
//! `Closed { failures }` and `Tripped { since, probe_in_flight }`.
//! Half-open is derived: a tripped breaker whose cooldown has elapsed.
//!
//! Invariants the model checker enforces (`wsp-check`):
//!
//! * a successful half-open probe always closes the breaker — the
//!   breaker never *remains* open past a probe success;
//! * at most one probe is ever in flight: `Admit(Probe)` is never
//!   issued while `probe_in_flight` is already set;
//! * a probe that aborts (panics) never strands `probe_in_flight`:
//!   [`BreakerEvent::ProbeAborted`] re-opens for a fresh cooldown;
//! * the closed-state failure count never reaches the threshold
//!   without tripping.

use wsp_simnet::Machine;

/// Configuration: the machine value itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerMachine {
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// Cooldown in logical ticks before a tripped breaker probes.
    pub cooldown: u64,
}

/// Stored breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Requests flow; consecutive failures counted.
    Closed { failures: u32 },
    /// The breaker tripped at `since`; `probe_in_flight` marks an
    /// admitted half-open probe that has not yet reported.
    Tripped { since: u64, probe_in_flight: bool },
}

/// The observable phase at logical time `now` (what callers see).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Closed,
    Open,
    HalfOpen,
}

/// What happened in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// A caller asks permission to attempt a call at `now`.
    Acquire { now: u64 },
    /// An attempt reported success.
    Success,
    /// An attempt reported failure at `now`.
    Failure { now: u64 },
    /// An admitted probe unwound (panicked) without reporting at `now`.
    ProbeAborted { now: u64 },
}

/// Admission verdicts handed back on [`BreakerEvent::Acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Closed: go ahead.
    Allowed,
    /// Half-open: go ahead, and this attempt is *the* probe.
    Probe,
    /// Open (or half-open with the probe already taken): do not call.
    Rejected,
}

/// Instructions back to the shell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEffect {
    /// The verdict for an `Acquire`.
    Admit(Admit),
    /// This failure tripped the breaker (closed → open) or re-opened it
    /// (failed half-open probe) — fire the `BreakerTripped` event.
    Tripped,
    /// A half-open probe succeeded and closed the breaker — fire the
    /// `BreakerRecovered` event.
    Recovered,
    /// An aborted probe re-opened the breaker for a fresh cooldown.
    ProbeDiscarded,
}

impl BreakerMachine {
    /// The observable phase of `state` at `now` — pure companion of the
    /// transition function (reads, never writes).
    pub fn phase(&self, state: &BreakerState, now: u64) -> Phase {
        match *state {
            BreakerState::Closed { .. } => Phase::Closed,
            BreakerState::Tripped { since, .. } => {
                if now.saturating_sub(since) >= self.cooldown {
                    Phase::HalfOpen
                } else {
                    Phase::Open
                }
            }
        }
    }
}

impl Machine for BreakerMachine {
    type State = BreakerState;
    type Event = BreakerEvent;
    type Effect = BreakerEffect;

    fn initial(&self) -> BreakerState {
        BreakerState::Closed { failures: 0 }
    }

    fn step(
        &self,
        state: &BreakerState,
        event: &BreakerEvent,
    ) -> (BreakerState, Vec<BreakerEffect>) {
        use BreakerEffect as E;
        match (*state, *event) {
            // --- admission ------------------------------------------------
            (s @ BreakerState::Closed { .. }, BreakerEvent::Acquire { .. }) => {
                (s, vec![E::Admit(Admit::Allowed)])
            }
            (
                s @ BreakerState::Tripped {
                    since,
                    probe_in_flight,
                },
                BreakerEvent::Acquire { now },
            ) => {
                if now.saturating_sub(since) < self.cooldown {
                    return (s, vec![E::Admit(Admit::Rejected)]);
                }
                if probe_in_flight {
                    (s, vec![E::Admit(Admit::Rejected)])
                } else {
                    (
                        BreakerState::Tripped {
                            since,
                            probe_in_flight: true,
                        },
                        vec![E::Admit(Admit::Probe)],
                    )
                }
            }

            // --- outcome reports ------------------------------------------
            (BreakerState::Closed { .. }, BreakerEvent::Success) => {
                (BreakerState::Closed { failures: 0 }, vec![])
            }
            (BreakerState::Tripped { .. }, BreakerEvent::Success) => {
                // Any success while tripped — the probe, or a straggler
                // admitted before the trip — closes the breaker.
                (BreakerState::Closed { failures: 0 }, vec![E::Recovered])
            }
            (BreakerState::Closed { failures }, BreakerEvent::Failure { now }) => {
                let failures = failures + 1;
                if failures >= self.failure_threshold {
                    (
                        BreakerState::Tripped {
                            since: now,
                            probe_in_flight: false,
                        },
                        vec![E::Tripped],
                    )
                } else {
                    (BreakerState::Closed { failures }, vec![])
                }
            }
            (
                BreakerState::Tripped {
                    probe_in_flight, ..
                },
                BreakerEvent::Failure { now },
            ) => {
                // A failure while tripped restarts the cooldown; if it
                // was the probe, that is a (re-)trip worth reporting.
                let effects = if probe_in_flight {
                    vec![E::Tripped]
                } else {
                    vec![]
                };
                (
                    BreakerState::Tripped {
                        since: now,
                        probe_in_flight: false,
                    },
                    effects,
                )
            }

            // --- aborted probes -------------------------------------------
            (
                BreakerState::Tripped {
                    probe_in_flight: true,
                    ..
                },
                BreakerEvent::ProbeAborted { now },
            ) => (
                BreakerState::Tripped {
                    since: now,
                    probe_in_flight: false,
                },
                vec![E::ProbeDiscarded],
            ),
            // No probe in flight (or already closed): nothing to abort.
            (s, BreakerEvent::ProbeAborted { .. }) => (s, vec![]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_simnet::step_mut;

    fn machine() -> BreakerMachine {
        BreakerMachine {
            failure_threshold: 3,
            cooldown: 100,
        }
    }

    #[test]
    fn trips_after_threshold_and_probes_after_cooldown() {
        let m = machine();
        let mut s = m.initial();
        assert!(step_mut(&m, &mut s, &BreakerEvent::Failure { now: 0 }).is_empty());
        assert!(step_mut(&m, &mut s, &BreakerEvent::Failure { now: 0 }).is_empty());
        assert_eq!(
            step_mut(&m, &mut s, &BreakerEvent::Failure { now: 0 }),
            vec![BreakerEffect::Tripped]
        );
        assert_eq!(m.phase(&s, 0), Phase::Open);
        assert_eq!(
            step_mut(&m, &mut s, &BreakerEvent::Acquire { now: 50 }),
            vec![BreakerEffect::Admit(Admit::Rejected)]
        );
        assert_eq!(m.phase(&s, 150), Phase::HalfOpen);
        assert_eq!(
            step_mut(&m, &mut s, &BreakerEvent::Acquire { now: 150 }),
            vec![BreakerEffect::Admit(Admit::Probe)]
        );
        // Second caller during the probe is rejected.
        assert_eq!(
            step_mut(&m, &mut s, &BreakerEvent::Acquire { now: 150 }),
            vec![BreakerEffect::Admit(Admit::Rejected)]
        );
        assert_eq!(
            step_mut(&m, &mut s, &BreakerEvent::Success),
            vec![BreakerEffect::Recovered]
        );
        assert_eq!(m.phase(&s, 150), Phase::Closed);
    }

    #[test]
    fn aborted_probe_reopens_instead_of_stranding() {
        let m = machine();
        let mut s = BreakerState::Tripped {
            since: 0,
            probe_in_flight: false,
        };
        step_mut(&m, &mut s, &BreakerEvent::Acquire { now: 100 });
        assert_eq!(
            step_mut(&m, &mut s, &BreakerEvent::ProbeAborted { now: 120 }),
            vec![BreakerEffect::ProbeDiscarded]
        );
        assert_eq!(
            s,
            BreakerState::Tripped {
                since: 120,
                probe_in_flight: false
            },
            "cooldown restarted, probe slot freed"
        );
        // The next half-open window admits a fresh probe.
        assert_eq!(
            step_mut(&m, &mut s, &BreakerEvent::Acquire { now: 220 }),
            vec![BreakerEffect::Admit(Admit::Probe)]
        );
    }

    #[test]
    fn success_while_closed_resets_count_silently() {
        let m = machine();
        let mut s = m.initial();
        step_mut(&m, &mut s, &BreakerEvent::Failure { now: 0 });
        step_mut(&m, &mut s, &BreakerEvent::Failure { now: 0 });
        assert!(step_mut(&m, &mut s, &BreakerEvent::Success).is_empty());
        assert_eq!(s, BreakerState::Closed { failures: 0 });
    }
}

//! Server-side admission control as a pure machine.
//!
//! The stored state is deliberately tiny — `{ in_flight, draining }` —
//! because everything else the runtime check consults (queue depth,
//! deadline expiry, the p99 watermark verdict) is *observation*, not
//! protocol state: the shell measures it and ships it inside the
//! [`AdmissionEvent::Admit`] event. That keeps the transition function
//! pure while preserving the exact shed-priority order of the runtime:
//! expired deadline → draining → queue depth → watermark → in-flight
//! cap.
//!
//! Invariants the model checker enforces (`wsp-check`):
//!
//! * the permit count never goes negative ([`AdmissionEffect::PermitUnderflow`]
//!   is never emitted) and never exceeds `max_in_flight`;
//! * nothing is admitted while draining;
//! * every `Admitted` is eventually balanced by a `Release` (terminal
//!   states have `in_flight == 0`).

use wsp_simnet::Machine;

/// Configuration: the caps a host enforces, in machine form. (The
/// retry-after hint and telemetry counters stay in the shell — they
/// are presentation, not protocol.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionMachine {
    /// Shed when this many requests are already in flight.
    /// `u64::MAX` disables the check.
    pub max_in_flight: u64,
    /// Shed when the dispatch queue already holds this many jobs.
    /// `u64::MAX` disables the check.
    pub max_queue_depth: u64,
}

/// Stored admission state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AdmissionState {
    /// Requests admitted and not yet released.
    pub in_flight: u64,
    /// Drain mode: every admission is refused while set.
    pub draining: bool,
}

/// What happened in the world. Observations the shell made (queue
/// depth, deadline expiry, watermark verdict) ride inside the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionEvent {
    /// One request asks to be admitted.
    Admit {
        /// Dispatch-queue depth observed by the shell.
        queue_depth: u64,
        /// The caller's propagated deadline had already expired.
        deadline_expired: bool,
        /// The sampled p99 queue-wait exceeded the policy watermark.
        over_watermark: bool,
    },
    /// An admitted request finished (permit dropped).
    Release,
    /// Enter drain mode.
    BeginDrain,
    /// Leave drain mode.
    EndDrain,
}

/// Why an admission was refused, in shed-priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The caller's deadline already passed — answer fast, not at all.
    DeadlineExpired,
    /// The host is draining.
    Draining,
    /// The dispatch queue is at capacity.
    QueueFull,
    /// The sampled queue wait is above the watermark.
    OverWatermark,
    /// The in-flight cap is reached.
    InFlightCap,
}

/// Instructions back to the shell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionEffect {
    /// Hand the caller a permit (one in-flight slot now held).
    Admitted,
    /// Refuse, with the reason (the shell attaches the retry hint and
    /// bumps the matching counters).
    Shed(ShedReason),
    /// A permit was returned.
    Released,
    /// A release arrived with nothing in flight — a protocol violation
    /// surfaced as an effect so the model checker can catch it (the
    /// runtime's RAII permits make it unreachable; the state saturates
    /// rather than wrapping).
    PermitUnderflow,
}

impl Machine for AdmissionMachine {
    type State = AdmissionState;
    type Event = AdmissionEvent;
    type Effect = AdmissionEffect;

    fn initial(&self) -> AdmissionState {
        AdmissionState::default()
    }

    fn step(
        &self,
        state: &AdmissionState,
        event: &AdmissionEvent,
    ) -> (AdmissionState, Vec<AdmissionEffect>) {
        use AdmissionEffect::*;
        let mut next = *state;
        match *event {
            AdmissionEvent::Admit {
                queue_depth,
                deadline_expired,
                over_watermark,
            } => {
                // Exact runtime shed order.
                let shed = if deadline_expired {
                    Some(ShedReason::DeadlineExpired)
                } else if state.draining {
                    Some(ShedReason::Draining)
                } else if queue_depth >= self.max_queue_depth {
                    Some(ShedReason::QueueFull)
                } else if over_watermark {
                    Some(ShedReason::OverWatermark)
                } else if state.in_flight >= self.max_in_flight {
                    Some(ShedReason::InFlightCap)
                } else {
                    None
                };
                match shed {
                    Some(reason) => (next, vec![Shed(reason)]),
                    None => {
                        next.in_flight += 1;
                        (next, vec![Admitted])
                    }
                }
            }
            AdmissionEvent::Release => {
                if state.in_flight == 0 {
                    return (next, vec![PermitUnderflow]);
                }
                next.in_flight -= 1;
                (next, vec![Released])
            }
            AdmissionEvent::BeginDrain => {
                next.draining = true;
                (next, vec![])
            }
            AdmissionEvent::EndDrain => {
                next.draining = false;
                (next, vec![])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_simnet::step_mut;

    fn admit() -> AdmissionEvent {
        AdmissionEvent::Admit {
            queue_depth: 0,
            deadline_expired: false,
            over_watermark: false,
        }
    }

    #[test]
    fn cap_sheds_and_release_recovers() {
        let m = AdmissionMachine {
            max_in_flight: 2,
            max_queue_depth: u64::MAX,
        };
        let mut s = m.initial();
        assert_eq!(
            step_mut(&m, &mut s, &admit()),
            vec![AdmissionEffect::Admitted]
        );
        assert_eq!(
            step_mut(&m, &mut s, &admit()),
            vec![AdmissionEffect::Admitted]
        );
        assert_eq!(
            step_mut(&m, &mut s, &admit()),
            vec![AdmissionEffect::Shed(ShedReason::InFlightCap)]
        );
        assert_eq!(
            step_mut(&m, &mut s, &AdmissionEvent::Release),
            vec![AdmissionEffect::Released]
        );
        assert_eq!(
            step_mut(&m, &mut s, &admit()),
            vec![AdmissionEffect::Admitted]
        );
        assert_eq!(s.in_flight, 2);
    }

    #[test]
    fn shed_priority_order_is_stable() {
        let m = AdmissionMachine {
            max_in_flight: 0,
            max_queue_depth: 0,
        };
        let mut s = AdmissionState {
            in_flight: 0,
            draining: true,
        };
        // Expired beats draining beats queue beats watermark beats cap.
        assert_eq!(
            step_mut(
                &m,
                &mut s,
                &AdmissionEvent::Admit {
                    queue_depth: 9,
                    deadline_expired: true,
                    over_watermark: true,
                }
            ),
            vec![AdmissionEffect::Shed(ShedReason::DeadlineExpired)]
        );
        assert_eq!(
            step_mut(
                &m,
                &mut s,
                &AdmissionEvent::Admit {
                    queue_depth: 9,
                    deadline_expired: false,
                    over_watermark: true,
                }
            ),
            vec![AdmissionEffect::Shed(ShedReason::Draining)]
        );
        s.draining = false;
        assert_eq!(
            step_mut(
                &m,
                &mut s,
                &AdmissionEvent::Admit {
                    queue_depth: 9,
                    deadline_expired: false,
                    over_watermark: true,
                }
            ),
            vec![AdmissionEffect::Shed(ShedReason::QueueFull)]
        );
    }

    #[test]
    fn underflow_is_an_effect_not_a_wrap() {
        let m = AdmissionMachine {
            max_in_flight: 1,
            max_queue_depth: u64::MAX,
        };
        let mut s = m.initial();
        assert_eq!(
            step_mut(&m, &mut s, &AdmissionEvent::Release),
            vec![AdmissionEffect::PermitUnderflow]
        );
        assert_eq!(s.in_flight, 0, "state saturates");
    }

    #[test]
    fn drain_refuses_then_end_drain_readmits() {
        let m = AdmissionMachine {
            max_in_flight: 8,
            max_queue_depth: u64::MAX,
        };
        let mut s = m.initial();
        step_mut(&m, &mut s, &admit());
        step_mut(&m, &mut s, &AdmissionEvent::BeginDrain);
        assert_eq!(
            step_mut(&m, &mut s, &admit()),
            vec![AdmissionEffect::Shed(ShedReason::Draining)]
        );
        assert_eq!(s.in_flight, 1, "in-flight work unaffected by drain");
        step_mut(&m, &mut s, &AdmissionEvent::EndDrain);
        assert_eq!(
            step_mut(&m, &mut s, &admit()),
            vec![AdmissionEffect::Admitted]
        );
    }
}

//! Process-wide telemetry: hot-path metrics and correlated tracing.
//!
//! `wsp_simnet::metrics::Summary` sorts a copy of every sample and is
//! explicitly "intended for end-of-run reporting, not hot paths". This
//! module is the hot-path counterpart, shared by the dispatch core, the
//! client's resilience loop and both bindings:
//!
//! * **[`Counter`]** — one relaxed `fetch_add` per event.
//! * **[`Histogram`]** — a fixed-size log-bucketed latency histogram
//!   (HdrHistogram-style): values below 16 get exact unit buckets,
//!   larger values get 16 sub-buckets per power of two, so recording is
//!   O(1), memory is constant (976 buckets spanning all of `u64`), the
//!   relative bucket error is ≤ 1/16, and p50/p90/p99 come from a
//!   cumulative scan of a [`HistogramSnapshot`] — no sorting, ever.
//!   Snapshots merge bucket-wise, so per-shard histograms aggregate.
//! * **Spans** — every dispatch job carries a correlation id (the
//!   dispatcher's call token) in a thread-local, restored on unwind.
//!   Stages along an invocation — submit, attempt, breaker transition,
//!   failover, HTTP request, P2PS round trip — append [`TraceEvent`]s
//!   to a bounded ring, so one multi-attempt invocation can be
//!   reconstructed end-to-end from its token alone.
//!
//! The registry is exposed two ways: [`Telemetry::snapshot`] for
//! in-process consumers (`wsp-bench`), and [`render_metrics`] — the
//! plain-text body served on the container-less host's `/metrics`
//! route, keeping with the paper's "the application is its own
//! container" stance (claim C3).
//!
//! Disabling the registry ([`Telemetry::set_enabled`]) reduces every
//! record to a single relaxed load, which is what the E10 bench
//! compares against to bound instrumentation overhead.

use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

// --- histogram bucket scheme ------------------------------------------------

/// Sub-bucket resolution: 2^4 = 16 sub-buckets per power of two, giving
/// a worst-case relative bucket width of 1/16 (6.25%).
pub const HISTOGRAM_SUB_BITS: u32 = 4;
const SUB_COUNT: usize = 1 << HISTOGRAM_SUB_BITS;
/// Values below this are their own exact bucket.
const LINEAR_LIMIT: u64 = SUB_COUNT as u64;
/// Total bucket count covering every `u64` value.
pub const HISTOGRAM_BUCKETS: usize = SUB_COUNT + (64 - HISTOGRAM_SUB_BITS as usize) * SUB_COUNT;

/// The bucket a value lands in. O(1): a leading-zeros and some shifts.
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR_LIMIT {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as usize;
    let sub = ((value >> (msb - HISTOGRAM_SUB_BITS as usize)) & (SUB_COUNT as u64 - 1)) as usize;
    SUB_COUNT + (msb - HISTOGRAM_SUB_BITS as usize) * SUB_COUNT + sub
}

/// Inclusive `(low, high)` value range of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_COUNT {
        return (index as u64, index as u64);
    }
    let msb = HISTOGRAM_SUB_BITS as usize + (index - SUB_COUNT) / SUB_COUNT;
    let sub = ((index - SUB_COUNT) % SUB_COUNT) as u64;
    let width = 1u64 << (msb - HISTOGRAM_SUB_BITS as usize);
    let low = (1u64 << msb) + sub * width;
    (low, low + (width - 1))
}

// --- counters and histograms ------------------------------------------------

/// A monotonic counter. Handles are cheap to clone and record with one
/// relaxed `fetch_add`; a disabled registry reduces that to one load.
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: AtomicU64,
}

impl Counter {
    fn new(enabled: Arc<AtomicBool>) -> Counter {
        Counter {
            enabled,
            value: AtomicU64::new(0),
        }
    }

    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-size log-bucketed histogram; see the module docs for the
/// bucket scheme. All recording is lock-free and O(1).
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new(enabled: Arc<AtomicBool>) -> Histogram {
        let buckets: Vec<AtomicU64> = (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            enabled,
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    pub fn record(&self, value: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn record_micros(&self, elapsed: std::time::Duration) {
        self.record(elapsed.as_micros() as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Bucket-wise merge; percentiles of the merge reflect the union of
    /// the recorded samples.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank percentile over the buckets (the same rule as
    /// `wsp_simnet::metrics::Summary`), answered in one cumulative
    /// scan. The result is the upper bound of the target bucket, so it
    /// is within one bucket width of the exact sorted-sample answer.
    pub fn value_at_percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (((p / 100.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= target {
                return bucket_bounds(index).1.min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.value_at_percentile(50.0)
    }

    pub fn p90(&self) -> u64 {
        self.value_at_percentile(90.0)
    }

    pub fn p99(&self) -> u64 {
        self.value_at_percentile(99.0)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// --- correlation ids --------------------------------------------------------

thread_local! {
    /// The correlation id of the dispatch job running on this thread;
    /// 0 means "no correlated work in progress".
    static CURRENT_CORRELATION: Cell<u64> = const { Cell::new(0) };
}

/// The correlation id active on this thread (0 = none). Set by the
/// dispatcher around job execution and inherited by fire-and-forget
/// jobs, so bindings deep in a call see the originating call token.
pub fn current_correlation() -> u64 {
    CURRENT_CORRELATION.with(|c| c.get())
}

/// RAII guard installing a correlation id on the current thread and
/// restoring the previous one on drop (including unwind), so helping
/// waits that run nested jobs inline never leak ids across jobs.
pub struct CorrelationScope {
    previous: u64,
}

impl CorrelationScope {
    pub fn enter(token: u64) -> CorrelationScope {
        let previous = CURRENT_CORRELATION.with(|c| c.replace(token));
        CorrelationScope { previous }
    }
}

impl Drop for CorrelationScope {
    fn drop(&mut self) {
        CURRENT_CORRELATION.with(|c| c.set(self.previous));
    }
}

// --- trace ------------------------------------------------------------------

/// Maximum bytes of span detail retained per [`TraceEvent`].
pub const DETAIL_CAPACITY: usize = 120;

/// Fixed-capacity inline detail string: recording a span never touches
/// the heap. Details longer than [`DETAIL_CAPACITY`] bytes truncate
/// silently at a character boundary.
#[derive(Clone, Copy)]
pub struct Detail {
    len: u8,
    buf: [u8; DETAIL_CAPACITY],
}

impl Detail {
    fn new() -> Detail {
        Detail {
            len: 0,
            buf: [0; DETAIL_CAPACITY],
        }
    }

    pub fn as_str(&self) -> &str {
        // Writes only ever append whole `str` slices cut at character
        // boundaries, so the prefix is always valid UTF-8.
        std::str::from_utf8(&self.buf[..self.len as usize]).unwrap_or("")
    }

    /// Append a literal/precomputed piece — a plain bounded memcpy,
    /// bypassing the `core::fmt` machinery entirely. The builder used by
    /// [`Telemetry::span_with`] on per-call hot paths, where formatting
    /// dispatch is measurable.
    pub fn push(&mut self, s: &str) -> &mut Detail {
        let _ = std::fmt::Write::write_str(self, s);
        self
    }

    /// Append a decimal integer without going through `core::fmt`.
    pub fn push_u64(&mut self, value: u64) -> &mut Detail {
        let mut digits = [0u8; 20];
        let mut at = digits.len();
        let mut v = value;
        loop {
            at -= 1;
            digits[at] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        // The digits are ASCII, so this never splits a char boundary.
        self.push(std::str::from_utf8(&digits[at..]).unwrap_or("0"))
    }
}

impl std::fmt::Write for Detail {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        let remaining = DETAIL_CAPACITY - self.len as usize;
        let mut take = s.len().min(remaining);
        while take > 0 && !s.is_char_boundary(take) {
            take -= 1;
        }
        let start = self.len as usize;
        self.buf[start..start + take].copy_from_slice(&s.as_bytes()[..take]);
        self.len += take as u8;
        Ok(())
    }
}

impl std::fmt::Display for Detail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::fmt::Debug for Detail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.as_str(), f)
    }
}

impl PartialEq<&str> for Detail {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// One stage of one correlated invocation.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Correlation id: the dispatcher call token (0 for uncorrelated).
    pub token: u64,
    /// Monotonic sequence number (global fire order across threads).
    pub seq: u64,
    /// Microseconds since the registry was created.
    pub at_micros: u64,
    /// Which machinery recorded the stage, e.g. `client.attempt`.
    pub stage: &'static str,
    /// Free-form detail (endpoint, attempt number, error…).
    pub detail: Detail,
}

impl TraceEvent {
    /// One-line rendering used by `/metrics` and the E10 bench.
    pub fn render(&self) -> String {
        format!(
            "trace seq={} corr={} t_us={} stage={} {}",
            self.seq, self.token, self.at_micros, self.stage, self.detail
        )
    }
}

// --- the registry -----------------------------------------------------------

// Sized to hold the recent history a reconstruction needs (a
// multi-attempt invocation is tens of spans) while the whole ring stays
// cache-resident — span recording is on the invoke hot path, and a
// larger ring measurably pushes the E10 overhead up via L2 misses.
const TRACE_CAPACITY: usize = 1024;

/// The metrics + trace registry. Usually accessed through [`global`];
/// separate instances exist only in tests.
pub struct Telemetry {
    enabled: Arc<AtomicBool>,
    started: Instant,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    trace: Mutex<VecDeque<TraceEvent>>,
    trace_seq: AtomicU64,
    dropped_spans: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    pub fn new() -> Telemetry {
        Telemetry {
            enabled: Arc::new(AtomicBool::new(true)),
            started: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            trace: Mutex::new(VecDeque::with_capacity(TRACE_CAPACITY)),
            trace_seq: AtomicU64::new(0),
            dropped_spans: AtomicU64::new(0),
        }
    }

    /// Turn recording on or off. Existing [`Counter`]/[`Histogram`]
    /// handles observe the change immediately (they share the flag);
    /// disabled recording is a single relaxed load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The counter named `name`, created on first touch. Cache the
    /// handle on hot paths — the lookup takes the registry lock.
    pub fn counter(&self, name: impl Into<String>) -> Arc<Counter> {
        let mut counters = self.counters.lock();
        counters
            .entry(name.into())
            .or_insert_with(|| Arc::new(Counter::new(self.enabled.clone())))
            .clone()
    }

    /// The histogram named `name`, created on first touch. Cache the
    /// handle on hot paths.
    pub fn histogram(&self, name: impl Into<String>) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock();
        histograms
            .entry(name.into())
            .or_insert_with(|| Arc::new(Histogram::new(self.enabled.clone())))
            .clone()
    }

    /// Append one trace stage for `token`. The ring is bounded: the
    /// oldest span is dropped (and counted) when full. Takes
    /// [`std::fmt::Arguments`] (i.e. `format_args!`) so the detail is
    /// formatted straight into the event's inline buffer — recording a
    /// span performs no heap allocation.
    pub fn span(&self, token: u64, stage: &'static str, detail: std::fmt::Arguments) {
        if !self.is_enabled() {
            return;
        }
        let mut inline = Detail::new();
        // Infallible: `Detail::write_str` truncates instead of erring.
        let _ = std::fmt::Write::write_fmt(&mut inline, detail);
        self.push_span(token, stage, inline);
    }

    /// [`Telemetry::span`] with the detail built by `build` through
    /// [`Detail::push`]/[`Detail::push_u64`] — no formatting dispatch.
    /// Used on per-call hot paths; cold paths keep the `format_args!`
    /// form of [`Telemetry::span`] for flexibility.
    pub fn span_with(&self, token: u64, stage: &'static str, build: impl FnOnce(&mut Detail)) {
        if !self.is_enabled() {
            return;
        }
        let mut inline = Detail::new();
        build(&mut inline);
        self.push_span(token, stage, inline);
    }

    fn push_span(&self, token: u64, stage: &'static str, detail: Detail) {
        let event = TraceEvent {
            token,
            seq: self.trace_seq.fetch_add(1, Ordering::Relaxed),
            at_micros: self.started.elapsed().as_micros() as u64,
            stage,
            detail,
        };
        let mut trace = self.trace.lock();
        if trace.len() >= TRACE_CAPACITY {
            trace.pop_front();
            self.dropped_spans.fetch_add(1, Ordering::Relaxed);
        }
        trace.push_back(event);
    }

    /// Every retained span for `token`, in fire order.
    pub fn trace_for(&self, token: u64) -> Vec<TraceEvent> {
        self.trace
            .lock()
            .iter()
            .filter(|e| e.token == token)
            .cloned()
            .collect()
    }

    /// The most recent `limit` spans, any token, in fire order.
    pub fn recent_trace(&self, limit: usize) -> Vec<TraceEvent> {
        let trace = self.trace.lock();
        trace
            .iter()
            .skip(trace.len().saturating_sub(limit))
            .cloned()
            .collect()
    }

    /// Spans evicted from the bounded ring over the registry lifetime.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = self
            .counters
            .lock()
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        TelemetrySnapshot {
            counters,
            histograms,
        }
    }
}

/// A mergeable snapshot of a whole registry.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// Sum counters and merge histograms name-wise (for aggregating
    /// per-shard or per-process snapshots).
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, histogram) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(histogram);
        }
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Plain-text rendering: one `name value` line per counter, and
    /// `name_{count,sum,max,mean,p50,p90,p99}` lines per histogram.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("{name}_count {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_max {}\n", h.max));
            out.push_str(&format!("{name}_mean {:.1}\n", h.mean()));
            out.push_str(&format!("{name}_p50 {}\n", h.p50()));
            out.push_str(&format!("{name}_p90 {}\n", h.p90()));
            out.push_str(&format!("{name}_p99 {}\n", h.p99()));
        }
        out
    }
}

/// The process-wide registry every built-in instrumentation point
/// records into. Created enabled on first touch.
pub fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::new)
}

/// The body of the `/metrics` route: counters + histogram summaries,
/// then a `# trace` section with the most recent spans — enough to
/// reconstruct a recent invocation by grepping its correlation id.
pub fn render_metrics(registry: &Telemetry) -> String {
    render_metrics_with(registry, "")
}

/// [`render_metrics`] with extra `name value\n` lines spliced in before
/// the trace section — bindings use this to report gauges the registry
/// does not own (connection-pool counters, dispatcher queue stats).
/// Wire-path buffer-pool counters are always included, next to the
/// registry's own numbers, so operators can see envelope-buffer reuse
/// without any binding-specific plumbing.
pub fn render_metrics_with(registry: &Telemetry, extra: &str) -> String {
    let mut out = registry.snapshot().render_text();
    out.push_str(extra);
    let bufs = wsp_xml::BufPool::global().stats();
    out.push_str(&format!("bufpool_hits {}\n", bufs.hits));
    out.push_str(&format!("bufpool_misses {}\n", bufs.misses));
    out.push_str(&format!("bufpool_returns {}\n", bufs.returns));
    out.push_str(&format!("bufpool_bytes_reused {}\n", bufs.bytes_reused));
    let adverts = wsp_p2ps::AdvertCacheStats::global();
    out.push_str(&format!("advert_cache_hits {}\n", adverts.hits()));
    out.push_str(&format!("advert_cache_misses {}\n", adverts.misses()));
    out.push_str(&format!("advert_cache_expired {}\n", adverts.expired()));
    out.push_str(&format!("advert_cache_evicted {}\n", adverts.evicted()));
    out.push_str(&format!(
        "telemetry_trace_dropped {}\n",
        registry.dropped_spans()
    ));
    out.push_str("# trace (most recent spans)\n");
    for event in registry.recent_trace(TRACE_CAPACITY) {
        out.push_str(&event.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_exhaustive_and_monotonic() {
        // Exact buckets below 16, and index(bounds(i).low) == i for all.
        for v in 0..LINEAR_LIMIT {
            assert_eq!(bucket_index(v), v as usize);
        }
        let mut previous_high = None;
        for index in 0..HISTOGRAM_BUCKETS {
            let (low, high) = bucket_bounds(index);
            assert!(low <= high, "bucket {index}");
            assert_eq!(bucket_index(low), index, "low of bucket {index}");
            assert_eq!(bucket_index(high), index, "high of bucket {index}");
            if let Some(prev) = previous_high {
                assert_eq!(low, prev + 1, "buckets tile contiguously at {index}");
            }
            previous_high = Some(high);
        }
        assert_eq!(previous_high, Some(u64::MAX), "covers all of u64");
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // Above the linear range, a bucket spans < 1/16 of its low end.
        for value in [16u64, 100, 1_000, 123_456, 10_000_000, u64::MAX / 3] {
            let (low, high) = bucket_bounds(bucket_index(value));
            assert!(low <= value && value <= high);
            assert!(
                (high - low) as f64 <= low as f64 / 16.0,
                "bucket [{low}, {high}] too wide for {value}"
            );
        }
    }

    #[test]
    fn histogram_percentiles_without_sorting() {
        let t = Telemetry::new();
        let h = t.histogram("lat");
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        // Values ≤ 15 are exact; larger ones within one bucket.
        assert_eq!(snap.value_at_percentile(10.0), 10);
        let p50 = snap.p50();
        let (low, high) = bucket_bounds(bucket_index(50));
        assert!(
            (low..=high).contains(&p50),
            "p50 {p50} not in [{low},{high}]"
        );
        assert_eq!(snap.max, 100);
        assert!(snap.p99() >= 96 && snap.p99() <= 100);
    }

    #[test]
    fn snapshots_merge_bucketwise() {
        let t = Telemetry::new();
        let a = t.histogram("a");
        let b = t.histogram("b");
        for v in 0..50u64 {
            a.record(v);
        }
        for v in 50..100u64 {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 100);
        assert_eq!(merged.max, 99);
        let mut whole = Telemetry::new().histogram("w").snapshot();
        whole.merge(&merged);
        assert_eq!(whole.count, 100, "merge into empty is the identity");
        // Same data recorded into one histogram gives the same answers.
        let one = t.histogram("one");
        for v in 0..100u64 {
            one.record(v);
        }
        let one = one.snapshot();
        assert_eq!(one.p50(), merged.p50());
        assert_eq!(one.p99(), merged.p99());
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let t = Telemetry::new();
        let c = t.counter("hits");
        let h = t.histogram("lat");
        t.set_enabled(false);
        c.incr();
        h.record(7);
        t.span(1, "stage", format_args!("detail"));
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert!(t.trace_for(1).is_empty());
        t.set_enabled(true);
        c.incr();
        assert_eq!(c.get(), 1, "same handle live again after re-enable");
    }

    #[test]
    fn correlation_scope_nests_and_restores() {
        assert_eq!(current_correlation(), 0);
        {
            let _outer = CorrelationScope::enter(7);
            assert_eq!(current_correlation(), 7);
            {
                let _inner = CorrelationScope::enter(9);
                assert_eq!(current_correlation(), 9);
            }
            assert_eq!(current_correlation(), 7, "inner scope restored");
        }
        assert_eq!(current_correlation(), 0);
    }

    #[test]
    fn trace_is_bounded_and_filterable() {
        let t = Telemetry::new();
        for i in 0..(TRACE_CAPACITY as u64 + 10) {
            t.span(i % 3, "fill", format_args!("i={i}"));
        }
        assert_eq!(t.dropped_spans(), 10);
        assert_eq!(t.recent_trace(usize::MAX).len(), TRACE_CAPACITY);
        let zeros = t.trace_for(0);
        assert!(!zeros.is_empty());
        assert!(zeros.windows(2).all(|w| w[0].seq < w[1].seq), "fire order");
    }

    #[test]
    fn snapshot_and_render() {
        let t = Telemetry::new();
        t.counter("requests").add(3);
        t.histogram("lat").record(12);
        let snap = t.snapshot();
        assert_eq!(snap.counter("requests"), 3);
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
        let text = render_metrics(&t);
        assert!(text.contains("requests 3"));
        assert!(text.contains("lat_p50 12"));
        assert!(text.contains("# trace"));
    }

    #[test]
    fn render_includes_buffer_pool_counters() {
        // Exercise the pool so the counters are live, not just present.
        let pool = wsp_xml::BufPool::global();
        pool.put(pool.take());
        let text = render_metrics(&Telemetry::new());
        for line in [
            "bufpool_hits ",
            "bufpool_misses ",
            "bufpool_returns ",
            "bufpool_bytes_reused ",
        ] {
            assert!(text.contains(line), "missing {line} in:\n{text}");
        }
        let returns: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix("bufpool_returns "))
            .unwrap()
            .parse()
            .unwrap();
        assert!(returns >= 1);
    }
}

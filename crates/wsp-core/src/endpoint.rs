//! Located and deployed service handles — the WSPeer data structures
//! applications deal with "not those that are transmitted over the
//! wire" (Section III).

use wsp_wsdl::{ServiceDescriptor, TransportKind, WsdlDocument};

/// Which family of substrate an endpoint belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BindingKind {
    /// Standard Web services: SOAP over HTTP(G), UDDI discovery.
    HttpUddi,
    /// SOAP over P2PS pipes, advert-based discovery.
    P2ps,
}

impl BindingKind {
    /// The URI scheme of endpoints in this binding.
    pub fn scheme(self) -> &'static str {
        match self {
            BindingKind::HttpUddi => "http",
            BindingKind::P2ps => "p2ps",
        }
    }

    /// Classify an endpoint URI.
    pub fn of_endpoint(endpoint: &str) -> Option<BindingKind> {
        if endpoint.starts_with("http://") || endpoint.starts_with("httpg://") {
            Some(BindingKind::HttpUddi)
        } else if endpoint.starts_with("p2ps://") {
            Some(BindingKind::P2ps)
        } else {
            None
        }
    }
}

/// A service the locator found: everything a client needs to invoke it.
///
/// The application never sees UDDI records or P2PS adverts — only this,
/// which is how WSPeer keeps the application "protected from the very
/// diversity it exploits".
#[derive(Debug, Clone)]
pub struct LocatedService {
    /// The service's WSDL description.
    pub wsdl: WsdlDocument,
    /// The concrete endpoint chosen for invocation.
    pub endpoint: String,
    /// Which binding the endpoint belongs to.
    pub kind: BindingKind,
}

impl LocatedService {
    pub fn new(wsdl: WsdlDocument, endpoint: impl Into<String>, kind: BindingKind) -> Self {
        LocatedService {
            wsdl,
            endpoint: endpoint.into(),
            kind,
        }
    }

    pub fn name(&self) -> &str {
        &self.wsdl.descriptor.name
    }

    pub fn descriptor(&self) -> &ServiceDescriptor {
        &self.wsdl.descriptor
    }

    /// Does the service offer `operation`?
    pub fn has_operation(&self, operation: &str) -> bool {
        self.wsdl.descriptor.find_operation(operation).is_some()
    }

    /// Re-target the same service at a different port from its WSDL
    /// (e.g. prefer the P2PS port of a dual-homed service).
    pub fn retarget(&self, transport: TransportKind) -> Option<LocatedService> {
        let port = self.wsdl.port_for(transport)?;
        let kind = BindingKind::of_endpoint(&port.location)?;
        Some(LocatedService {
            wsdl: self.wsdl.clone(),
            endpoint: port.location.clone(),
            kind,
        })
    }
}

/// A service this peer has deployed: the handle the application keeps.
#[derive(Debug, Clone)]
pub struct DeployedService {
    pub descriptor: ServiceDescriptor,
    /// Endpoint URIs now serving the service.
    pub endpoints: Vec<String>,
    /// The generated description (what `publish` makes available).
    pub wsdl: WsdlDocument,
}

impl DeployedService {
    pub fn name(&self) -> &str {
        &self.descriptor.name
    }

    pub fn primary_endpoint(&self) -> Option<&str> {
        self.endpoints.first().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_wsdl::Port;

    fn dual_homed() -> LocatedService {
        let wsdl = WsdlDocument::new(
            ServiceDescriptor::echo(),
            vec![
                Port {
                    name: "H".into(),
                    transport: TransportKind::Http,
                    location: "http://h:1/Echo".into(),
                },
                Port {
                    name: "P".into(),
                    transport: TransportKind::P2ps,
                    location: "p2ps://00000000000000aa/Echo".into(),
                },
            ],
        );
        LocatedService::new(wsdl, "http://h:1/Echo", BindingKind::HttpUddi)
    }

    #[test]
    fn classify_endpoints() {
        assert_eq!(
            BindingKind::of_endpoint("http://h/x"),
            Some(BindingKind::HttpUddi)
        );
        assert_eq!(
            BindingKind::of_endpoint("httpg://h/x"),
            Some(BindingKind::HttpUddi)
        );
        assert_eq!(
            BindingKind::of_endpoint("p2ps://00000000000000aa/Echo"),
            Some(BindingKind::P2ps)
        );
        assert_eq!(BindingKind::of_endpoint("ftp://h/x"), None);
    }

    #[test]
    fn located_service_accessors() {
        let svc = dual_homed();
        assert_eq!(svc.name(), "Echo");
        assert!(svc.has_operation("echoString"));
        assert!(!svc.has_operation("nope"));
    }

    #[test]
    fn retarget_switches_binding() {
        let svc = dual_homed();
        let p2ps = svc.retarget(TransportKind::P2ps).unwrap();
        assert_eq!(p2ps.kind, BindingKind::P2ps);
        assert!(p2ps.endpoint.starts_with("p2ps://"));
        assert!(svc.retarget(TransportKind::Httpg).is_none());
    }

    #[test]
    fn deployed_service_accessors() {
        let wsdl = WsdlDocument::new(ServiceDescriptor::echo(), vec![]);
        let deployed = DeployedService {
            descriptor: ServiceDescriptor::echo(),
            endpoints: vec!["http://h:1/Echo".into()],
            wsdl,
        };
        assert_eq!(deployed.name(), "Echo");
        assert_eq!(deployed.primary_endpoint(), Some("http://h:1/Echo"));
    }
}

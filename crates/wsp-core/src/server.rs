//! The server side of the interface tree: deployment and publication.

use crate::components::{ServiceDeployer, ServicePublisher};
use crate::dispatch::Dispatcher;
use crate::endpoint::DeployedService;
use crate::error::WspError;
use crate::events::{
    DeploymentMessageEvent, EventBus, LifecycleMessageEvent, LifecyclePhase, PublishMessageEvent,
};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use wsp_wsdl::{ServiceDescriptor, ServiceHandler};

/// The `Server` node: owns pluggable [`ServiceDeployer`] and
/// [`ServicePublisher`] components and tracks what this peer hosts.
///
/// There is no container here: the application deploys descriptors and
/// handlers at runtime, "in effect allowing the component to become its
/// own container" (Section III, point 2).
pub struct Server {
    deployer: RwLock<Option<Arc<dyn ServiceDeployer>>>,
    publisher: RwLock<Option<Arc<dyn ServicePublisher>>>,
    deployed: RwLock<HashMap<String, DeployedService>>,
    events: EventBus,
    dispatcher: Arc<Dispatcher>,
}

impl Server {
    /// A standalone server with its own default-sized dispatcher.
    /// Inside a [`crate::Peer`] the dispatcher is shared instead — see
    /// [`Server::with_dispatcher`].
    pub fn new(events: EventBus) -> Arc<Server> {
        Server::with_dispatcher(events, Dispatcher::with_defaults())
    }

    pub fn with_dispatcher(events: EventBus, dispatcher: Arc<Dispatcher>) -> Arc<Server> {
        Arc::new(Server {
            deployer: RwLock::new(None),
            publisher: RwLock::new(None),
            deployed: RwLock::new(HashMap::new()),
            events,
            dispatcher,
        })
    }

    /// The dispatch core shared with the rest of the peer's tree;
    /// deployed request handling submitted by bindings runs here.
    pub fn dispatcher(&self) -> &Arc<Dispatcher> {
        &self.dispatcher
    }

    pub fn set_deployer(&self, deployer: Arc<dyn ServiceDeployer>) {
        *self.deployer.write() = Some(deployer);
    }

    pub fn set_publisher(&self, publisher: Arc<dyn ServicePublisher>) {
        *self.publisher.write() = Some(publisher);
    }

    pub fn deployer_kind(&self) -> Option<&'static str> {
        self.deployer.read().as_ref().map(|d| d.kind())
    }

    pub fn publisher_kind(&self) -> Option<&'static str> {
        self.publisher.read().as_ref().map(|p| p.kind())
    }

    /// Deploy a service: generate its description, create an
    /// addressable endpoint, and start answering. Fires a
    /// [`DeploymentMessageEvent`].
    pub fn deploy(
        &self,
        descriptor: ServiceDescriptor,
        handler: Arc<dyn ServiceHandler>,
    ) -> Result<DeployedService, WspError> {
        let deployer = self
            .deployer
            .read()
            .clone()
            .ok_or_else(|| WspError::Deploy("no ServiceDeployer plugged in".into()))?;
        let deployed = deployer.deploy(descriptor, handler)?;
        self.deployed
            .write()
            .insert(deployed.name().to_owned(), deployed.clone());
        self.events.fire_deployment(&DeploymentMessageEvent {
            service: deployed.name().to_owned(),
            endpoints: deployed.endpoints.clone(),
        });
        Ok(deployed)
    }

    /// Publish a deployed service's description to the network. Fires a
    /// [`PublishMessageEvent`].
    pub fn publish(&self, service: &str) -> Result<String, WspError> {
        let publisher = self
            .publisher
            .read()
            .clone()
            .ok_or_else(|| WspError::Publish("no ServicePublisher plugged in".into()))?;
        let deployed = self
            .deployed
            .read()
            .get(service)
            .cloned()
            .ok_or_else(|| WspError::Publish(format!("{service:?} is not deployed")))?;
        let result = publisher.publish(&deployed);
        self.events.fire_publish(&PublishMessageEvent {
            service: service.to_owned(),
            result: result.clone(),
        });
        result
    }

    /// Deploy then publish in one step — the common path in Figures 3
    /// and 4.
    pub fn deploy_and_publish(
        &self,
        descriptor: ServiceDescriptor,
        handler: Arc<dyn ServiceHandler>,
    ) -> Result<DeployedService, WspError> {
        let deployed = self.deploy(descriptor, handler)?;
        self.publish(deployed.name())?;
        Ok(deployed)
    }

    /// Take a service down: withdraw the publication and remove the
    /// endpoint. True if it was deployed. Fires a deployment event with
    /// no endpoints.
    pub fn undeploy(&self, service: &str) -> bool {
        let existed = self.deployed.write().remove(service).is_some();
        if !existed {
            return false;
        }
        if let Some(publisher) = self.publisher.read().clone() {
            publisher.unpublish(service);
        }
        if let Some(deployer) = self.deployer.read().clone() {
            deployer.undeploy(service);
        }
        self.events.fire_deployment(&DeploymentMessageEvent {
            service: service.to_owned(),
            endpoints: vec![],
        });
        true
    }

    /// Drain-mode undeploy: withdraw the publication and the endpoint
    /// first — no *new* work can arrive — then wait (helping run jobs)
    /// for everything already submitted to the shared dispatcher to
    /// finish, up to `drain_deadline`. Nothing admitted is dropped;
    /// plain [`undeploy`](Server::undeploy) remains the abrupt path.
    ///
    /// Fires [`LifecycleMessageEvent`]s around the wait
    /// (`DrainStarted`, then `DrainCompleted` or `DrainTimedOut`) in
    /// addition to the usual no-endpoint deployment event. Returns
    /// `true` when the service existed *and* the dispatcher went idle
    /// inside the deadline.
    pub fn undeploy_graceful(&self, service: &str, drain_deadline: Duration) -> bool {
        if !self.undeploy(service) {
            return false;
        }
        let stats = self.dispatcher.stats();
        self.events.fire_lifecycle(&LifecycleMessageEvent {
            subject: service.to_owned(),
            phase: LifecyclePhase::DrainStarted,
            in_flight: stats.in_flight + stats.queue_depth,
        });
        let drained = self.dispatcher.flush_within(drain_deadline);
        let remaining = self.dispatcher.stats();
        self.events.fire_lifecycle(&LifecycleMessageEvent {
            subject: service.to_owned(),
            phase: if drained {
                LifecyclePhase::DrainCompleted
            } else {
                LifecyclePhase::DrainTimedOut
            },
            in_flight: remaining.in_flight + remaining.queue_depth,
        });
        drained
    }

    /// The services this peer currently hosts.
    pub fn deployed_services(&self) -> Vec<DeployedService> {
        self.deployed.read().values().cloned().collect()
    }

    pub fn deployed_service(&self, name: &str) -> Option<DeployedService> {
        self.deployed.read().get(name).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::CollectingListener;
    use wsp_wsdl::{Value, WsdlDocument};

    struct StubDeployer;
    impl ServiceDeployer for StubDeployer {
        fn deploy(
            &self,
            descriptor: ServiceDescriptor,
            _handler: Arc<dyn ServiceHandler>,
        ) -> Result<DeployedService, WspError> {
            let endpoint = format!("test://here/{}", descriptor.name);
            let wsdl = WsdlDocument::new(descriptor.clone(), vec![]);
            Ok(DeployedService {
                descriptor,
                endpoints: vec![endpoint],
                wsdl,
            })
        }
        fn undeploy(&self, _service: &str) -> bool {
            true
        }
        fn kind(&self) -> &'static str {
            "stub"
        }
    }

    struct StubPublisher;
    impl ServicePublisher for StubPublisher {
        fn publish(&self, service: &DeployedService) -> Result<String, WspError> {
            Ok(format!("published:{}", service.name()))
        }
        fn unpublish(&self, _service: &str) -> bool {
            true
        }
        fn kind(&self) -> &'static str {
            "stub"
        }
    }

    fn echo_handler() -> Arc<dyn ServiceHandler> {
        Arc::new(|_op: &str, args: &[Value]| Ok(args.first().cloned().unwrap_or(Value::Null)))
    }

    fn wired_server() -> (Arc<Server>, Arc<CollectingListener>) {
        let events = EventBus::new();
        let listener = CollectingListener::new();
        events.add_listener(listener.clone());
        let server = Server::new(events);
        server.set_deployer(Arc::new(StubDeployer));
        server.set_publisher(Arc::new(StubPublisher));
        (server, listener)
    }

    #[test]
    fn deploy_tracks_and_fires() {
        let (server, listener) = wired_server();
        let deployed = server
            .deploy(ServiceDescriptor::echo(), echo_handler())
            .unwrap();
        assert_eq!(deployed.endpoints, vec!["test://here/Echo"]);
        assert_eq!(server.deployed_services().len(), 1);
        assert_eq!(listener.deployments.read().len(), 1);
        assert_eq!(listener.deployments.read()[0].endpoints.len(), 1);
    }

    #[test]
    fn publish_requires_prior_deploy() {
        let (server, listener) = wired_server();
        assert!(matches!(server.publish("Ghost"), Err(WspError::Publish(_))));
        server
            .deploy(ServiceDescriptor::echo(), echo_handler())
            .unwrap();
        assert_eq!(server.publish("Echo").unwrap(), "published:Echo");
        assert_eq!(listener.publishes.read().len(), 1);
    }

    #[test]
    fn deploy_and_publish_combined() {
        let (server, listener) = wired_server();
        server
            .deploy_and_publish(ServiceDescriptor::echo(), echo_handler())
            .unwrap();
        assert_eq!(listener.deployments.read().len(), 1);
        assert_eq!(listener.publishes.read().len(), 1);
    }

    #[test]
    fn undeploy_cleans_up_and_fires() {
        let (server, listener) = wired_server();
        server
            .deploy(ServiceDescriptor::echo(), echo_handler())
            .unwrap();
        assert!(server.undeploy("Echo"));
        assert!(!server.undeploy("Echo"));
        assert!(server.deployed_services().is_empty());
        let deployments = listener.deployments.read();
        assert_eq!(deployments.len(), 2);
        assert!(deployments[1].endpoints.is_empty());
    }

    #[test]
    fn graceful_undeploy_drains_and_fires_lifecycle_events() {
        let (server, listener) = wired_server();
        server
            .deploy(ServiceDescriptor::echo(), echo_handler())
            .unwrap();
        // Leave some slow work on the dispatcher: drain must outwait it.
        let ran = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = ran.clone();
        server
            .dispatcher()
            .execute(move || {
                std::thread::sleep(Duration::from_millis(30));
                flag.store(true, std::sync::atomic::Ordering::SeqCst);
            })
            .unwrap();
        assert!(server.undeploy_graceful("Echo", Duration::from_secs(5)));
        assert!(
            ran.load(std::sync::atomic::Ordering::SeqCst),
            "queued work finished before drain returned"
        );
        let lifecycle = listener.lifecycle.read();
        assert_eq!(lifecycle.len(), 2);
        assert_eq!(lifecycle[0].phase, LifecyclePhase::DrainStarted);
        assert_eq!(lifecycle[1].phase, LifecyclePhase::DrainCompleted);
        assert_eq!(lifecycle[1].in_flight, 0);
    }

    #[test]
    fn graceful_undeploy_times_out_on_stuck_work() {
        let (server, listener) = wired_server();
        server
            .deploy(ServiceDescriptor::echo(), echo_handler())
            .unwrap();
        // Work that outlives any reasonable drain deadline.
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let hold = gate.clone();
        server
            .dispatcher()
            .execute(move || {
                while !hold.load(std::sync::atomic::Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
            .unwrap();
        assert!(!server.undeploy_graceful("Echo", Duration::from_millis(40)));
        assert_eq!(
            listener.lifecycle.read().last().unwrap().phase,
            LifecyclePhase::DrainTimedOut
        );
        gate.store(true, std::sync::atomic::Ordering::SeqCst);
        server.dispatcher().flush();
    }

    #[test]
    fn graceful_undeploy_of_missing_service_is_false() {
        let (server, listener) = wired_server();
        assert!(!server.undeploy_graceful("Ghost", Duration::from_millis(10)));
        assert!(listener.lifecycle.read().is_empty());
    }

    #[test]
    fn missing_components_error() {
        let server = Server::new(EventBus::new());
        assert!(matches!(
            server.deploy(ServiceDescriptor::echo(), echo_handler()),
            Err(WspError::Deploy(_))
        ));
    }
}

//! Server-side overload protection: admission control and deadline
//! propagation.
//!
//! The paper's container-less hosting claim (Section IV.A) means the
//! application *is* the server — there is no container in front of it
//! to absorb a burst. This module is the host-side half of the
//! resilience story started by the client retry loop: a
//! [`LoadShedPolicy`] bounds how much work a peer accepts, an
//! [`AdmissionController`] enforces it with an O(1) check per request,
//! and a shed answers *immediately* with [`WspError::Overloaded`] plus
//! a `Retry-After` hint — so a retry storm backs off instead of
//! amplifying the overload.
//!
//! Deadline propagation is the other half: the client's per-call
//! deadline crosses the wire as [`DEADLINE_HEADER`] (remaining budget
//! in milliseconds — a *duration*, not a wall-clock timestamp, so
//! unsynchronised peer clocks cannot corrupt it), is rehydrated
//! server-side into a [`DeadlineScope`], and work whose deadline has
//! already expired is shed at dequeue time — there is no point
//! computing a response nobody is waiting for.

//! Every admission decision lives in the pure
//! [`crate::machines::admission::AdmissionMachine`]; this module is its
//! runtime shell. The shell gathers the *observations* (queue depth,
//! deadline expiry, the sampled watermark verdict), ships them inside
//! an [`AdmissionEvent::Admit`], and translates the effects back into
//! permits, faults and counters. `wsp-check` exhaustively explores the
//! machine; the tests here exercise the shell around it.

use crate::error::WspError;
use crate::machines::admission::{
    AdmissionEffect, AdmissionEvent, AdmissionMachine, AdmissionState, ShedReason,
};
use crate::machines::keyed_admission::{
    KeyedAdmissionEffect, KeyedAdmissionEvent, KeyedAdmissionMachine, KeyedAdmissionState,
    KeyedShedReason,
};
use crate::telemetry::{self, Counter};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wsp_simnet::Machine;

/// Request header carrying the caller's *remaining* call budget in
/// milliseconds. Relative (a duration) rather than absolute so clock
/// skew between peers cannot manufacture or destroy budget.
pub const DEADLINE_HEADER: &str = "X-WSP-Deadline";

/// Request header naming the tenant a request belongs to, for keyed
/// (per-tenant fair-share) admission. Requests without it fall into
/// the [`ANONYMOUS_TENANT`] bucket.
pub const TENANT_HEADER: &str = "X-WSP-Tenant";

/// The tenant bucket for requests that do not identify themselves.
pub const ANONYMOUS_TENANT: &str = "anonymous";

/// SOAP header block (namespace-less local name) carrying the tenant
/// id over bindings without transport headers (the P2PS pipes).
pub const TENANT_SOAP_HEADER: &str = "Tenant";

/// Response header carrying the server's retry hint in milliseconds —
/// finer-grained companion to the standard whole-second `Retry-After`.
pub const RETRY_AFTER_MS_HEADER: &str = "X-WSP-Retry-After-Ms";

/// Reason prefix of the P2PS busy fault. A receiver fault whose reason
/// starts with this is a load-shed, not an application error; the
/// suffix carries the retry hint as `retry-after-ms=<n>`.
pub const BUSY_FAULT_PREFIX: &str = "wsp:overloaded";

/// SOAP header block (namespace-less local name) carrying the
/// remaining deadline budget over the P2PS binding.
pub const DEADLINE_SOAP_HEADER: &str = "Deadline";

/// How often the (comparatively expensive) queue-wait watermark check
/// re-reads the histogram: every 2^6 = 64 admissions. Between samples
/// the cached verdict is used, keeping the admission check O(1).
const WATERMARK_SAMPLE_SHIFT: u64 = 6;

/// What a host is willing to accept before shedding.
///
/// The default policy is effectively unlimited — exactly the
/// pre-overload-protection behaviour, so nothing sheds until a policy
/// is configured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadShedPolicy {
    /// Shed when the dispatch queue already holds this many jobs.
    /// `usize::MAX` disables the check.
    pub max_queue_depth: usize,
    /// Shed when this many requests are already in flight (admitted
    /// and not yet answered). `usize::MAX` disables the check.
    pub max_in_flight: usize,
    /// Shed when the p99 dispatch queue wait (from the telemetry
    /// histograms, sampled periodically) exceeds this — the earliest
    /// smoke signal of saturation, firing before the queue is full.
    pub queue_wait_watermark: Option<Duration>,
    /// The `Retry-After` hint attached to every shed.
    pub retry_after: Duration,
}

impl Default for LoadShedPolicy {
    fn default() -> Self {
        LoadShedPolicy::unlimited()
    }
}

impl LoadShedPolicy {
    /// Accept everything (the legacy behaviour).
    pub fn unlimited() -> Self {
        LoadShedPolicy {
            max_queue_depth: usize::MAX,
            max_in_flight: usize::MAX,
            queue_wait_watermark: None,
            retry_after: Duration::from_millis(100),
        }
    }

    /// A bounded policy: at most `in_flight` concurrent requests and
    /// `queue_depth` queued jobs, 100 ms retry hint.
    pub fn bounded(in_flight: usize, queue_depth: usize) -> Self {
        LoadShedPolicy {
            max_queue_depth: queue_depth,
            max_in_flight: in_flight,
            queue_wait_watermark: None,
            retry_after: Duration::from_millis(100),
        }
    }

    pub fn with_retry_after(mut self, hint: Duration) -> Self {
        self.retry_after = hint;
        self
    }

    pub fn with_queue_wait_watermark(mut self, watermark: Duration) -> Self {
        self.queue_wait_watermark = Some(watermark);
        self
    }

    /// Does this policy ever shed?
    pub fn is_limiting(&self) -> bool {
        self.max_queue_depth != usize::MAX
            || self.max_in_flight != usize::MAX
            || self.queue_wait_watermark.is_some()
    }
}

/// Enforces a [`LoadShedPolicy`] for one host. Cheap to clone (all
/// state behind one `Arc`); both bindings of a peer may share one
/// controller so the in-flight cap is per-peer, not per-transport.
#[derive(Clone)]
pub struct AdmissionController {
    inner: Arc<AdmissionInner>,
}

struct AdmissionInner {
    policy: LoadShedPolicy,
    machine: AdmissionMachine,
    /// All protocol state; every transition steps the machine under
    /// this mutex, so concurrent admissions serialise and the cap is
    /// never transiently breached.
    state: Mutex<AdmissionState>,
    admissions: AtomicU64,
    /// Cached verdict of the periodic watermark sample.
    over_watermark: AtomicBool,
    admitted: Arc<Counter>,
    shed: Arc<Counter>,
    shed_expired: Arc<Counter>,
}

impl AdmissionController {
    pub fn new(policy: LoadShedPolicy) -> Self {
        let registry = telemetry::global();
        let machine = AdmissionMachine {
            max_in_flight: policy.max_in_flight as u64,
            max_queue_depth: policy.max_queue_depth as u64,
        };
        let state = Mutex::new(machine.initial());
        AdmissionController {
            inner: Arc::new(AdmissionInner {
                policy,
                machine,
                state,
                admissions: AtomicU64::new(0),
                over_watermark: AtomicBool::new(false),
                admitted: registry.counter("admission.admitted"),
                shed: registry.counter("admission.shed"),
                shed_expired: registry.counter("admission.shed_expired"),
            }),
        }
    }

    fn step(&self, event: AdmissionEvent) -> Vec<AdmissionEffect> {
        let mut state = self.inner.state.lock();
        let (next, effects) = self.inner.machine.step(&state, &event);
        *state = next;
        effects
    }

    pub fn policy(&self) -> &LoadShedPolicy {
        &self.inner.policy
    }

    /// Requests currently admitted and unanswered.
    pub fn in_flight(&self) -> usize {
        self.inner.state.lock().in_flight as usize
    }

    /// Enter drain mode: every subsequent admission is refused (with
    /// the retry hint) while already-admitted work runs to completion.
    pub fn start_draining(&self) {
        self.step(AdmissionEvent::BeginDrain);
    }

    pub fn stop_draining(&self) {
        self.step(AdmissionEvent::EndDrain);
    }

    pub fn is_draining(&self) -> bool {
        self.inner.state.lock().draining
    }

    fn overloaded(&self) -> WspError {
        self.inner.shed.incr();
        WspError::Overloaded {
            retry_after_ms: Some(self.inner.policy.retry_after.as_millis() as u64),
        }
    }

    /// The shell's half of the watermark check: sample the p99 queue
    /// wait every 2^[`WATERMARK_SAMPLE_SHIFT`] admissions, cache the
    /// verdict, and hand the machine a plain boolean observation.
    fn observe_watermark(&self) -> bool {
        let Some(watermark) = self.inner.policy.queue_wait_watermark else {
            return false;
        };
        let n = self.inner.admissions.fetch_add(1, Ordering::Relaxed);
        if n & ((1 << WATERMARK_SAMPLE_SHIFT) - 1) == 0 {
            let p99_us = telemetry::global()
                .histogram("dispatch.queue_wait_us")
                .snapshot()
                .p99();
            let over = Duration::from_micros(p99_us) > watermark;
            self.inner.over_watermark.store(over, Ordering::Relaxed);
        }
        self.inner.over_watermark.load(Ordering::Relaxed)
    }

    /// Admit one request or shed it. `queue_depth` is the host's
    /// current dispatch-queue depth (pass 0 when not applicable);
    /// `deadline` is the caller's propagated deadline, shed immediately
    /// when already expired (the caller has given up — answering
    /// quickly matters more than answering at all).
    pub fn try_admit(
        &self,
        queue_depth: usize,
        deadline: Option<Instant>,
    ) -> Result<AdmissionPermit, WspError> {
        let event = AdmissionEvent::Admit {
            queue_depth: queue_depth as u64,
            deadline_expired: deadline.is_some_and(|d| Instant::now() >= d),
            over_watermark: self.observe_watermark(),
        };
        match self.step(event).first() {
            Some(AdmissionEffect::Admitted) => {
                self.inner.admitted.incr();
                Ok(AdmissionPermit {
                    controller: self.clone(),
                })
            }
            Some(AdmissionEffect::Shed(reason)) => {
                if *reason == ShedReason::DeadlineExpired {
                    self.inner.shed_expired.incr();
                }
                Err(self.overloaded())
            }
            other => unreachable!("Admit event produced {other:?}"),
        }
    }

    /// Block until all admitted work has finished or `deadline` passes.
    /// Returns the number of requests still in flight (0 on success).
    pub fn await_idle(&self, deadline: Instant) -> usize {
        loop {
            let in_flight = self.in_flight();
            if in_flight == 0 || Instant::now() >= deadline {
                return in_flight;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// RAII proof of admission: holds one in-flight slot, released on drop
/// (success, fault and panic paths alike).
pub struct AdmissionPermit {
    controller: AdmissionController,
}

impl std::fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit")
            .field("in_flight", &self.controller.in_flight())
            .finish()
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let effects = self.controller.step(AdmissionEvent::Release);
        debug_assert!(
            !effects.contains(&AdmissionEffect::PermitUnderflow),
            "permit released with nothing in flight"
        );
    }
}

// --- keyed (per-tenant fair-share) admission --------------------------------

/// What a mediation tier is willing to accept, per tenant: the keyed
/// generalisation of [`LoadShedPolicy`]. One global in-flight cap is
/// split into guaranteed shares by tenant weight (largest-remainder
/// apportionment, computed by the pure machine); tenants may borrow
/// idle capacity beyond their share but never out of another tenant's
/// unused guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyedLoadShedPolicy {
    /// Total in-flight permits across every tenant.
    pub global_max_in_flight: usize,
    /// Hard per-tenant burst ceiling (even with the rest of the host
    /// idle, one tenant cannot exceed this).
    pub tenant_max_in_flight: usize,
    /// Weight applied to tenants not listed in `weights`.
    pub default_weight: u64,
    /// Explicitly weighted tenants, interned first (in this order).
    pub weights: Vec<(String, u64)>,
    /// Same early-smoke-signal watermark as [`LoadShedPolicy`].
    pub queue_wait_watermark: Option<Duration>,
    /// Base `Retry-After` hint; per-tenant hints scale it by how far
    /// over its guaranteed share the tenant already is.
    pub retry_after: Duration,
    /// Telemetry prefix for the per-tenant shed counters
    /// (`<prefix>.<tenant>.shed`).
    pub counter_prefix: String,
    /// Ceiling on the interned tenant population. Tenant ids arrive in
    /// client-controlled headers, so without a bound an attacker
    /// sending junk names would grow the interner, the per-tenant
    /// counters and the `/metrics` cardinality without limit — and
    /// each junk name's anti-starvation floor of 1 would dilute every
    /// real tenant's guaranteed share. Once the population is full,
    /// unseen tenants are bucketed into the shared
    /// [`ANONYMOUS_TENANT`] slot instead of being interned.
    /// Explicitly weighted tenants always intern, even past the cap.
    pub max_tenants: usize,
}

impl KeyedLoadShedPolicy {
    /// An equal-weight fair-share policy over `global_cap` permits.
    pub fn fair(global_cap: usize) -> Self {
        KeyedLoadShedPolicy {
            global_max_in_flight: global_cap,
            tenant_max_in_flight: global_cap,
            default_weight: 1,
            weights: Vec::new(),
            queue_wait_watermark: None,
            retry_after: Duration::from_millis(100),
            counter_prefix: "admission.tenant".to_owned(),
            max_tenants: 64,
        }
    }

    pub fn with_weight(mut self, tenant: impl Into<String>, weight: u64) -> Self {
        self.weights.push((tenant.into(), weight.max(1)));
        self
    }

    pub fn with_tenant_cap(mut self, cap: usize) -> Self {
        self.tenant_max_in_flight = cap;
        self
    }

    pub fn with_retry_after(mut self, hint: Duration) -> Self {
        self.retry_after = hint;
        self
    }

    pub fn with_counter_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.counter_prefix = prefix.into();
        self
    }

    pub fn with_max_tenants(mut self, max: usize) -> Self {
        self.max_tenants = max.max(1);
        self
    }
}

/// All keyed protocol state, stepped under one mutex. The tenant
/// interner lives inside the same lock: admitting a brand-new tenant
/// atomically grows the machine's weight vector and the state's
/// in-flight vector, so shares re-apportion on the very next decision.
///
/// The apportionment is cached here and recomputed only when the
/// weight vector changes (a tenant interned), so the steady-state
/// admission path does no `O(n log n)` work under the lock.
struct KeyedSync {
    machine: KeyedAdmissionMachine,
    state: KeyedAdmissionState,
    tenants: Vec<String>,
    index: HashMap<String, usize>,
    /// `machine.guaranteed()` for the current weight vector.
    guaranteed: Vec<u64>,
}

impl KeyedSync {
    fn intern(&mut self, tenant: &str, weight: u64) -> usize {
        if let Some(&i) = self.index.get(tenant) {
            return i;
        }
        let i = self.tenants.len();
        self.tenants.push(tenant.to_owned());
        self.index.insert(tenant.to_owned(), i);
        self.machine.weights.push(weight.max(1));
        self.state.in_flight.push(0);
        self.guaranteed = self.machine.guaranteed();
        i
    }

    /// The slot a request for `tenant` is accounted to. Known tenants
    /// resolve directly; unseen ones intern while the population is
    /// below [`KeyedLoadShedPolicy::max_tenants`] and share the
    /// [`ANONYMOUS_TENANT`] bucket beyond it, bounding memory, metric
    /// cardinality and share dilution against junk tenant floods.
    fn tenant_index(&mut self, tenant: &str, policy: &KeyedLoadShedPolicy) -> usize {
        if let Some(&i) = self.index.get(tenant) {
            return i;
        }
        if self.tenants.len() < policy.max_tenants {
            return self.intern(tenant, policy.default_weight);
        }
        // Population full: the overflow bucket (interned on first use;
        // the population is thus bounded by `max_tenants + 1`).
        if let Some(&i) = self.index.get(ANONYMOUS_TENANT) {
            return i;
        }
        self.intern(ANONYMOUS_TENANT, policy.default_weight)
    }
}

struct KeyedInner {
    policy: KeyedLoadShedPolicy,
    sync: Mutex<KeyedSync>,
    admissions: AtomicU64,
    over_watermark: AtomicBool,
    admitted: Arc<Counter>,
    shed: Arc<Counter>,
    shed_expired: Arc<Counter>,
}

/// Enforces a [`KeyedLoadShedPolicy`]: the runtime shell around the
/// pure [`KeyedAdmissionMachine`]. Cheap to clone; a gateway's HTTP
/// and P2PS fronts share one controller so the fair-share arithmetic
/// spans both bindings.
#[derive(Clone)]
pub struct KeyedAdmissionController {
    inner: Arc<KeyedInner>,
}

impl KeyedAdmissionController {
    pub fn new(policy: KeyedLoadShedPolicy) -> Self {
        let registry = telemetry::global();
        let machine = KeyedAdmissionMachine {
            global_cap: policy.global_max_in_flight as u64,
            weights: Vec::new(),
            tenant_cap: policy.tenant_max_in_flight as u64,
        };
        let mut sync = KeyedSync {
            state: machine.initial(),
            machine,
            tenants: Vec::new(),
            index: HashMap::new(),
            guaranteed: Vec::new(),
        };
        // Intern configured tenants eagerly, in policy order, so their
        // indices (and the bisimulation mirror's) are deterministic.
        // Explicit weights always intern, even past `max_tenants`.
        for (tenant, weight) in policy.weights.clone() {
            let i = sync.intern(&tenant, weight);
            if sync.machine.weights[i] != weight.max(1) {
                // A tenant listed twice: the last weight wins.
                sync.machine.weights[i] = weight.max(1);
                sync.guaranteed = sync.machine.guaranteed();
            }
        }
        let prefix = &policy.counter_prefix;
        KeyedAdmissionController {
            inner: Arc::new(KeyedInner {
                admitted: registry.counter(format!("{prefix}.admitted")),
                shed: registry.counter(format!("{prefix}.shed")),
                shed_expired: registry.counter(format!("{prefix}.shed_expired")),
                policy,
                sync: Mutex::new(sync),
                admissions: AtomicU64::new(0),
                over_watermark: AtomicBool::new(false),
            }),
        }
    }

    pub fn policy(&self) -> &KeyedLoadShedPolicy {
        &self.inner.policy
    }

    /// In-flight permits held by `tenant` (0 for unknown tenants).
    pub fn in_flight(&self, tenant: &str) -> usize {
        let sync = self.inner.sync.lock();
        sync.index
            .get(tenant)
            .map(|&i| sync.state.in_flight[i] as usize)
            .unwrap_or(0)
    }

    pub fn total_in_flight(&self) -> usize {
        self.inner.sync.lock().state.total() as usize
    }

    /// The guaranteed share currently apportioned to `tenant`.
    pub fn guaranteed_share(&self, tenant: &str) -> usize {
        let sync = self.inner.sync.lock();
        sync.index
            .get(tenant)
            .map(|&i| sync.guaranteed[i] as usize)
            .unwrap_or(0)
    }

    pub fn tenants(&self) -> Vec<String> {
        self.inner.sync.lock().tenants.clone()
    }

    pub fn start_draining(&self) {
        let mut sync = self.inner.sync.lock();
        let (next, _) = sync.machine.step_apportioned(
            &sync.guaranteed,
            &sync.state,
            &KeyedAdmissionEvent::BeginDrain,
        );
        sync.state = next;
    }

    pub fn stop_draining(&self) {
        let mut sync = self.inner.sync.lock();
        let (next, _) = sync.machine.step_apportioned(
            &sync.guaranteed,
            &sync.state,
            &KeyedAdmissionEvent::EndDrain,
        );
        sync.state = next;
    }

    pub fn is_draining(&self) -> bool {
        self.inner.sync.lock().state.draining
    }

    /// Same sampled-watermark scheme as the global controller: re-read
    /// the p99 dispatch queue wait every 64 admissions, cache the
    /// verdict, hand the machine a boolean observation.
    fn observe_watermark(&self) -> bool {
        let Some(watermark) = self.inner.policy.queue_wait_watermark else {
            return false;
        };
        let n = self.inner.admissions.fetch_add(1, Ordering::Relaxed);
        if n & ((1 << WATERMARK_SAMPLE_SHIFT) - 1) == 0 {
            let p99_us = telemetry::global()
                .histogram("dispatch.queue_wait_us")
                .snapshot()
                .p99();
            let over = Duration::from_micros(p99_us) > watermark;
            self.inner.over_watermark.store(over, Ordering::Relaxed);
        }
        self.inner.over_watermark.load(Ordering::Relaxed)
    }

    /// Admit one request for `tenant` or shed it with a per-tenant
    /// retry hint: the base hint scaled by how far over its guaranteed
    /// share the tenant already is, so a flooding tenant is told to
    /// back off harder than one shed by transient global pressure.
    pub fn try_admit(
        &self,
        tenant: &str,
        deadline: Option<Instant>,
    ) -> Result<KeyedAdmissionPermit, WspError> {
        let event_expired = deadline.is_some_and(|d| Instant::now() >= d);
        let over_watermark = self.observe_watermark();
        let mut sync = self.inner.sync.lock();
        let t = sync.tenant_index(tenant, &self.inner.policy);
        let event = KeyedAdmissionEvent::Admit {
            tenant: t,
            deadline_expired: event_expired,
            over_watermark,
        };
        let (next, effects) = sync
            .machine
            .step_apportioned(&sync.guaranteed, &sync.state, &event);
        sync.state = next;
        match effects.first() {
            Some(KeyedAdmissionEffect::Admitted { .. }) => {
                drop(sync);
                self.inner.admitted.incr();
                Ok(KeyedAdmissionPermit {
                    controller: self.clone(),
                    tenant: t,
                })
            }
            Some(KeyedAdmissionEffect::Shed { reason, .. }) => {
                let hint = self.retry_hint_locked(&sync, t, *reason);
                // Counters are named by the *interned* slot, so junk
                // tenant names beyond `max_tenants` all land on the
                // anonymous bucket instead of minting fresh series.
                let bucket = sync.tenants[t].clone();
                drop(sync);
                self.inner.shed.incr();
                if *reason == KeyedShedReason::DeadlineExpired {
                    self.inner.shed_expired.incr();
                }
                telemetry::global()
                    .counter(format!(
                        "{}.{bucket}.shed",
                        self.inner.policy.counter_prefix
                    ))
                    .incr();
                Err(WspError::Overloaded {
                    retry_after_ms: Some(hint),
                })
            }
            other => unreachable!("keyed Admit produced {other:?}"),
        }
    }

    /// The per-tenant hint: `base * (1 + in_flight/guaranteed)` for
    /// sheds the tenant caused itself (over its share or ceiling), the
    /// plain base for global conditions. Monotone in tenant pressure.
    fn retry_hint_locked(&self, sync: &KeyedSync, tenant: usize, reason: KeyedShedReason) -> u64 {
        let base = self.inner.policy.retry_after.as_millis() as u64;
        match reason {
            KeyedShedReason::TenantCap | KeyedShedReason::FairShareReserve => {
                let f = sync.state.in_flight[tenant];
                let g = sync.guaranteed[tenant].max(1);
                base * (1 + f / g).min(8)
            }
            _ => base,
        }
    }

    fn release(&self, tenant: usize) {
        let mut sync = self.inner.sync.lock();
        let (next, effects) = sync.machine.step_apportioned(
            &sync.guaranteed,
            &sync.state,
            &KeyedAdmissionEvent::Release { tenant },
        );
        sync.state = next;
        debug_assert!(
            !effects.contains(&KeyedAdmissionEffect::PermitUnderflow),
            "keyed permit released with nothing in flight"
        );
    }

    /// Block until every tenant's work has finished or `deadline`
    /// passes; returns the total still in flight (0 on success).
    pub fn await_idle(&self, deadline: Instant) -> usize {
        loop {
            let in_flight = self.total_in_flight();
            if in_flight == 0 || Instant::now() >= deadline {
                return in_flight;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// RAII proof of keyed admission: holds one of its tenant's in-flight
/// slots, released on drop.
pub struct KeyedAdmissionPermit {
    controller: KeyedAdmissionController,
    tenant: usize,
}

impl std::fmt::Debug for KeyedAdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedAdmissionPermit")
            .field("tenant", &self.tenant)
            .finish()
    }
}

impl Drop for KeyedAdmissionPermit {
    fn drop(&mut self) {
        self.controller.release(self.tenant);
    }
}

// --- deadline propagation ----------------------------------------------------

thread_local! {
    static CURRENT_DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Scopes a call deadline to the current thread, mirroring
/// [`crate::telemetry::CorrelationScope`]: the client retry loop enters
/// one around each attempt so transports can serialise the remaining
/// budget, and a server enters one around handler execution so nested
/// outbound calls inherit the caller's budget. Restores the previous
/// deadline on drop, so scopes nest.
pub struct DeadlineScope {
    previous: Option<Instant>,
}

impl DeadlineScope {
    pub fn enter(deadline: Option<Instant>) -> DeadlineScope {
        let previous = CURRENT_DEADLINE.with(|cell| cell.replace(deadline));
        DeadlineScope { previous }
    }
}

impl Drop for DeadlineScope {
    fn drop(&mut self) {
        CURRENT_DEADLINE.with(|cell| cell.set(self.previous));
    }
}

/// The deadline scoped to the current thread, if any.
pub fn current_deadline() -> Option<Instant> {
    CURRENT_DEADLINE.with(|cell| cell.get())
}

/// Remaining budget of `deadline` in whole milliseconds — what goes on
/// the wire. `None` when already expired (send nothing; the server
/// would only shed it, and the local attempt is about to time out
/// anyway).
pub fn remaining_ms(deadline: Instant) -> Option<u64> {
    let now = Instant::now();
    if now >= deadline {
        return None;
    }
    Some((deadline - now).as_millis().max(1) as u64)
}

/// Rehydrate a wire budget into a local deadline.
pub fn deadline_in_ms(ms: u64) -> Instant {
    Instant::now() + Duration::from_millis(ms)
}

/// Render the busy-fault reason carried by the P2PS binding.
pub fn busy_fault_reason(retry_after: Duration) -> String {
    format!(
        "{BUSY_FAULT_PREFIX} retry-after-ms={}",
        retry_after.as_millis()
    )
}

/// Parse a fault reason: `Some(hint)` when it is a busy fault.
pub fn parse_busy_fault(reason: &str) -> Option<Option<u64>> {
    let rest = reason.strip_prefix(BUSY_FAULT_PREFIX)?;
    Some(
        rest.trim()
            .strip_prefix("retry-after-ms=")
            .and_then(|ms| ms.trim().parse().ok()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn unlimited_policy_admits_everything() {
        let ctl = AdmissionController::new(LoadShedPolicy::unlimited());
        let mut permits = Vec::new();
        for depth in 0..100 {
            permits.push(ctl.try_admit(depth, None).expect("admit"));
        }
        assert_eq!(ctl.in_flight(), 100);
        drop(permits);
        assert_eq!(ctl.in_flight(), 0);
    }

    #[test]
    fn in_flight_cap_sheds_and_recovers() {
        let ctl = AdmissionController::new(LoadShedPolicy::bounded(2, usize::MAX));
        let a = ctl.try_admit(0, None).expect("first");
        let _b = ctl.try_admit(0, None).expect("second");
        let shed = ctl.try_admit(0, None).expect_err("third must shed");
        assert!(
            matches!(
                shed,
                WspError::Overloaded {
                    retry_after_ms: Some(100)
                }
            ),
            "{shed:?}"
        );
        drop(a);
        ctl.try_admit(0, None).expect("slot freed by drop");
    }

    #[test]
    fn queue_depth_cap_sheds() {
        let ctl = AdmissionController::new(LoadShedPolicy::bounded(usize::MAX, 4));
        assert!(ctl.try_admit(3, None).is_ok());
        assert!(matches!(
            ctl.try_admit(4, None),
            Err(WspError::Overloaded { .. })
        ));
    }

    #[test]
    fn expired_deadline_is_shed_on_arrival() {
        let ctl = AdmissionController::new(LoadShedPolicy::unlimited());
        let expired = Instant::now() - Duration::from_millis(1);
        assert!(matches!(
            ctl.try_admit(0, Some(expired)),
            Err(WspError::Overloaded { .. })
        ));
        let live = Instant::now() + Duration::from_secs(5);
        assert!(ctl.try_admit(0, Some(live)).is_ok());
    }

    #[test]
    fn draining_refuses_new_work_but_keeps_permits() {
        let ctl = AdmissionController::new(LoadShedPolicy::unlimited());
        let permit = ctl.try_admit(0, None).expect("before drain");
        ctl.start_draining();
        assert!(matches!(
            ctl.try_admit(0, None),
            Err(WspError::Overloaded { .. })
        ));
        assert_eq!(ctl.in_flight(), 1, "in-flight work unaffected by drain");
        drop(permit);
        let idle_by = Instant::now() + Duration::from_secs(1);
        assert_eq!(ctl.await_idle(idle_by), 0);
        ctl.stop_draining();
        assert!(ctl.try_admit(0, None).is_ok());
    }

    #[test]
    fn concurrent_admissions_never_exceed_the_cap() {
        let cap = 8;
        let ctl = AdmissionController::new(LoadShedPolicy::bounded(cap, usize::MAX));
        let peak = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..16)
            .map(|_| {
                let ctl = ctl.clone();
                let peak = peak.clone();
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        if let Ok(permit) = ctl.try_admit(0, None) {
                            let seen = ctl.in_flight();
                            peak.fetch_max(seen, Ordering::SeqCst);
                            assert!(seen <= cap, "cap breached: {seen}");
                            drop(permit);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ctl.in_flight(), 0);
        assert!(peak.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn deadline_scope_nests_and_restores() {
        assert_eq!(current_deadline(), None);
        let outer = Instant::now() + Duration::from_secs(10);
        {
            let _outer = DeadlineScope::enter(Some(outer));
            assert_eq!(current_deadline(), Some(outer));
            let inner = Instant::now() + Duration::from_secs(1);
            {
                let _inner = DeadlineScope::enter(Some(inner));
                assert_eq!(current_deadline(), Some(inner));
            }
            assert_eq!(current_deadline(), Some(outer));
        }
        assert_eq!(current_deadline(), None);
    }

    #[test]
    fn wire_budget_round_trips() {
        let deadline = Instant::now() + Duration::from_millis(500);
        let ms = remaining_ms(deadline).expect("budget remains");
        assert!(ms > 0 && ms <= 500, "{ms}");
        let rehydrated = deadline_in_ms(ms);
        // The rehydrated deadline is within transit slop of the original.
        let slop = Duration::from_millis(50);
        assert!(rehydrated <= deadline + slop);
        let expired = Instant::now() - Duration::from_millis(1);
        assert_eq!(remaining_ms(expired), None);
    }

    #[test]
    fn keyed_guaranteed_shares_are_always_admitted() {
        let ctl = KeyedAdmissionController::new(
            KeyedLoadShedPolicy::fair(4)
                .with_weight("hot", 1)
                .with_weight("cold", 1),
        );
        // Hot takes everything it can get.
        let mut hot = Vec::new();
        while let Ok(p) = ctl.try_admit("hot", None) {
            hot.push(p);
        }
        assert_eq!(
            ctl.in_flight("hot"),
            2,
            "hot stops at its share + 0 reserve"
        );
        // Cold's guarantee is untouched: both its permits admit.
        let c1 = ctl.try_admit("cold", None).expect("cold share 1");
        let _c2 = ctl.try_admit("cold", None).expect("cold share 2");
        assert_eq!(ctl.total_in_flight(), 4);
        assert!(ctl.try_admit("cold", None).is_err(), "global cap reached");
        drop(c1);
        assert!(ctl.try_admit("cold", None).is_ok(), "slot freed by drop");
    }

    #[test]
    fn keyed_borrowing_uses_idle_capacity_but_not_the_reserve() {
        let ctl = KeyedAdmissionController::new(
            KeyedLoadShedPolicy::fair(6)
                .with_weight("a", 1)
                .with_weight("b", 1),
        );
        // b holds one of its three guaranteed permits; reserve is 2, so
        // the total may grow to 6 - 2 = 4, leaving a room for three.
        let _b = ctl.try_admit("b", None).unwrap();
        let mut a = Vec::new();
        while let Ok(p) = ctl.try_admit("a", None) {
            a.push(p);
        }
        assert_eq!(ctl.in_flight("a"), 3);
        assert_eq!(ctl.total_in_flight(), 4);
        // Once b releases, the freed reserve is still b's: a remains
        // capped until shares genuinely free up.
        drop(_b);
        assert!(ctl.try_admit("a", None).is_err());
    }

    #[test]
    fn keyed_new_tenants_reapportion_shares() {
        let ctl = KeyedAdmissionController::new(KeyedLoadShedPolicy::fair(6));
        let _x = ctl.try_admit("x", None).unwrap();
        assert_eq!(ctl.guaranteed_share("x"), 6, "alone, x owns the cap");
        let _y = ctl.try_admit("y", None).unwrap();
        assert_eq!(ctl.guaranteed_share("x"), 3, "a second tenant halves it");
        assert_eq!(ctl.guaranteed_share("y"), 3);
    }

    #[test]
    fn keyed_retry_hint_scales_with_tenant_pressure() {
        let ctl = KeyedAdmissionController::new(
            KeyedLoadShedPolicy::fair(4)
                .with_weight("hog", 1)
                .with_weight("meek", 3)
                .with_retry_after(Duration::from_millis(50)),
        );
        let mut held = Vec::new();
        loop {
            match ctl.try_admit("hog", None) {
                Ok(p) => held.push(p),
                Err(WspError::Overloaded { retry_after_ms }) => {
                    let hog_hint = retry_after_ms.unwrap();
                    assert!(
                        hog_hint >= 100,
                        "an over-share tenant is told to back off harder: {hog_hint}"
                    );
                    break;
                }
                Err(e) => panic!("{e:?}"),
            }
        }
        // A shed caused by global pressure keeps the base hint.
        let mut meek = Vec::new();
        while let Ok(p) = ctl.try_admit("meek", None) {
            meek.push(p);
        }
        match ctl.try_admit("meek", None) {
            Err(WspError::Overloaded { retry_after_ms }) => {
                assert_eq!(retry_after_ms, Some(50));
            }
            other => panic!("expected global-cap shed, got {other:?}"),
        }
    }

    #[test]
    fn keyed_expired_deadline_sheds_and_draining_refuses() {
        let ctl = KeyedAdmissionController::new(KeyedLoadShedPolicy::fair(8));
        let expired = Instant::now() - Duration::from_millis(1);
        assert!(ctl.try_admit("t", Some(expired)).is_err());
        ctl.start_draining();
        assert!(ctl.is_draining());
        assert!(ctl.try_admit("t", None).is_err());
        ctl.stop_draining();
        let permit = ctl.try_admit("t", None).unwrap();
        drop(permit);
        assert_eq!(ctl.await_idle(Instant::now() + Duration::from_secs(1)), 0);
    }

    #[test]
    fn keyed_concurrent_floods_never_breach_either_cap() {
        let ctl = KeyedAdmissionController::new(
            KeyedLoadShedPolicy::fair(8)
                .with_weight("a", 1)
                .with_weight("b", 1)
                .with_tenant_cap(6),
        );
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let ctl = ctl.clone();
                std::thread::spawn(move || {
                    let tenant = if i % 2 == 0 { "a" } else { "b" };
                    for _ in 0..300 {
                        if let Ok(permit) = ctl.try_admit(tenant, None) {
                            assert!(ctl.total_in_flight() <= 8);
                            assert!(ctl.in_flight(tenant) <= 6);
                            drop(permit);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ctl.total_in_flight(), 0);
    }

    #[test]
    fn keyed_per_tenant_shed_counters_move() {
        let t = telemetry::global();
        let before = t.counter("admission.tenant.noisy.shed").get();
        let ctl = KeyedAdmissionController::new(KeyedLoadShedPolicy::fair(1));
        let _held = ctl.try_admit("noisy", None).unwrap();
        assert!(ctl.try_admit("noisy", None).is_err());
        assert!(t.counter("admission.tenant.noisy.shed").get() > before);
    }

    #[test]
    fn keyed_tenant_population_is_bounded_by_the_policy_cap() {
        let ctl = KeyedAdmissionController::new(KeyedLoadShedPolicy::fair(8).with_max_tenants(2));
        let _a = ctl.try_admit("a", None).unwrap();
        let _b = ctl.try_admit("b", None).unwrap();
        // A flood of junk tenant names must not grow the interner.
        for i in 0..100 {
            let _ = ctl.try_admit(&format!("junk-{i}"), None);
        }
        let tenants = ctl.tenants();
        assert_eq!(
            tenants.len(),
            3,
            "a, b and the overflow bucket only: {tenants:?}"
        );
        assert!(tenants.contains(&ANONYMOUS_TENANT.to_owned()));
        // Junk names own no slot of their own, and the real tenants'
        // guarantees are not diluted below the three-way split.
        assert_eq!(ctl.guaranteed_share("junk-0"), 0);
        assert!(ctl.guaranteed_share("a") >= 2);
        assert!(ctl.guaranteed_share("b") >= 2);
    }

    #[test]
    fn keyed_overflow_tenants_share_the_anonymous_slot() {
        let ctl = KeyedAdmissionController::new(KeyedLoadShedPolicy::fair(4).with_max_tenants(1));
        let _a = ctl.try_admit("a", None).unwrap();
        let p = ctl.try_admit("flood-1", None).unwrap();
        assert_eq!(
            ctl.in_flight(ANONYMOUS_TENANT),
            1,
            "overflow permits are accounted to the shared bucket"
        );
        let _q = ctl.try_admit("flood-2", None).unwrap();
        assert_eq!(ctl.in_flight(ANONYMOUS_TENANT), 2);
        drop(p);
        assert_eq!(ctl.in_flight(ANONYMOUS_TENANT), 1);
    }

    #[test]
    fn keyed_junk_tenant_sheds_count_against_the_anonymous_bucket() {
        let t = telemetry::global();
        let prefix = "admission.bucket.test";
        let ctl = KeyedAdmissionController::new(
            KeyedLoadShedPolicy::fair(1)
                .with_max_tenants(1)
                .with_counter_prefix(prefix),
        );
        let _held = ctl.try_admit("real", None).unwrap();
        let before = t.counter(format!("{prefix}.anonymous.shed")).get();
        assert!(ctl.try_admit("junk-name", None).is_err());
        assert!(
            t.counter(format!("{prefix}.anonymous.shed")).get() > before,
            "the shed series is named by the interned bucket"
        );
        assert_eq!(
            t.counter(format!("{prefix}.junk-name.shed")).get(),
            0,
            "junk names must not mint fresh metric series"
        );
    }

    #[test]
    fn busy_fault_reason_round_trips() {
        let reason = busy_fault_reason(Duration::from_millis(250));
        assert_eq!(parse_busy_fault(&reason), Some(Some(250)));
        assert_eq!(parse_busy_fault(BUSY_FAULT_PREFIX), Some(None));
        assert_eq!(parse_busy_fault("service X is not deployed"), None);
    }
}

//! Server-side overload protection: admission control and deadline
//! propagation.
//!
//! The paper's container-less hosting claim (Section IV.A) means the
//! application *is* the server — there is no container in front of it
//! to absorb a burst. This module is the host-side half of the
//! resilience story started by the client retry loop: a
//! [`LoadShedPolicy`] bounds how much work a peer accepts, an
//! [`AdmissionController`] enforces it with an O(1) check per request,
//! and a shed answers *immediately* with [`WspError::Overloaded`] plus
//! a `Retry-After` hint — so a retry storm backs off instead of
//! amplifying the overload.
//!
//! Deadline propagation is the other half: the client's per-call
//! deadline crosses the wire as [`DEADLINE_HEADER`] (remaining budget
//! in milliseconds — a *duration*, not a wall-clock timestamp, so
//! unsynchronised peer clocks cannot corrupt it), is rehydrated
//! server-side into a [`DeadlineScope`], and work whose deadline has
//! already expired is shed at dequeue time — there is no point
//! computing a response nobody is waiting for.

//! Every admission decision lives in the pure
//! [`crate::machines::admission::AdmissionMachine`]; this module is its
//! runtime shell. The shell gathers the *observations* (queue depth,
//! deadline expiry, the sampled watermark verdict), ships them inside
//! an [`AdmissionEvent::Admit`], and translates the effects back into
//! permits, faults and counters. `wsp-check` exhaustively explores the
//! machine; the tests here exercise the shell around it.

use crate::error::WspError;
use crate::machines::admission::{
    AdmissionEffect, AdmissionEvent, AdmissionMachine, AdmissionState, ShedReason,
};
use crate::telemetry::{self, Counter};
use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wsp_simnet::Machine;

/// Request header carrying the caller's *remaining* call budget in
/// milliseconds. Relative (a duration) rather than absolute so clock
/// skew between peers cannot manufacture or destroy budget.
pub const DEADLINE_HEADER: &str = "X-WSP-Deadline";

/// Response header carrying the server's retry hint in milliseconds —
/// finer-grained companion to the standard whole-second `Retry-After`.
pub const RETRY_AFTER_MS_HEADER: &str = "X-WSP-Retry-After-Ms";

/// Reason prefix of the P2PS busy fault. A receiver fault whose reason
/// starts with this is a load-shed, not an application error; the
/// suffix carries the retry hint as `retry-after-ms=<n>`.
pub const BUSY_FAULT_PREFIX: &str = "wsp:overloaded";

/// SOAP header block (namespace-less local name) carrying the
/// remaining deadline budget over the P2PS binding.
pub const DEADLINE_SOAP_HEADER: &str = "Deadline";

/// How often the (comparatively expensive) queue-wait watermark check
/// re-reads the histogram: every 2^6 = 64 admissions. Between samples
/// the cached verdict is used, keeping the admission check O(1).
const WATERMARK_SAMPLE_SHIFT: u64 = 6;

/// What a host is willing to accept before shedding.
///
/// The default policy is effectively unlimited — exactly the
/// pre-overload-protection behaviour, so nothing sheds until a policy
/// is configured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadShedPolicy {
    /// Shed when the dispatch queue already holds this many jobs.
    /// `usize::MAX` disables the check.
    pub max_queue_depth: usize,
    /// Shed when this many requests are already in flight (admitted
    /// and not yet answered). `usize::MAX` disables the check.
    pub max_in_flight: usize,
    /// Shed when the p99 dispatch queue wait (from the telemetry
    /// histograms, sampled periodically) exceeds this — the earliest
    /// smoke signal of saturation, firing before the queue is full.
    pub queue_wait_watermark: Option<Duration>,
    /// The `Retry-After` hint attached to every shed.
    pub retry_after: Duration,
}

impl Default for LoadShedPolicy {
    fn default() -> Self {
        LoadShedPolicy::unlimited()
    }
}

impl LoadShedPolicy {
    /// Accept everything (the legacy behaviour).
    pub fn unlimited() -> Self {
        LoadShedPolicy {
            max_queue_depth: usize::MAX,
            max_in_flight: usize::MAX,
            queue_wait_watermark: None,
            retry_after: Duration::from_millis(100),
        }
    }

    /// A bounded policy: at most `in_flight` concurrent requests and
    /// `queue_depth` queued jobs, 100 ms retry hint.
    pub fn bounded(in_flight: usize, queue_depth: usize) -> Self {
        LoadShedPolicy {
            max_queue_depth: queue_depth,
            max_in_flight: in_flight,
            queue_wait_watermark: None,
            retry_after: Duration::from_millis(100),
        }
    }

    pub fn with_retry_after(mut self, hint: Duration) -> Self {
        self.retry_after = hint;
        self
    }

    pub fn with_queue_wait_watermark(mut self, watermark: Duration) -> Self {
        self.queue_wait_watermark = Some(watermark);
        self
    }

    /// Does this policy ever shed?
    pub fn is_limiting(&self) -> bool {
        self.max_queue_depth != usize::MAX
            || self.max_in_flight != usize::MAX
            || self.queue_wait_watermark.is_some()
    }
}

/// Enforces a [`LoadShedPolicy`] for one host. Cheap to clone (all
/// state behind one `Arc`); both bindings of a peer may share one
/// controller so the in-flight cap is per-peer, not per-transport.
#[derive(Clone)]
pub struct AdmissionController {
    inner: Arc<AdmissionInner>,
}

struct AdmissionInner {
    policy: LoadShedPolicy,
    machine: AdmissionMachine,
    /// All protocol state; every transition steps the machine under
    /// this mutex, so concurrent admissions serialise and the cap is
    /// never transiently breached.
    state: Mutex<AdmissionState>,
    admissions: AtomicU64,
    /// Cached verdict of the periodic watermark sample.
    over_watermark: AtomicBool,
    admitted: Arc<Counter>,
    shed: Arc<Counter>,
    shed_expired: Arc<Counter>,
}

impl AdmissionController {
    pub fn new(policy: LoadShedPolicy) -> Self {
        let registry = telemetry::global();
        let machine = AdmissionMachine {
            max_in_flight: policy.max_in_flight as u64,
            max_queue_depth: policy.max_queue_depth as u64,
        };
        let state = Mutex::new(machine.initial());
        AdmissionController {
            inner: Arc::new(AdmissionInner {
                policy,
                machine,
                state,
                admissions: AtomicU64::new(0),
                over_watermark: AtomicBool::new(false),
                admitted: registry.counter("admission.admitted"),
                shed: registry.counter("admission.shed"),
                shed_expired: registry.counter("admission.shed_expired"),
            }),
        }
    }

    fn step(&self, event: AdmissionEvent) -> Vec<AdmissionEffect> {
        let mut state = self.inner.state.lock();
        let (next, effects) = self.inner.machine.step(&state, &event);
        *state = next;
        effects
    }

    pub fn policy(&self) -> &LoadShedPolicy {
        &self.inner.policy
    }

    /// Requests currently admitted and unanswered.
    pub fn in_flight(&self) -> usize {
        self.inner.state.lock().in_flight as usize
    }

    /// Enter drain mode: every subsequent admission is refused (with
    /// the retry hint) while already-admitted work runs to completion.
    pub fn start_draining(&self) {
        self.step(AdmissionEvent::BeginDrain);
    }

    pub fn stop_draining(&self) {
        self.step(AdmissionEvent::EndDrain);
    }

    pub fn is_draining(&self) -> bool {
        self.inner.state.lock().draining
    }

    fn overloaded(&self) -> WspError {
        self.inner.shed.incr();
        WspError::Overloaded {
            retry_after_ms: Some(self.inner.policy.retry_after.as_millis() as u64),
        }
    }

    /// The shell's half of the watermark check: sample the p99 queue
    /// wait every 2^[`WATERMARK_SAMPLE_SHIFT`] admissions, cache the
    /// verdict, and hand the machine a plain boolean observation.
    fn observe_watermark(&self) -> bool {
        let Some(watermark) = self.inner.policy.queue_wait_watermark else {
            return false;
        };
        let n = self.inner.admissions.fetch_add(1, Ordering::Relaxed);
        if n & ((1 << WATERMARK_SAMPLE_SHIFT) - 1) == 0 {
            let p99_us = telemetry::global()
                .histogram("dispatch.queue_wait_us")
                .snapshot()
                .p99();
            let over = Duration::from_micros(p99_us) > watermark;
            self.inner.over_watermark.store(over, Ordering::Relaxed);
        }
        self.inner.over_watermark.load(Ordering::Relaxed)
    }

    /// Admit one request or shed it. `queue_depth` is the host's
    /// current dispatch-queue depth (pass 0 when not applicable);
    /// `deadline` is the caller's propagated deadline, shed immediately
    /// when already expired (the caller has given up — answering
    /// quickly matters more than answering at all).
    pub fn try_admit(
        &self,
        queue_depth: usize,
        deadline: Option<Instant>,
    ) -> Result<AdmissionPermit, WspError> {
        let event = AdmissionEvent::Admit {
            queue_depth: queue_depth as u64,
            deadline_expired: deadline.is_some_and(|d| Instant::now() >= d),
            over_watermark: self.observe_watermark(),
        };
        match self.step(event).first() {
            Some(AdmissionEffect::Admitted) => {
                self.inner.admitted.incr();
                Ok(AdmissionPermit {
                    controller: self.clone(),
                })
            }
            Some(AdmissionEffect::Shed(reason)) => {
                if *reason == ShedReason::DeadlineExpired {
                    self.inner.shed_expired.incr();
                }
                Err(self.overloaded())
            }
            other => unreachable!("Admit event produced {other:?}"),
        }
    }

    /// Block until all admitted work has finished or `deadline` passes.
    /// Returns the number of requests still in flight (0 on success).
    pub fn await_idle(&self, deadline: Instant) -> usize {
        loop {
            let in_flight = self.in_flight();
            if in_flight == 0 || Instant::now() >= deadline {
                return in_flight;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// RAII proof of admission: holds one in-flight slot, released on drop
/// (success, fault and panic paths alike).
pub struct AdmissionPermit {
    controller: AdmissionController,
}

impl std::fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit")
            .field("in_flight", &self.controller.in_flight())
            .finish()
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let effects = self.controller.step(AdmissionEvent::Release);
        debug_assert!(
            !effects.contains(&AdmissionEffect::PermitUnderflow),
            "permit released with nothing in flight"
        );
    }
}

// --- deadline propagation ----------------------------------------------------

thread_local! {
    static CURRENT_DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Scopes a call deadline to the current thread, mirroring
/// [`crate::telemetry::CorrelationScope`]: the client retry loop enters
/// one around each attempt so transports can serialise the remaining
/// budget, and a server enters one around handler execution so nested
/// outbound calls inherit the caller's budget. Restores the previous
/// deadline on drop, so scopes nest.
pub struct DeadlineScope {
    previous: Option<Instant>,
}

impl DeadlineScope {
    pub fn enter(deadline: Option<Instant>) -> DeadlineScope {
        let previous = CURRENT_DEADLINE.with(|cell| cell.replace(deadline));
        DeadlineScope { previous }
    }
}

impl Drop for DeadlineScope {
    fn drop(&mut self) {
        CURRENT_DEADLINE.with(|cell| cell.set(self.previous));
    }
}

/// The deadline scoped to the current thread, if any.
pub fn current_deadline() -> Option<Instant> {
    CURRENT_DEADLINE.with(|cell| cell.get())
}

/// Remaining budget of `deadline` in whole milliseconds — what goes on
/// the wire. `None` when already expired (send nothing; the server
/// would only shed it, and the local attempt is about to time out
/// anyway).
pub fn remaining_ms(deadline: Instant) -> Option<u64> {
    let now = Instant::now();
    if now >= deadline {
        return None;
    }
    Some((deadline - now).as_millis().max(1) as u64)
}

/// Rehydrate a wire budget into a local deadline.
pub fn deadline_in_ms(ms: u64) -> Instant {
    Instant::now() + Duration::from_millis(ms)
}

/// Render the busy-fault reason carried by the P2PS binding.
pub fn busy_fault_reason(retry_after: Duration) -> String {
    format!(
        "{BUSY_FAULT_PREFIX} retry-after-ms={}",
        retry_after.as_millis()
    )
}

/// Parse a fault reason: `Some(hint)` when it is a busy fault.
pub fn parse_busy_fault(reason: &str) -> Option<Option<u64>> {
    let rest = reason.strip_prefix(BUSY_FAULT_PREFIX)?;
    Some(
        rest.trim()
            .strip_prefix("retry-after-ms=")
            .and_then(|ms| ms.trim().parse().ok()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn unlimited_policy_admits_everything() {
        let ctl = AdmissionController::new(LoadShedPolicy::unlimited());
        let mut permits = Vec::new();
        for depth in 0..100 {
            permits.push(ctl.try_admit(depth, None).expect("admit"));
        }
        assert_eq!(ctl.in_flight(), 100);
        drop(permits);
        assert_eq!(ctl.in_flight(), 0);
    }

    #[test]
    fn in_flight_cap_sheds_and_recovers() {
        let ctl = AdmissionController::new(LoadShedPolicy::bounded(2, usize::MAX));
        let a = ctl.try_admit(0, None).expect("first");
        let _b = ctl.try_admit(0, None).expect("second");
        let shed = ctl.try_admit(0, None).expect_err("third must shed");
        assert!(
            matches!(
                shed,
                WspError::Overloaded {
                    retry_after_ms: Some(100)
                }
            ),
            "{shed:?}"
        );
        drop(a);
        ctl.try_admit(0, None).expect("slot freed by drop");
    }

    #[test]
    fn queue_depth_cap_sheds() {
        let ctl = AdmissionController::new(LoadShedPolicy::bounded(usize::MAX, 4));
        assert!(ctl.try_admit(3, None).is_ok());
        assert!(matches!(
            ctl.try_admit(4, None),
            Err(WspError::Overloaded { .. })
        ));
    }

    #[test]
    fn expired_deadline_is_shed_on_arrival() {
        let ctl = AdmissionController::new(LoadShedPolicy::unlimited());
        let expired = Instant::now() - Duration::from_millis(1);
        assert!(matches!(
            ctl.try_admit(0, Some(expired)),
            Err(WspError::Overloaded { .. })
        ));
        let live = Instant::now() + Duration::from_secs(5);
        assert!(ctl.try_admit(0, Some(live)).is_ok());
    }

    #[test]
    fn draining_refuses_new_work_but_keeps_permits() {
        let ctl = AdmissionController::new(LoadShedPolicy::unlimited());
        let permit = ctl.try_admit(0, None).expect("before drain");
        ctl.start_draining();
        assert!(matches!(
            ctl.try_admit(0, None),
            Err(WspError::Overloaded { .. })
        ));
        assert_eq!(ctl.in_flight(), 1, "in-flight work unaffected by drain");
        drop(permit);
        let idle_by = Instant::now() + Duration::from_secs(1);
        assert_eq!(ctl.await_idle(idle_by), 0);
        ctl.stop_draining();
        assert!(ctl.try_admit(0, None).is_ok());
    }

    #[test]
    fn concurrent_admissions_never_exceed_the_cap() {
        let cap = 8;
        let ctl = AdmissionController::new(LoadShedPolicy::bounded(cap, usize::MAX));
        let peak = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..16)
            .map(|_| {
                let ctl = ctl.clone();
                let peak = peak.clone();
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        if let Ok(permit) = ctl.try_admit(0, None) {
                            let seen = ctl.in_flight();
                            peak.fetch_max(seen, Ordering::SeqCst);
                            assert!(seen <= cap, "cap breached: {seen}");
                            drop(permit);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ctl.in_flight(), 0);
        assert!(peak.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn deadline_scope_nests_and_restores() {
        assert_eq!(current_deadline(), None);
        let outer = Instant::now() + Duration::from_secs(10);
        {
            let _outer = DeadlineScope::enter(Some(outer));
            assert_eq!(current_deadline(), Some(outer));
            let inner = Instant::now() + Duration::from_secs(1);
            {
                let _inner = DeadlineScope::enter(Some(inner));
                assert_eq!(current_deadline(), Some(inner));
            }
            assert_eq!(current_deadline(), Some(outer));
        }
        assert_eq!(current_deadline(), None);
    }

    #[test]
    fn wire_budget_round_trips() {
        let deadline = Instant::now() + Duration::from_millis(500);
        let ms = remaining_ms(deadline).expect("budget remains");
        assert!(ms > 0 && ms <= 500, "{ms}");
        let rehydrated = deadline_in_ms(ms);
        // The rehydrated deadline is within transit slop of the original.
        let slop = Duration::from_millis(50);
        assert!(rehydrated <= deadline + slop);
        let expired = Instant::now() - Duration::from_millis(1);
        assert_eq!(remaining_ms(expired), None);
    }

    #[test]
    fn busy_fault_reason_round_trips() {
        let reason = busy_fault_reason(Duration::from_millis(250));
        assert_eq!(parse_busy_fault(&reason), Some(Some(250)));
        assert_eq!(parse_busy_fault(BUSY_FAULT_PREFIX), Some(None));
        assert_eq!(parse_busy_fault("service X is not deployed"), None);
    }
}

//! Per-endpoint health tracking: circuit breakers.
//!
//! Invoking an endpoint that has just failed N times in a row mostly
//! wastes the caller's deadline budget — on the paper's "unreliable"
//! P2P substrate a gone peer stays gone for a while. Each endpoint
//! therefore gets a [`CircuitBreaker`] with the classic three states:
//!
//! * **Closed** — requests flow; consecutive failures are counted.
//! * **Open** — after `failure_threshold` consecutive failures the
//!   breaker rejects immediately (callers see
//!   [`crate::WspError::CircuitOpen`] and can fail over) until
//!   `cooldown` elapses.
//! * **Half-open** — after the cooldown exactly **one** probe call is
//!   admitted; its success closes the breaker, its failure re-opens it
//!   for another cooldown. Concurrent callers during the probe are
//!   rejected, so all callers observe one consistent state.
//!
//! All methods take an explicit `now: Instant` so transitions are unit
//! testable without sleeping.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning for the per-endpoint breakers.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before allowing a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(5),
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// Outcome of asking the breaker for permission to attempt a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed: go ahead.
    Allowed,
    /// Half-open: go ahead, and this attempt is *the* probe.
    Probe,
    /// Open (or half-open with the probe already taken): do not call.
    Rejected,
}

#[derive(Debug)]
struct BreakerInner {
    consecutive_failures: u32,
    /// Set while open / half-open: when the breaker tripped.
    opened_at: Option<Instant>,
    /// A half-open probe has been admitted and has not yet reported.
    probe_in_flight: bool,
}

/// One endpoint's circuit breaker. Thread-safe; all transitions happen
/// under one mutex so concurrent callers observe a consistent state.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                consecutive_failures: 0,
                opened_at: None,
                probe_in_flight: false,
            }),
        }
    }

    /// The state an observer at `now` sees.
    pub fn state(&self, now: Instant) -> BreakerState {
        let inner = self.inner.lock();
        match inner.opened_at {
            None => BreakerState::Closed,
            Some(at) if now.duration_since(at) >= self.config.cooldown => BreakerState::HalfOpen,
            Some(_) => BreakerState::Open,
        }
    }

    /// Ask to attempt a call at `now`.
    pub fn try_acquire(&self, now: Instant) -> Admission {
        let mut inner = self.inner.lock();
        match inner.opened_at {
            None => Admission::Allowed,
            Some(at) if now.duration_since(at) >= self.config.cooldown => {
                if inner.probe_in_flight {
                    Admission::Rejected
                } else {
                    inner.probe_in_flight = true;
                    Admission::Probe
                }
            }
            Some(_) => Admission::Rejected,
        }
    }

    /// Report a successful attempt. Returns `true` if this success
    /// *closed* a tripped breaker (the half-open probe succeeded).
    pub fn on_success(&self, _now: Instant) -> bool {
        let mut inner = self.inner.lock();
        let recovered = inner.opened_at.is_some();
        inner.opened_at = None;
        inner.probe_in_flight = false;
        inner.consecutive_failures = 0;
        recovered
    }

    /// Report a failed attempt. Returns `true` if this failure tripped
    /// the breaker (closed → open, or a failed half-open probe
    /// re-opening).
    pub fn on_failure(&self, now: Instant) -> bool {
        let mut inner = self.inner.lock();
        if inner.opened_at.is_some() {
            // A failure while open/half-open (the probe, or a straggler
            // from before the trip) restarts the cooldown.
            let was_probe = inner.probe_in_flight;
            inner.probe_in_flight = false;
            inner.opened_at = Some(now);
            return was_probe;
        }
        inner.consecutive_failures += 1;
        if inner.consecutive_failures >= self.config.failure_threshold {
            inner.opened_at = Some(now);
            inner.probe_in_flight = false;
            return true;
        }
        false
    }

    /// Consecutive failures recorded while closed.
    pub fn consecutive_failures(&self) -> u32 {
        self.inner.lock().consecutive_failures
    }
}

/// The peer's endpoint-health registry: one lazily created breaker per
/// endpoint URI, shared by every caller that consults it.
#[derive(Default)]
pub struct EndpointHealth {
    config: BreakerConfig,
    breakers: RwLock<HashMap<String, Arc<CircuitBreaker>>>,
}

impl EndpointHealth {
    pub fn new(config: BreakerConfig) -> Self {
        EndpointHealth {
            config,
            breakers: RwLock::new(HashMap::new()),
        }
    }

    /// The breaker for `endpoint`, created closed on first touch.
    pub fn breaker(&self, endpoint: &str) -> Arc<CircuitBreaker> {
        if let Some(existing) = self.breakers.read().get(endpoint) {
            return existing.clone();
        }
        let mut map = self.breakers.write();
        map.entry(endpoint.to_owned())
            .or_insert_with(|| Arc::new(CircuitBreaker::new(self.config.clone())))
            .clone()
    }

    /// Endpoints with a breaker, and the state each is in at `now`.
    pub fn snapshot(&self, now: Instant) -> Vec<(String, BreakerState)> {
        let mut all: Vec<(String, BreakerState)> = self
            .breakers
            .read()
            .iter()
            .map(|(endpoint, breaker)| (endpoint.clone(), breaker.state(now)))
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Is `endpoint` currently admitting calls (closed, or half-open
    /// with the probe slot free)? Does not consume the probe slot.
    pub fn is_admitting(&self, endpoint: &str, now: Instant) -> bool {
        match self.breaker(endpoint).state(now) {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => !self.breaker(endpoint).inner.lock().probe_in_flight,
            BreakerState::Open => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn quick_config() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(quick_config());
        let t0 = Instant::now();
        assert!(!b.on_failure(t0));
        assert!(!b.on_failure(t0));
        assert_eq!(b.state(t0), BreakerState::Closed);
        assert!(b.on_failure(t0), "third failure trips");
        assert_eq!(b.state(t0), BreakerState::Open);
        assert_eq!(b.try_acquire(t0), Admission::Rejected);
    }

    #[test]
    fn success_resets_the_failure_count() {
        let b = CircuitBreaker::new(quick_config());
        let t0 = Instant::now();
        b.on_failure(t0);
        b.on_failure(t0);
        assert!(!b.on_success(t0), "success while closed is not a recovery");
        assert_eq!(b.consecutive_failures(), 0);
        b.on_failure(t0);
        b.on_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Closed, "count restarted");
    }

    #[test]
    fn half_open_probe_success_closes() {
        let b = CircuitBreaker::new(quick_config());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let after_cooldown = t0 + Duration::from_millis(150);
        assert_eq!(b.state(after_cooldown), BreakerState::HalfOpen);
        assert_eq!(b.try_acquire(after_cooldown), Admission::Probe);
        assert!(b.on_success(after_cooldown), "probe success recovers");
        assert_eq!(b.state(after_cooldown), BreakerState::Closed);
        assert_eq!(b.try_acquire(after_cooldown), Admission::Allowed);
    }

    #[test]
    fn half_open_probe_failure_reopens_for_another_cooldown() {
        let b = CircuitBreaker::new(quick_config());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let probe_at = t0 + Duration::from_millis(150);
        assert_eq!(b.try_acquire(probe_at), Admission::Probe);
        assert!(b.on_failure(probe_at), "failed probe re-trips");
        assert_eq!(b.state(probe_at), BreakerState::Open);
        // The new cooldown runs from the failed probe, not the old trip.
        let mid = probe_at + Duration::from_millis(60);
        assert_eq!(b.try_acquire(mid), Admission::Rejected);
        let later = probe_at + Duration::from_millis(120);
        assert_eq!(b.try_acquire(later), Admission::Probe);
    }

    #[test]
    fn only_one_probe_admitted_while_half_open() {
        let b = CircuitBreaker::new(quick_config());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let probe_at = t0 + Duration::from_millis(150);
        assert_eq!(b.try_acquire(probe_at), Admission::Probe);
        assert_eq!(
            b.try_acquire(probe_at),
            Admission::Rejected,
            "second caller during the probe is rejected"
        );
    }

    #[test]
    fn concurrent_callers_observe_consistent_state() {
        // Many threads hammer a half-open breaker: exactly one gets the
        // probe, everyone else is rejected — never two probes, never an
        // Allowed.
        let b = Arc::new(CircuitBreaker::new(quick_config()));
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let probe_at = t0 + Duration::from_millis(150);
        let probes = Arc::new(AtomicUsize::new(0));
        let rejects = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..16)
            .map(|_| {
                let b = b.clone();
                let probes = probes.clone();
                let rejects = rejects.clone();
                std::thread::spawn(move || match b.try_acquire(probe_at) {
                    Admission::Probe => {
                        probes.fetch_add(1, Ordering::SeqCst);
                    }
                    Admission::Rejected => {
                        rejects.fetch_add(1, Ordering::SeqCst);
                    }
                    Admission::Allowed => panic!("half-open breaker must not allow freely"),
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(probes.load(Ordering::SeqCst), 1);
        assert_eq!(rejects.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn two_threads_racing_the_half_open_transition_admit_exactly_one_probe() {
        // The sharpest version of the probe race: two threads released
        // by a barrier at the same instant, both asking the breaker the
        // moment it turns half-open. Repeated to give the race a real
        // chance of interleaving both ways; each round exactly one
        // thread must win the probe slot.
        for round in 0..100 {
            let b = Arc::new(CircuitBreaker::new(quick_config()));
            let t0 = Instant::now();
            for _ in 0..3 {
                b.on_failure(t0);
            }
            let probe_at = t0 + Duration::from_millis(150);
            let barrier = Arc::new(std::sync::Barrier::new(2));
            let threads: Vec<_> = (0..2)
                .map(|_| {
                    let b = b.clone();
                    let barrier = barrier.clone();
                    std::thread::spawn(move || {
                        barrier.wait();
                        b.try_acquire(probe_at)
                    })
                })
                .collect();
            let outcomes: Vec<Admission> = threads.into_iter().map(|t| t.join().unwrap()).collect();
            let probes = outcomes.iter().filter(|a| **a == Admission::Probe).count();
            let rejects = outcomes
                .iter()
                .filter(|a| **a == Admission::Rejected)
                .count();
            assert_eq!(
                probes, 1,
                "round {round}: exactly one probe, got {outcomes:?}"
            );
            assert_eq!(rejects, 1, "round {round}: the loser is rejected");
        }
    }

    #[test]
    fn registry_shares_one_breaker_per_endpoint() {
        let health = EndpointHealth::new(quick_config());
        let a1 = health.breaker("http://a/S");
        let a2 = health.breaker("http://a/S");
        let b = health.breaker("http://b/S");
        assert!(Arc::ptr_eq(&a1, &a2));
        assert!(!Arc::ptr_eq(&a1, &b));
        let t0 = Instant::now();
        for _ in 0..3 {
            a1.on_failure(t0);
        }
        assert_eq!(a2.state(t0), BreakerState::Open, "state is shared");
        assert!(!health.is_admitting("http://a/S", t0));
        assert!(health.is_admitting("http://b/S", t0));
        let snap = health.snapshot(t0);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], ("http://a/S".to_string(), BreakerState::Open));
    }
}

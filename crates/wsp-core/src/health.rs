//! Per-endpoint health tracking: circuit breakers.
//!
//! Invoking an endpoint that has just failed N times in a row mostly
//! wastes the caller's deadline budget — on the paper's "unreliable"
//! P2P substrate a gone peer stays gone for a while. Each endpoint
//! therefore gets a [`CircuitBreaker`] with the classic three states:
//!
//! * **Closed** — requests flow; consecutive failures are counted.
//! * **Open** — after `failure_threshold` consecutive failures the
//!   breaker rejects immediately (callers see
//!   [`crate::WspError::CircuitOpen`] and can fail over) until
//!   `cooldown` elapses.
//! * **Half-open** — after the cooldown exactly **one** probe call is
//!   admitted; its success closes the breaker, its failure re-opens it
//!   for another cooldown. Concurrent callers during the probe are
//!   rejected, so all callers observe one consistent state.
//!
//! All methods take an explicit `now: Instant` so transitions are unit
//! testable without sleeping.
//!
//! Every transition decision lives in the pure
//! [`crate::machines::breaker::BreakerMachine`]; this module is its
//! runtime shell. The shell converts `Instant`s to logical ticks
//! (nanoseconds since a per-breaker epoch), feeds events through
//! [`wsp_simnet::Machine::step`] under one mutex, and translates the
//! returned effects back into the boolean/`Admission` results the
//! callers expect. `wsp-check` exhaustively explores the machine; the
//! tests here exercise the shell around it.

use crate::machines::breaker::{
    Admit, BreakerEffect, BreakerEvent, BreakerMachine, BreakerState as MachineState, Phase,
};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wsp_simnet::Machine;

/// Tuning for the per-endpoint breakers.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before allowing a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(5),
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// Outcome of asking the breaker for permission to attempt a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed: go ahead.
    Allowed,
    /// Half-open: go ahead, and this attempt is *the* probe.
    Probe,
    /// Open (or half-open with the probe already taken): do not call.
    Rejected,
}

/// One endpoint's circuit breaker: the runtime shell around
/// [`BreakerMachine`]. Thread-safe; every event steps the machine under
/// one mutex so concurrent callers observe a consistent state.
#[derive(Debug)]
pub struct CircuitBreaker {
    machine: BreakerMachine,
    /// Wall-clock origin for logical ticks: `Instant`s are converted to
    /// nanoseconds since this epoch before entering the pure machine.
    epoch: Instant,
    state: Mutex<MachineState>,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> Self {
        let machine = BreakerMachine {
            failure_threshold: config.failure_threshold,
            cooldown: config.cooldown.as_nanos() as u64,
        };
        let state = Mutex::new(machine.initial());
        CircuitBreaker {
            machine,
            epoch: Instant::now(),
            state,
        }
    }

    fn ticks(&self, now: Instant) -> u64 {
        now.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    fn step(&self, event: BreakerEvent) -> Vec<BreakerEffect> {
        let mut state = self.state.lock();
        let (next, effects) = self.machine.step(&state, &event);
        *state = next;
        effects
    }

    /// The state an observer at `now` sees.
    pub fn state(&self, now: Instant) -> BreakerState {
        match self.machine.phase(&self.state.lock(), self.ticks(now)) {
            Phase::Closed => BreakerState::Closed,
            Phase::Open => BreakerState::Open,
            Phase::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// Ask to attempt a call at `now`.
    pub fn try_acquire(&self, now: Instant) -> Admission {
        let effects = self.step(BreakerEvent::Acquire {
            now: self.ticks(now),
        });
        match effects.first() {
            Some(BreakerEffect::Admit(Admit::Allowed)) => Admission::Allowed,
            Some(BreakerEffect::Admit(Admit::Probe)) => Admission::Probe,
            _ => Admission::Rejected,
        }
    }

    /// Report a successful attempt. Returns `true` if this success
    /// *closed* a tripped breaker (the half-open probe succeeded).
    pub fn on_success(&self, _now: Instant) -> bool {
        self.step(BreakerEvent::Success)
            .contains(&BreakerEffect::Recovered)
    }

    /// Report a failed attempt. Returns `true` if this failure tripped
    /// the breaker (closed → open, or a failed half-open probe
    /// re-opening).
    pub fn on_failure(&self, now: Instant) -> bool {
        self.step(BreakerEvent::Failure {
            now: self.ticks(now),
        })
        .contains(&BreakerEffect::Tripped)
    }

    /// Report that an admitted half-open probe unwound (panicked)
    /// without reporting an outcome. Re-opens the breaker for a fresh
    /// cooldown instead of stranding the probe slot. Returns `true` if
    /// a probe was actually discarded.
    pub fn on_probe_aborted(&self, now: Instant) -> bool {
        self.step(BreakerEvent::ProbeAborted {
            now: self.ticks(now),
        })
        .contains(&BreakerEffect::ProbeDiscarded)
    }

    /// Consecutive failures recorded while closed.
    pub fn consecutive_failures(&self) -> u32 {
        match *self.state.lock() {
            MachineState::Closed { failures } => failures,
            MachineState::Tripped { .. } => 0,
        }
    }

    /// Is a half-open probe currently admitted and unreported?
    pub fn probe_in_flight(&self) -> bool {
        matches!(
            *self.state.lock(),
            MachineState::Tripped {
                probe_in_flight: true,
                ..
            }
        )
    }
}

/// RAII guard for an admitted half-open probe.
///
/// Armed when the breaker grants [`Admission::Probe`]; if the attempt
/// unwinds (panics) — or otherwise returns without reporting an
/// outcome — the guard's `Drop` routes a
/// [`crate::machines::breaker::BreakerEvent::ProbeAborted`] through the
/// machine, re-opening the breaker for a fresh cooldown instead of
/// stranding `probe_in_flight` and rejecting every future caller.
/// Call [`disarm`](ProbeGuard::disarm) right before reporting
/// success/failure normally.
#[must_use = "dropping immediately would abort the probe it guards"]
pub struct ProbeGuard {
    breaker: Arc<CircuitBreaker>,
    armed: bool,
}

impl ProbeGuard {
    /// Arm a guard for a probe just admitted by `breaker`.
    pub fn arm(breaker: Arc<CircuitBreaker>) -> Self {
        ProbeGuard {
            breaker,
            armed: true,
        }
    }

    /// The outcome is about to be reported through
    /// [`CircuitBreaker::on_success`]/[`on_failure`](CircuitBreaker::on_failure):
    /// the guard stands down.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for ProbeGuard {
    fn drop(&mut self) {
        if self.armed {
            self.breaker.on_probe_aborted(Instant::now());
        }
    }
}

/// The peer's endpoint-health registry: one lazily created breaker per
/// endpoint URI, shared by every caller that consults it.
#[derive(Default)]
pub struct EndpointHealth {
    config: RwLock<BreakerConfig>,
    breakers: RwLock<HashMap<String, Arc<CircuitBreaker>>>,
}

impl EndpointHealth {
    pub fn new(config: BreakerConfig) -> Self {
        EndpointHealth {
            config: RwLock::new(config),
            breakers: RwLock::new(HashMap::new()),
        }
    }

    /// Replace the config used for breakers created *from now on*.
    /// Existing breakers keep the config they were built with.
    pub fn set_config(&self, config: BreakerConfig) {
        *self.config.write() = config;
    }

    /// The breaker for `endpoint`, created closed on first touch.
    pub fn breaker(&self, endpoint: &str) -> Arc<CircuitBreaker> {
        if let Some(existing) = self.breakers.read().get(endpoint) {
            return existing.clone();
        }
        let config = self.config.read().clone();
        let mut map = self.breakers.write();
        map.entry(endpoint.to_owned())
            .or_insert_with(|| Arc::new(CircuitBreaker::new(config)))
            .clone()
    }

    /// Endpoints with a breaker, and the state each is in at `now`.
    pub fn snapshot(&self, now: Instant) -> Vec<(String, BreakerState)> {
        let mut all: Vec<(String, BreakerState)> = self
            .breakers
            .read()
            .iter()
            .map(|(endpoint, breaker)| (endpoint.clone(), breaker.state(now)))
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Is `endpoint` currently admitting calls (closed, or half-open
    /// with the probe slot free)? Does not consume the probe slot.
    pub fn is_admitting(&self, endpoint: &str, now: Instant) -> bool {
        match self.breaker(endpoint).state(now) {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => !self.breaker(endpoint).probe_in_flight(),
            BreakerState::Open => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn quick_config() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(quick_config());
        let t0 = Instant::now();
        assert!(!b.on_failure(t0));
        assert!(!b.on_failure(t0));
        assert_eq!(b.state(t0), BreakerState::Closed);
        assert!(b.on_failure(t0), "third failure trips");
        assert_eq!(b.state(t0), BreakerState::Open);
        assert_eq!(b.try_acquire(t0), Admission::Rejected);
    }

    #[test]
    fn success_resets_the_failure_count() {
        let b = CircuitBreaker::new(quick_config());
        let t0 = Instant::now();
        b.on_failure(t0);
        b.on_failure(t0);
        assert!(!b.on_success(t0), "success while closed is not a recovery");
        assert_eq!(b.consecutive_failures(), 0);
        b.on_failure(t0);
        b.on_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Closed, "count restarted");
    }

    #[test]
    fn half_open_probe_success_closes() {
        let b = CircuitBreaker::new(quick_config());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let after_cooldown = t0 + Duration::from_millis(150);
        assert_eq!(b.state(after_cooldown), BreakerState::HalfOpen);
        assert_eq!(b.try_acquire(after_cooldown), Admission::Probe);
        assert!(b.on_success(after_cooldown), "probe success recovers");
        assert_eq!(b.state(after_cooldown), BreakerState::Closed);
        assert_eq!(b.try_acquire(after_cooldown), Admission::Allowed);
    }

    #[test]
    fn half_open_probe_failure_reopens_for_another_cooldown() {
        let b = CircuitBreaker::new(quick_config());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let probe_at = t0 + Duration::from_millis(150);
        assert_eq!(b.try_acquire(probe_at), Admission::Probe);
        assert!(b.on_failure(probe_at), "failed probe re-trips");
        assert_eq!(b.state(probe_at), BreakerState::Open);
        // The new cooldown runs from the failed probe, not the old trip.
        let mid = probe_at + Duration::from_millis(60);
        assert_eq!(b.try_acquire(mid), Admission::Rejected);
        let later = probe_at + Duration::from_millis(120);
        assert_eq!(b.try_acquire(later), Admission::Probe);
    }

    #[test]
    fn only_one_probe_admitted_while_half_open() {
        let b = CircuitBreaker::new(quick_config());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let probe_at = t0 + Duration::from_millis(150);
        assert_eq!(b.try_acquire(probe_at), Admission::Probe);
        assert_eq!(
            b.try_acquire(probe_at),
            Admission::Rejected,
            "second caller during the probe is rejected"
        );
    }

    #[test]
    fn concurrent_callers_observe_consistent_state() {
        // Many threads hammer a half-open breaker: exactly one gets the
        // probe, everyone else is rejected — never two probes, never an
        // Allowed.
        let b = Arc::new(CircuitBreaker::new(quick_config()));
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let probe_at = t0 + Duration::from_millis(150);
        let probes = Arc::new(AtomicUsize::new(0));
        let rejects = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..16)
            .map(|_| {
                let b = b.clone();
                let probes = probes.clone();
                let rejects = rejects.clone();
                std::thread::spawn(move || match b.try_acquire(probe_at) {
                    Admission::Probe => {
                        probes.fetch_add(1, Ordering::SeqCst);
                    }
                    Admission::Rejected => {
                        rejects.fetch_add(1, Ordering::SeqCst);
                    }
                    Admission::Allowed => panic!("half-open breaker must not allow freely"),
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(probes.load(Ordering::SeqCst), 1);
        assert_eq!(rejects.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn two_threads_racing_the_half_open_transition_admit_exactly_one_probe() {
        // The sharpest version of the probe race: two threads released
        // by a barrier at the same instant, both asking the breaker the
        // moment it turns half-open. Repeated to give the race a real
        // chance of interleaving both ways; each round exactly one
        // thread must win the probe slot.
        for round in 0..100 {
            let b = Arc::new(CircuitBreaker::new(quick_config()));
            let t0 = Instant::now();
            for _ in 0..3 {
                b.on_failure(t0);
            }
            let probe_at = t0 + Duration::from_millis(150);
            let barrier = Arc::new(std::sync::Barrier::new(2));
            let threads: Vec<_> = (0..2)
                .map(|_| {
                    let b = b.clone();
                    let barrier = barrier.clone();
                    std::thread::spawn(move || {
                        barrier.wait();
                        b.try_acquire(probe_at)
                    })
                })
                .collect();
            let outcomes: Vec<Admission> = threads.into_iter().map(|t| t.join().unwrap()).collect();
            let probes = outcomes.iter().filter(|a| **a == Admission::Probe).count();
            let rejects = outcomes
                .iter()
                .filter(|a| **a == Admission::Rejected)
                .count();
            assert_eq!(
                probes, 1,
                "round {round}: exactly one probe, got {outcomes:?}"
            );
            assert_eq!(rejects, 1, "round {round}: the loser is rejected");
        }
    }

    #[test]
    fn aborted_probe_reopens_for_a_fresh_cooldown() {
        let b = CircuitBreaker::new(quick_config());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let probe_at = t0 + Duration::from_millis(150);
        assert_eq!(b.try_acquire(probe_at), Admission::Probe);
        assert!(b.probe_in_flight());
        let abort_at = probe_at + Duration::from_millis(10);
        assert!(b.on_probe_aborted(abort_at), "a probe was discarded");
        assert!(!b.probe_in_flight(), "the slot is freed");
        assert_eq!(b.state(abort_at), BreakerState::Open, "re-opened");
        // The new cooldown runs from the abort; a fresh probe follows.
        assert_eq!(
            b.try_acquire(abort_at + Duration::from_millis(50)),
            Admission::Rejected
        );
        assert_eq!(
            b.try_acquire(abort_at + Duration::from_millis(120)),
            Admission::Probe
        );
        // Aborting with no probe in flight is a no-op.
        assert!(b.on_success(abort_at + Duration::from_millis(120)));
        assert!(!b.on_probe_aborted(abort_at + Duration::from_millis(130)));
    }

    #[test]
    fn probe_guard_dropped_by_panic_reopens_the_breaker() {
        let b = Arc::new(CircuitBreaker::new(quick_config()));
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let probe_at = t0 + Duration::from_millis(150);
        assert_eq!(b.try_acquire(probe_at), Admission::Probe);
        let guard = ProbeGuard::arm(b.clone());
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guard = guard;
            panic!("probe attempt died");
        }));
        assert!(unwound.is_err());
        assert!(!b.probe_in_flight(), "the unwind freed the probe slot");
        // Re-opened, and after the fresh cooldown a new probe is
        // admitted — nobody is locked out forever.
        let now = Instant::now();
        assert_eq!(b.state(now), BreakerState::Open);
        assert_eq!(
            b.try_acquire(now + Duration::from_millis(150)),
            Admission::Probe
        );
    }

    #[test]
    fn disarmed_probe_guard_is_inert() {
        let b = Arc::new(CircuitBreaker::new(quick_config()));
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let probe_at = t0 + Duration::from_millis(150);
        assert_eq!(b.try_acquire(probe_at), Admission::Probe);
        let guard = ProbeGuard::arm(b.clone());
        guard.disarm();
        assert!(
            b.probe_in_flight(),
            "disarm reports nothing; the caller's outcome report does"
        );
        assert!(b.on_success(probe_at), "probe success closes normally");
        assert_eq!(b.state(probe_at), BreakerState::Closed);
    }

    #[test]
    fn registry_shares_one_breaker_per_endpoint() {
        let health = EndpointHealth::new(quick_config());
        let a1 = health.breaker("http://a/S");
        let a2 = health.breaker("http://a/S");
        let b = health.breaker("http://b/S");
        assert!(Arc::ptr_eq(&a1, &a2));
        assert!(!Arc::ptr_eq(&a1, &b));
        let t0 = Instant::now();
        for _ in 0..3 {
            a1.on_failure(t0);
        }
        assert_eq!(a2.state(t0), BreakerState::Open, "state is shared");
        assert!(!health.is_admitting("http://a/S", t0));
        assert!(health.is_admitting("http://b/S", t0));
        let snap = health.snapshot(t0);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], ("http://a/S".to_string(), BreakerState::Open));
    }
}

//! Stateful-object services (paper Section III, point 3): "allowing an
//! application to generate and deploy a service which acts as an
//! interface to a stateful object within the application … each
//! operation given to the service can map to a different stateful
//! object in memory."
//!
//! The mechanics live in [`wsp_wsdl::OperationRouter`]; this module adds
//! the ergonomic wrapper that exposes an arbitrary shared object as a
//! standards-compliant service.

use std::sync::Arc;
use wsp_soap::Fault;
use wsp_wsdl::{OperationRouter, ServiceHandler, Value};

/// Expose methods of a shared object `T` as service operations.
///
/// Each registered operation captures an `Arc<T>` plus a method
/// closure, so the service's state *is* the live application object —
/// no copy, no external container owning it.
pub struct StatefulService<T: Send + Sync + 'static> {
    object: Arc<T>,
    router: OperationRouter,
}

impl<T: Send + Sync + 'static> StatefulService<T> {
    /// Wrap an existing application object.
    pub fn wrapping(object: Arc<T>) -> Self {
        StatefulService {
            object,
            router: OperationRouter::new(),
        }
    }

    /// Map `operation` to a method of the wrapped object.
    pub fn operation<F>(mut self, operation: impl Into<String>, method: F) -> Self
    where
        F: Fn(&T, &[Value]) -> Result<Value, Fault> + Send + Sync + 'static,
    {
        let object = Arc::clone(&self.object);
        self.router = self
            .router
            .route_fn(operation, move |args| method(&object, args));
        self
    }

    /// Map `operation` to a *different* object entirely (the paper's
    /// "each operation can map to a different stateful object").
    pub fn operation_on<U, F>(
        mut self,
        operation: impl Into<String>,
        other: Arc<U>,
        method: F,
    ) -> Self
    where
        U: Send + Sync + 'static,
        F: Fn(&U, &[Value]) -> Result<Value, Fault> + Send + Sync + 'static,
    {
        self.router = self
            .router
            .route_fn(operation, move |args| method(&other, args));
        self
    }

    /// Finish: the handler to hand to `Server::deploy`.
    pub fn into_handler(self) -> Arc<dyn ServiceHandler> {
        Arc::new(self.router)
    }

    /// The wrapped object (the application keeps using it directly
    /// while the service exposes it).
    pub fn object(&self) -> &Arc<T> {
        &self.object
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// The Cactus-style stateful object: a simulation accumulating
    /// output frames.
    struct Simulation {
        frames: Mutex<Vec<String>>,
    }

    impl Simulation {
        fn step(&self) {
            let mut frames = self.frames.lock();
            let n = frames.len();
            frames.push(format!("frame-{n}"));
        }
    }

    #[test]
    fn service_reads_live_object_state() {
        let sim = Arc::new(Simulation {
            frames: Mutex::new(Vec::new()),
        });
        let handler = StatefulService::wrapping(sim.clone())
            .operation("frameCount", |s, _args| {
                Ok(Value::Int(s.frames.lock().len() as i64))
            })
            .operation("latestFrame", |s, _args| {
                Ok(s.frames
                    .lock()
                    .last()
                    .map(|f| Value::string(f.clone()))
                    .unwrap_or(Value::Null))
            })
            .into_handler();

        assert_eq!(handler.invoke("frameCount", &[]).unwrap(), Value::Int(0));
        // The application mutates its own object...
        sim.step();
        sim.step();
        // ...and the service sees it immediately.
        assert_eq!(handler.invoke("frameCount", &[]).unwrap(), Value::Int(2));
        assert_eq!(
            handler.invoke("latestFrame", &[]).unwrap(),
            Value::string("frame-1")
        );
    }

    #[test]
    fn operations_map_to_different_objects() {
        let sim = Arc::new(Simulation {
            frames: Mutex::new(vec!["f0".into()]),
        });
        let counter = Arc::new(Mutex::new(0i64));
        let c = counter.clone();
        let handler = StatefulService::wrapping(sim)
            .operation("frames", |s, _| {
                Ok(Value::Int(s.frames.lock().len() as i64))
            })
            .operation_on("bump", c, |counter, _| {
                let mut n = counter.lock();
                *n += 1;
                Ok(Value::Int(*n))
            })
            .into_handler();
        assert_eq!(handler.invoke("frames", &[]).unwrap(), Value::Int(1));
        assert_eq!(handler.invoke("bump", &[]).unwrap(), Value::Int(1));
        assert_eq!(handler.invoke("bump", &[]).unwrap(), Value::Int(2));
        assert_eq!(*counter.lock(), 2);
    }

    #[test]
    fn unrouted_operation_faults() {
        let handler = StatefulService::wrapping(Arc::new(())).into_handler();
        assert!(handler.invoke("anything", &[]).is_err());
    }
}

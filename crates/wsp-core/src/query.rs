//! WSPeer's `ServiceQuery` abstraction: one query shape, translated to
//! whatever the plugged-in locator speaks (UDDI categories, P2PS
//! attributes, …).
//!
//! "A ServiceQuery is an abstraction used by WSPeer to allow for
//! varying kinds of query. The simplest ServiceQuery queries on the
//! name of a service" (Section III).

/// A binding-neutral service query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceQuery {
    /// Name pattern with `%` wildcards, case-insensitive.
    pub name_pattern: Option<String>,
    /// Key/value constraints: UDDI category bags or P2PS attributes.
    pub properties: Vec<(String, String)>,
    /// Cap on results; 0 = no cap.
    pub max_results: usize,
}

impl ServiceQuery {
    /// The simplest query: by service name.
    pub fn by_name(pattern: impl Into<String>) -> Self {
        ServiceQuery {
            name_pattern: Some(pattern.into()),
            ..ServiceQuery::default()
        }
    }

    /// Match anything (browse).
    pub fn any() -> Self {
        ServiceQuery::default()
    }

    pub fn with_property(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.properties.push((key.into(), value.into()));
        self
    }

    pub fn with_max_results(mut self, n: usize) -> Self {
        self.max_results = n;
        self
    }

    /// Translate for a UDDI-conversant locator. Properties become
    /// keyed references in a conventional WSPeer category tModel.
    pub fn to_uddi(&self) -> wsp_uddi::ServiceQuery {
        let mut query = wsp_uddi::ServiceQuery {
            name_pattern: self.name_pattern.clone(),
            categories: Vec::new(),
            max_rows: self.max_results,
        };
        for (key, value) in &self.properties {
            query.categories.push(wsp_uddi::KeyedReference::new(
                format!("uuid:wspeer:attr:{key}"),
                key.clone(),
                value.clone(),
            ));
        }
        query
    }

    /// Translate for a P2PS locator.
    pub fn to_p2ps(&self) -> wsp_p2ps::P2psQuery {
        wsp_p2ps::P2psQuery {
            name_pattern: self.name_pattern.clone(),
            attributes: self.properties.clone(),
        }
    }
}

/// The inverse mapping used when *publishing*: properties become UDDI
/// categories with the same convention `to_uddi` queries against.
pub fn properties_to_uddi_categories(
    properties: &[(String, String)],
) -> Vec<wsp_uddi::KeyedReference> {
    properties
        .iter()
        .map(|(key, value)| {
            wsp_uddi::KeyedReference::new(
                format!("uuid:wspeer:attr:{key}"),
                key.clone(),
                value.clone(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uddi_translation_preserves_name_and_limit() {
        let q = ServiceQuery::by_name("Echo%").with_max_results(5);
        let uddi = q.to_uddi();
        assert_eq!(uddi.name_pattern.as_deref(), Some("Echo%"));
        assert_eq!(uddi.max_rows, 5);
    }

    #[test]
    fn properties_round_trip_through_uddi_convention() {
        let q = ServiceQuery::any().with_property("domain", "demo");
        let uddi_query = q.to_uddi();
        let categories = properties_to_uddi_categories(&q.properties);
        // A service published with these categories matches the query.
        let service =
            wsp_uddi::BusinessService::new("k", "b", "S").with_category(categories[0].clone());
        assert!(uddi_query.matches(&service));
        // And a differently-valued property does not.
        let other = wsp_uddi::BusinessService::new("k", "b", "S").with_category(
            wsp_uddi::KeyedReference::new("uuid:wspeer:attr:domain", "domain", "prod"),
        );
        assert!(!uddi_query.matches(&other));
    }

    #[test]
    fn p2ps_translation_preserves_everything() {
        let q = ServiceQuery::by_name("Cactus%").with_property("step", "7");
        let p2ps = q.to_p2ps();
        assert_eq!(p2ps.name_pattern.as_deref(), Some("Cactus%"));
        assert_eq!(p2ps.attributes, vec![("step".to_string(), "7".to_string())]);
    }

    #[test]
    fn same_query_drives_both_worlds() {
        // The point of the abstraction: one query object, two targets.
        let q = ServiceQuery::by_name("Echo");
        let advert = wsp_p2ps::ServiceAdvertisement::new("Echo", wsp_p2ps::PeerId(1));
        assert!(q.to_p2ps().matches(&advert));
        let record = wsp_uddi::BusinessService::new("k", "b", "Echo");
        assert!(q.to_uddi().matches(&record));
    }
}

/// A composable query expression — the "more complex queries" the paper
/// anticipates ("could be constructed from languages such as DAML")
/// layered over the simple [`ServiceQuery`].
///
/// Evaluation is two-phase: [`QueryExpr::base_query`] derives a sound
/// over-approximation that the binding's native mechanism (UDDI match,
/// P2PS flood) can execute, and the client refines the results against
/// the full expression using the name and discovery properties carried
/// in each located service's WSDL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryExpr {
    /// Service name matches this `%`-wildcard pattern.
    Name(String),
    /// Discovery property `key` equals `value`.
    Property(String, String),
    /// All sub-expressions hold.
    And(Vec<QueryExpr>),
    /// At least one sub-expression holds.
    Or(Vec<QueryExpr>),
    /// The sub-expression does not hold.
    Not(Box<QueryExpr>),
}

impl QueryExpr {
    pub fn name(pattern: impl Into<String>) -> QueryExpr {
        QueryExpr::Name(pattern.into())
    }

    pub fn property(key: impl Into<String>, value: impl Into<String>) -> QueryExpr {
        QueryExpr::Property(key.into(), value.into())
    }

    pub fn and(self, other: QueryExpr) -> QueryExpr {
        match self {
            QueryExpr::And(mut xs) => {
                xs.push(other);
                QueryExpr::And(xs)
            }
            x => QueryExpr::And(vec![x, other]),
        }
    }

    pub fn or(self, other: QueryExpr) -> QueryExpr {
        match self {
            QueryExpr::Or(mut xs) => {
                xs.push(other);
                QueryExpr::Or(xs)
            }
            x => QueryExpr::Or(vec![x, other]),
        }
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> QueryExpr {
        QueryExpr::Not(Box::new(self))
    }

    /// Evaluate against a service's name and discovery properties.
    pub fn matches(&self, name: &str, properties: &[(String, String)]) -> bool {
        match self {
            QueryExpr::Name(pattern) => wsp_uddi::wildcard_match(pattern, name),
            QueryExpr::Property(key, value) => {
                properties.iter().any(|(k, v)| k == key && v == value)
            }
            QueryExpr::And(xs) => xs.iter().all(|x| x.matches(name, properties)),
            QueryExpr::Or(xs) => xs.iter().any(|x| x.matches(name, properties)),
            QueryExpr::Not(x) => !x.matches(name, properties),
        }
    }

    /// A [`ServiceQuery`] that matches a superset of this expression —
    /// what gets pushed down to the binding's native search. Only
    /// top-level conjuncts can be pushed soundly; anything under `Or`
    /// or `Not` falls back to match-everything.
    pub fn base_query(&self) -> ServiceQuery {
        let mut base = ServiceQuery::any();
        match self {
            QueryExpr::Name(pattern) => base.name_pattern = Some(pattern.clone()),
            QueryExpr::Property(key, value) => base.properties.push((key.clone(), value.clone())),
            QueryExpr::And(xs) => {
                for x in xs {
                    match x {
                        QueryExpr::Name(pattern) if base.name_pattern.is_none() => {
                            base.name_pattern = Some(pattern.clone());
                        }
                        QueryExpr::Property(key, value) => {
                            base.properties.push((key.clone(), value.clone()));
                        }
                        _ => {} // nested Or/Not: cannot push down
                    }
                }
            }
            QueryExpr::Or(_) | QueryExpr::Not(_) => {}
        }
        base
    }
}

#[cfg(test)]
mod expr_tests {
    use super::*;

    fn props(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn leaf_evaluation() {
        let p = props(&[("domain", "demo")]);
        assert!(QueryExpr::name("Echo%").matches("EchoService", &p));
        assert!(!QueryExpr::name("Echo").matches("EchoService", &p));
        assert!(QueryExpr::property("domain", "demo").matches("X", &p));
        assert!(!QueryExpr::property("domain", "prod").matches("X", &p));
    }

    #[test]
    fn boolean_combinators() {
        let p = props(&[("domain", "demo"), ("tier", "gold")]);
        let expr = QueryExpr::name("E%")
            .and(QueryExpr::property("domain", "demo"))
            .and(QueryExpr::property("tier", "silver").or(QueryExpr::property("tier", "gold")));
        assert!(expr.matches("Echo", &p));
        let negated = QueryExpr::property("domain", "demo").not();
        assert!(!negated.matches("Echo", &p));
        assert!(negated.matches("Echo", &props(&[("domain", "prod")])));
    }

    #[test]
    fn base_query_pushes_down_conjuncts() {
        let expr = QueryExpr::name("Echo%")
            .and(QueryExpr::property("domain", "demo"))
            .and(QueryExpr::property("x", "1").or(QueryExpr::property("x", "2")));
        let base = expr.base_query();
        assert_eq!(base.name_pattern.as_deref(), Some("Echo%"));
        assert_eq!(base.properties.len(), 1); // only the pure conjunct
    }

    #[test]
    fn base_query_is_sound_overapproximation() {
        // Everything the expression matches, the base query matches too.
        let expr = QueryExpr::name("E%").or(QueryExpr::property("a", "b"));
        let base = expr.base_query();
        assert_eq!(base, ServiceQuery::any());
        let negated = QueryExpr::name("E%").not();
        assert_eq!(negated.base_query(), ServiceQuery::any());
    }
}

//! The client side of the interface tree: discovery and invocation.
//!
//! There is exactly **one** invocation pipeline. Every call — locate or
//! invoke — is a job submitted to the shared [`Dispatcher`]; the
//! asynchronous methods return the [`CallHandle`] and the synchronous
//! methods are `handle.wait()` over the very same submission. The
//! handle's correlation token is the token carried by the matching
//! [`DiscoveryMessageEvent`] / [`ClientMessageEvent`], so callers can
//! pair results delivered through events with the calls they made.

use crate::components::{Invoker, ServiceLocator};
use crate::dispatch::{CallHandle, Dispatcher};
use crate::endpoint::LocatedService;
use crate::error::WspError;
use crate::events::{
    ClientMessageEvent, DiscoveryMessageEvent, EventBus, ResilienceAction, ResilienceMessageEvent,
};
use crate::health::{Admission, EndpointHealth, ProbeGuard};
use crate::overload::{self, DeadlineScope};
use crate::query::{QueryExpr, ServiceQuery};
use crate::resilience::ResiliencePolicy;
use crate::telemetry;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wsp_wsdl::Value;

/// The `Client` node: owns a pluggable [`ServiceLocator`] and a set of
/// [`Invoker`]s (one per reachable endpoint scheme), and fires
/// discovery/client events into the shared bus.
///
/// Both synchronous and asynchronous forms are offered; the paper's
/// position is that WSPeer "allows synchronous discovery and
/// invocation, \[but\] is essentially an asynchronous, event driven
/// system" — here the synchronous forms literally wrap the
/// asynchronous ones.
pub struct Client {
    locator: RwLock<Option<Arc<dyn ServiceLocator>>>,
    invokers: RwLock<Vec<Arc<dyn Invoker>>>,
    events: EventBus,
    dispatcher: Arc<Dispatcher>,
    /// Default per-call policy; [`ResiliencePolicy::none`] preserves
    /// the legacy single-attempt behaviour.
    policy: RwLock<ResiliencePolicy>,
    /// Per-endpoint circuit breakers, shared across all this client's
    /// calls (and visible via [`crate::Peer::health`]).
    health: Arc<EndpointHealth>,
    /// Cached end-to-end invoke latency histogram (covers the whole
    /// retry/failover loop; no-op while telemetry is disabled).
    invoke_us: Arc<telemetry::Histogram>,
    /// Per-endpoint attempt counters, resolved once per endpoint so the
    /// steady-state attempt path never formats a name or takes the
    /// registry lock.
    attempt_counters: Arc<RwLock<std::collections::HashMap<String, Arc<telemetry::Counter>>>>,
}

impl Client {
    /// A standalone client with its own default-sized dispatcher.
    /// Inside a [`crate::Peer`] the dispatcher is shared instead — see
    /// [`Client::with_dispatcher`].
    pub fn new(events: EventBus) -> Arc<Client> {
        Client::with_dispatcher(events, Dispatcher::with_defaults())
    }

    pub fn with_dispatcher(events: EventBus, dispatcher: Arc<Dispatcher>) -> Arc<Client> {
        Arc::new(Client {
            locator: RwLock::new(None),
            invokers: RwLock::new(Vec::new()),
            events,
            dispatcher,
            policy: RwLock::new(ResiliencePolicy::none()),
            health: Arc::new(EndpointHealth::default()),
            invoke_us: telemetry::global().histogram("client.invoke_us"),
            attempt_counters: Arc::new(RwLock::new(std::collections::HashMap::new())),
        })
    }

    /// The dispatch core this client submits every call to.
    pub fn dispatcher(&self) -> &Arc<Dispatcher> {
        &self.dispatcher
    }

    /// The per-endpoint health registry consulted before each attempt.
    pub fn health(&self) -> &Arc<EndpointHealth> {
        &self.health
    }

    /// Install the default [`ResiliencePolicy`] applied by
    /// [`Client::invoke`]/[`Client::invoke_async`]. Calls already
    /// submitted keep the policy they captured.
    pub fn set_resilience_policy(&self, policy: ResiliencePolicy) {
        *self.policy.write() = policy;
    }

    /// The current default policy.
    pub fn resilience_policy(&self) -> ResiliencePolicy {
        self.policy.read().clone()
    }

    /// Plug in (or replace) the locator — e.g. swap the UDDI locator
    /// for a P2PS one without the application changing.
    pub fn set_locator(&self, locator: Arc<dyn ServiceLocator>) {
        *self.locator.write() = Some(locator);
    }

    /// Add an invoker. Several can coexist; dispatch is by endpoint
    /// scheme.
    pub fn add_invoker(&self, invoker: Arc<dyn Invoker>) {
        self.invokers.write().push(invoker);
    }

    pub fn locator_kind(&self) -> Option<&'static str> {
        self.locator.read().as_ref().map(|l| l.kind())
    }

    /// Wrap a submission failure (shut-down dispatcher) as an
    /// already-failed handle so the async API stays infallible.
    fn failed_handle<T: Send + 'static>(
        &self,
        token: u64,
        error: WspError,
    ) -> CallHandle<Result<T, WspError>> {
        let (handle, completer) = self.dispatcher.register(token);
        completer.complete(Err(error));
        handle
    }

    /// Asynchronous discovery: submits to the dispatcher and returns a
    /// [`CallHandle`] immediately. The result also arrives as a
    /// [`DiscoveryMessageEvent`] carrying the handle's token.
    pub fn locate_async(
        &self,
        query: ServiceQuery,
    ) -> CallHandle<Result<Vec<LocatedService>, WspError>> {
        let token = self.dispatcher.next_token();
        let locator = self.locator.read().clone();
        let events = self.events.clone();
        let job = move || {
            let registry = telemetry::global();
            if registry.is_enabled() {
                registry.span(token, "client.locate", format_args!("query={query:?}"));
            }
            let result = match locator {
                Some(locator) => locator.locate(&query),
                None => Err(WspError::Locate("no ServiceLocator plugged in".into())),
            };
            events.fire_discovery(&DiscoveryMessageEvent {
                token,
                result: result.clone(),
            });
            result
        };
        match self.dispatcher.submit_with_token(token, job) {
            Ok(handle) => handle,
            Err(e) => self.failed_handle(token, e),
        }
    }

    /// Synchronous discovery: [`Client::locate_async`] + wait. Fires a
    /// [`DiscoveryMessageEvent`] as well as returning the result.
    pub fn locate(&self, query: &ServiceQuery) -> Result<Vec<LocatedService>, WspError> {
        self.locate_async(query.clone()).wait()
    }

    /// Rich discovery (the paper's "more complex queries"): push a sound
    /// base query down to the binding's native search, then refine the
    /// results against the full expression using each service's name and
    /// the discovery properties carried in its WSDL.
    pub fn locate_where(&self, expr: &QueryExpr) -> Result<Vec<LocatedService>, WspError> {
        let candidates = self.locate(&expr.base_query())?;
        Ok(candidates
            .into_iter()
            .filter(|s| expr.matches(s.name(), &s.descriptor().properties))
            .collect())
    }

    /// Convenience: the first match, or an error.
    pub fn locate_one(&self, query: &ServiceQuery) -> Result<LocatedService, WspError> {
        self.locate(query)?
            .into_iter()
            .next()
            .ok_or_else(|| WspError::Locate(format!("no service matches {query:?}")))
    }

    /// Asynchronous invocation: submits to the dispatcher and returns a
    /// [`CallHandle`] immediately. Completion also arrives as a
    /// [`ClientMessageEvent`] carrying the handle's token. This is the
    /// mode "needed within a P2P environment" where nodes are
    /// unreliable. Applies the client's default [`ResiliencePolicy`].
    pub fn invoke_async(
        &self,
        service: LocatedService,
        operation: impl Into<String>,
        args: Vec<Value>,
    ) -> CallHandle<Result<Value, WspError>> {
        self.invoke_async_with_policy(service, operation, args, self.resilience_policy())
    }

    /// Asynchronous invocation under an explicit per-call policy: the
    /// job retries transient failures with jittered exponential
    /// backoff, consults the endpoint's circuit breaker before every
    /// attempt, fails over to the next matching endpoint via the
    /// locator, and stops at the policy's deadline. Degradation is
    /// surfaced as [`ResilienceMessageEvent`]s carrying the handle's
    /// token.
    pub fn invoke_async_with_policy(
        &self,
        service: LocatedService,
        operation: impl Into<String>,
        args: Vec<Value>,
        policy: ResiliencePolicy,
    ) -> CallHandle<Result<Value, WspError>> {
        let token = self.dispatcher.next_token();
        let operation = operation.into();
        let invokers: Vec<Arc<dyn Invoker>> = self.invokers.read().clone();
        let locator = self.locator.read().clone();
        let events = self.events.clone();
        let health = self.health.clone();
        // The deadline clock starts at submission, so queueing time
        // counts against the call's budget.
        let deadline = policy.deadline.map(|d| Instant::now() + d);
        let invoke_us = self.invoke_us.clone();
        let attempt_counters = self.attempt_counters.clone();
        let job = move || {
            let registry = telemetry::global();
            let started = Instant::now();
            let attempts = ResilientAttempts {
                policy: &policy,
                health: &health,
                invokers: &invokers,
                locator: locator.as_ref(),
                events: &events,
                attempt_counters: &attempt_counters,
                token,
                deadline,
            };
            let result = attempts.run(service.clone(), &operation, &args);
            invoke_us.record_micros(started.elapsed());
            if registry.is_enabled() {
                if let Err(error) = &result {
                    registry.span(
                        token,
                        "client.error",
                        format_args!("endpoint={} error={error}", service.endpoint),
                    );
                }
            }
            events.fire_client(&ClientMessageEvent {
                token,
                service: service.name().to_owned(),
                operation,
                result: result.clone(),
            });
            result
        };
        match self.dispatcher.submit_with_token(token, job) {
            Ok(handle) => handle,
            Err(e) => self.failed_handle(token, e),
        }
    }

    /// Synchronous invocation: [`Client::invoke_async`] + wait — the
    /// same validated, event-firing pipeline, not a separate path.
    pub fn invoke(
        &self,
        service: &LocatedService,
        operation: &str,
        args: &[Value],
    ) -> Result<Value, WspError> {
        self.invoke_async(service.clone(), operation, args.to_vec())
            .wait()
    }

    /// Synchronous invocation under an explicit per-call policy.
    pub fn invoke_with_policy(
        &self,
        service: &LocatedService,
        operation: &str,
        args: &[Value],
        policy: ResiliencePolicy,
    ) -> Result<Value, WspError> {
        self.invoke_async_with_policy(service.clone(), operation, args.to_vec(), policy)
            .wait()
    }
}

/// The retry/failover loop one invoke job runs through. Borrowed
/// context keeps the dispatched closure small.
struct ResilientAttempts<'a> {
    policy: &'a ResiliencePolicy,
    health: &'a EndpointHealth,
    invokers: &'a [Arc<dyn Invoker>],
    locator: Option<&'a Arc<dyn ServiceLocator>>,
    events: &'a EventBus,
    attempt_counters: &'a RwLock<std::collections::HashMap<String, Arc<telemetry::Counter>>>,
    token: u64,
    deadline: Option<Instant>,
}

impl ResilientAttempts<'_> {
    fn fire(&self, service: &LocatedService, action: ResilienceAction) {
        let registry = telemetry::global();
        if registry.is_enabled() {
            let stage = match &action {
                ResilienceAction::AttemptFailed { .. } => "resilience.attempt_failed",
                ResilienceAction::FailedOver { .. } => "resilience.failed_over",
                ResilienceAction::BreakerTripped => "resilience.breaker_tripped",
                ResilienceAction::BreakerProbe => "resilience.breaker_probe",
                ResilienceAction::BreakerRecovered => "resilience.breaker_recovered",
                ResilienceAction::DeadlineExceeded { .. } => "resilience.deadline_exceeded",
            };
            match &action {
                ResilienceAction::BreakerTripped => registry.counter("breaker.trips").incr(),
                ResilienceAction::BreakerProbe => registry.counter("breaker.probes").incr(),
                ResilienceAction::BreakerRecovered => registry.counter("breaker.recoveries").incr(),
                _ => {}
            }
            registry.span(
                self.token,
                stage,
                format_args!("endpoint={} action={action:?}", service.endpoint),
            );
        }
        self.events.fire_resilience(&ResilienceMessageEvent {
            token: self.token,
            service: service.name().to_owned(),
            endpoint: service.endpoint.clone(),
            action,
        });
    }

    /// One transport attempt against the current endpoint, gated by its
    /// circuit breaker.
    fn attempt(
        &self,
        service: &LocatedService,
        operation: &str,
        args: &[Value],
    ) -> Result<Value, WspError> {
        let registry = telemetry::global();
        if registry.is_enabled() {
            // Per-endpoint attempt count — every admission request,
            // including ones the breaker rejects without touching the
            // wire, so breaker effectiveness is visible. The handle is
            // cached per endpoint: steady state is a read lock + incr,
            // no name formatting, no registry lock.
            let hit = {
                let cached = self.attempt_counters.read();
                match cached.get(&service.endpoint) {
                    Some(counter) => {
                        counter.incr();
                        true
                    }
                    None => false,
                }
            };
            if !hit {
                let counter =
                    registry.counter(format!("client.attempts{{endpoint={}}}", service.endpoint));
                counter.incr();
                self.attempt_counters
                    .write()
                    .insert(service.endpoint.clone(), counter);
            }
        }
        let breaker = self.health.breaker(&service.endpoint);
        let admission = breaker.try_acquire(Instant::now());
        if admission == Admission::Rejected {
            return Err(WspError::CircuitOpen {
                endpoint: service.endpoint.clone(),
            });
        }
        // If this attempt is the half-open probe, guard it: a panic in
        // the invoker (or any path that skips the outcome report below)
        // must not strand the probe slot — the guard's Drop routes a
        // ProbeAborted event and the breaker re-opens for a fresh
        // cooldown.
        let mut probe_guard = None;
        if admission == Admission::Probe {
            self.fire(service, ResilienceAction::BreakerProbe);
            probe_guard = Some(ProbeGuard::arm(breaker.clone()));
        }
        let result = match self.invokers.iter().find(|i| i.handles(&service.endpoint)) {
            Some(invoker) => {
                // Scope the call deadline to the attempt so the
                // transport can put the remaining budget on the wire
                // (X-WSP-Deadline / SOAP header). The effective
                // deadline is the tighter of this call's own deadline
                // and any inherited one — a handler making a nested
                // outbound call cannot outlive its caller's budget.
                let effective = match (self.deadline, overload::current_deadline()) {
                    (Some(own), Some(inherited)) => Some(own.min(inherited)),
                    (own, inherited) => own.or(inherited),
                };
                let _deadline = DeadlineScope::enter(effective);
                invoker.invoke(service, operation, args)
            }
            None => Err(WspError::NoBindingFor {
                scheme: service
                    .endpoint
                    .split("://")
                    .next()
                    .unwrap_or("?")
                    .to_owned(),
            }),
        };
        match &result {
            Ok(_) => {
                if let Some(guard) = probe_guard.take() {
                    guard.disarm();
                }
                if breaker.on_success(Instant::now()) {
                    self.fire(service, ResilienceAction::BreakerRecovered);
                }
            }
            Err(e) if e.counts_against_endpoint() => {
                if let Some(guard) = probe_guard.take() {
                    guard.disarm();
                }
                if breaker.on_failure(Instant::now()) {
                    self.fire(service, ResilienceAction::BreakerTripped);
                }
            }
            // Non-counting errors report no outcome: a still-armed
            // probe guard drops here and aborts the probe.
            Err(_) => {}
        }
        result
    }

    /// On a retryable failure, re-resolve through the locator and pick
    /// the next matching endpoint not yet tried and not circuit-open.
    fn failover_target(
        &self,
        service: &LocatedService,
        operation: &str,
        tried: &[String],
    ) -> Option<LocatedService> {
        let locator = self.locator?;
        let candidates = locator
            .locate(&ServiceQuery::by_name(service.name()))
            .ok()?;
        let now = Instant::now();
        candidates.into_iter().find(|c| {
            c.endpoint != service.endpoint
                && !tried.contains(&c.endpoint)
                && c.has_operation(operation)
                && self.invokers.iter().any(|i| i.handles(&c.endpoint))
                && self.health.is_admitting(&c.endpoint, now)
        })
    }

    fn run(
        &self,
        mut service: LocatedService,
        operation: &str,
        args: &[Value],
    ) -> Result<Value, WspError> {
        if !service.has_operation(operation) {
            return Err(WspError::NoSuchOperation {
                service: service.name().to_owned(),
                operation: operation.to_owned(),
            });
        }
        // Jitter is deterministic per (policy seed, call token), so a
        // rerun of the same call sequence reproduces its delays.
        let mut rng = StdRng::seed_from_u64(self.policy.jitter_seed ^ self.token);
        let mut tried: Vec<String> = Vec::new();
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let error = match self.attempt(&service, operation, args) {
                Ok(value) => {
                    let registry = telemetry::global();
                    if registry.is_enabled() {
                        // One closing span per call instead of a
                        // start/end pair: at microsecond invoke scale a
                        // second span per call is a measurable slice of
                        // the E10 overhead budget, and the resilience
                        // spans already narrate multi-attempt calls.
                        // Push-built detail: `core::fmt` dispatch alone
                        // costs more than the rest of the record.
                        registry.span_with(self.token, "client.ok", |d| {
                            d.push("service=")
                                .push(service.name())
                                .push(" operation=")
                                .push(operation)
                                .push(" endpoint=")
                                .push(&service.endpoint)
                                .push(" attempts=")
                                .push_u64(attempt as u64);
                        });
                    }
                    return Ok(value);
                }
                Err(e) => e,
            };
            let will_retry = self.policy.is_retryable(&error) && attempt < self.policy.max_attempts;
            self.fire(
                &service,
                ResilienceAction::AttemptFailed {
                    attempt,
                    error: error.to_string(),
                    will_retry,
                },
            );
            if !will_retry {
                return Err(error);
            }
            if !tried.contains(&service.endpoint) {
                tried.push(service.endpoint.clone());
            }
            if let Some(next) = self.failover_target(&service, operation, &tried) {
                self.fire(
                    &service,
                    ResilienceAction::FailedOver {
                        to: next.endpoint.clone(),
                    },
                );
                service = next;
            }
            let delay = self
                .policy
                .backoff_before(attempt + 1)
                .map(|d| self.policy.jittered(d, &mut rng))
                .unwrap_or(Duration::ZERO);
            // Transient-with-hint: an overloaded server's Retry-After
            // is a floor under our own schedule — retrying sooner than
            // the server asked would feed the very overload it is
            // shedding.
            let delay = match error.retry_after_hint() {
                Some(hint) => delay.max(hint),
                None => delay,
            };
            if let Some(deadline) = self.deadline {
                if Instant::now() + delay >= deadline {
                    self.fire(
                        &service,
                        ResilienceAction::DeadlineExceeded {
                            after_attempts: attempt,
                        },
                    );
                    let millis = self
                        .policy
                        .deadline
                        .map(|d| d.as_millis() as u64)
                        .unwrap_or(0);
                    return Err(WspError::Timeout {
                        what: "call deadline",
                        millis,
                    });
                }
            }
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::BindingKind;
    use crate::events::CollectingListener;
    use wsp_wsdl::{ServiceDescriptor, WsdlDocument};

    struct FixedLocator(Vec<LocatedService>);
    impl ServiceLocator for FixedLocator {
        fn locate(&self, _query: &ServiceQuery) -> Result<Vec<LocatedService>, WspError> {
            Ok(self.0.clone())
        }
        fn kind(&self) -> &'static str {
            "fixed"
        }
    }

    struct EchoInvoker;
    impl Invoker for EchoInvoker {
        fn invoke(
            &self,
            _service: &LocatedService,
            _operation: &str,
            args: &[Value],
        ) -> Result<Value, WspError> {
            Ok(args.first().cloned().unwrap_or(Value::Null))
        }
        fn handles(&self, endpoint: &str) -> bool {
            endpoint.starts_with("test://")
        }
        fn kind(&self) -> &'static str {
            "test"
        }
    }

    fn test_service() -> LocatedService {
        LocatedService::new(
            WsdlDocument::new(ServiceDescriptor::echo(), vec![]),
            "test://somewhere/Echo",
            BindingKind::HttpUddi,
        )
    }

    fn wired_client() -> (Arc<Client>, Arc<CollectingListener>) {
        let events = EventBus::new();
        let listener = CollectingListener::new();
        events.add_listener(listener.clone());
        let client = Client::new(events);
        client.set_locator(Arc::new(FixedLocator(vec![test_service()])));
        client.add_invoker(Arc::new(EchoInvoker));
        (client, listener)
    }

    #[test]
    fn locate_fires_event_and_returns() {
        let (client, listener) = wired_client();
        let found = client.locate(&ServiceQuery::by_name("Echo")).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(listener.discoveries.read().len(), 1);
    }

    #[test]
    fn locate_without_locator_errors() {
        let client = Client::new(EventBus::new());
        assert!(matches!(
            client.locate(&ServiceQuery::any()),
            Err(WspError::Locate(_))
        ));
    }

    #[test]
    fn invoke_dispatches_by_scheme() {
        let (client, listener) = wired_client();
        let service = client.locate_one(&ServiceQuery::by_name("Echo")).unwrap();
        let out = client
            .invoke(&service, "echoString", &[Value::string("hello")])
            .unwrap();
        assert_eq!(out, Value::string("hello"));
        assert_eq!(listener.client_messages.read().len(), 1);
    }

    #[test]
    fn invoke_unknown_scheme_errors() {
        let (client, _) = wired_client();
        let mut service = test_service();
        service.endpoint = "gopher://old/Echo".into();
        let err = client
            .invoke(&service, "echoString", &[Value::string("x")])
            .unwrap_err();
        assert!(matches!(err, WspError::NoBindingFor { scheme } if scheme == "gopher"));
    }

    #[test]
    fn invoke_unknown_operation_errors() {
        let (client, _) = wired_client();
        let service = test_service();
        let err = client.invoke(&service, "fly", &[]).unwrap_err();
        assert!(matches!(err, WspError::NoSuchOperation { .. }));
    }

    #[test]
    fn async_paths_fire_events() {
        let (client, listener) = wired_client();
        let locate_handle = client.locate_async(ServiceQuery::by_name("Echo"));
        let invoke_handle =
            client.invoke_async(test_service(), "echoString", vec![Value::string("async")]);
        // Deterministic barrier: both jobs (and the events they fire)
        // complete before flush returns — no poll-and-sleep loop.
        client.dispatcher().flush();
        let discovery = listener
            .discovery_for(locate_handle.token())
            .expect("discovery event carries the handle's token");
        assert_eq!(discovery.result.unwrap().len(), 1);
        let client_event = listener
            .client_message_for(invoke_handle.token())
            .expect("client event carries the handle's token");
        assert_eq!(
            client_event.result.as_ref().unwrap(),
            &Value::string("async")
        );
        assert_eq!(invoke_handle.wait().unwrap(), Value::string("async"));
    }

    #[test]
    fn invoke_returns_correlation_token_to_caller() {
        let (client, listener) = wired_client();
        let handle = client.invoke_async(test_service(), "echoString", vec![Value::string("t")]);
        let token = handle.token();
        assert_eq!(handle.wait().unwrap(), Value::string("t"));
        let event = listener
            .client_message_for(token)
            .expect("event matched by returned token");
        assert_eq!(event.operation, "echoString");
    }

    #[test]
    fn failed_invocations_complete_handle_and_fire_event() {
        let (client, listener) = wired_client();
        let handle = client.invoke_async(test_service(), "fly", vec![]);
        let token = handle.token();
        assert!(matches!(
            handle.wait(),
            Err(WspError::NoSuchOperation { .. })
        ));
        let event = listener
            .client_message_for(token)
            .expect("error still fires an event");
        assert!(event.result.is_err());
    }

    /// Fails with a transport error for the first `failures` calls,
    /// then echoes. Counts invocations.
    struct FlakyInvoker {
        failures: u32,
        calls: std::sync::atomic::AtomicU32,
    }
    impl FlakyInvoker {
        fn new(failures: u32) -> Self {
            FlakyInvoker {
                failures,
                calls: std::sync::atomic::AtomicU32::new(0),
            }
        }
    }
    impl Invoker for FlakyInvoker {
        fn invoke(
            &self,
            _service: &LocatedService,
            _operation: &str,
            args: &[Value],
        ) -> Result<Value, WspError> {
            let n = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if n < self.failures {
                Err(WspError::Transport("connection reset".into()))
            } else {
                Ok(args.first().cloned().unwrap_or(Value::Null))
            }
        }
        fn handles(&self, endpoint: &str) -> bool {
            endpoint.starts_with("test://")
        }
        fn kind(&self) -> &'static str {
            "flaky"
        }
    }

    fn service_at(endpoint: &str) -> LocatedService {
        LocatedService::new(
            WsdlDocument::new(ServiceDescriptor::echo(), vec![]),
            endpoint,
            BindingKind::HttpUddi,
        )
    }

    /// A fast-retrying policy: no real sleeps, no deadline.
    fn instant_policy(max_attempts: u32) -> ResiliencePolicy {
        ResiliencePolicy::retrying(max_attempts).with_backoff(Duration::ZERO, 1.0, Duration::ZERO)
    }

    #[test]
    fn retry_policy_recovers_from_transient_failures() {
        let events = EventBus::new();
        let listener = CollectingListener::new();
        events.add_listener(listener.clone());
        let client = Client::new(events);
        let flaky = Arc::new(FlakyInvoker::new(2));
        client.add_invoker(flaky.clone());
        let handle = client.invoke_async_with_policy(
            test_service(),
            "echoString",
            vec![Value::string("again")],
            instant_policy(5),
        );
        let token = handle.token();
        assert_eq!(handle.wait().unwrap(), Value::string("again"));
        assert_eq!(flaky.calls.load(std::sync::atomic::Ordering::SeqCst), 3);
        client.dispatcher().flush();
        let seen = listener.resilience_for(token);
        assert_eq!(seen.len(), 2, "one event per failed attempt");
        for (i, event) in seen.iter().enumerate() {
            assert!(matches!(
                &event.action,
                ResilienceAction::AttemptFailed { attempt, will_retry: true, .. }
                    if *attempt == (i + 1) as u32
            ));
        }
    }

    #[test]
    fn default_policy_keeps_single_attempt_semantics() {
        let events = EventBus::new();
        let client = Client::new(events);
        let flaky = Arc::new(FlakyInvoker::new(1));
        client.add_invoker(flaky.clone());
        let err = client
            .invoke(&test_service(), "echoString", &[Value::string("x")])
            .unwrap_err();
        assert!(matches!(err, WspError::Transport(_)));
        assert_eq!(flaky.calls.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        struct BadArgInvoker;
        impl Invoker for BadArgInvoker {
            fn invoke(
                &self,
                _service: &LocatedService,
                _operation: &str,
                _args: &[Value],
            ) -> Result<Value, WspError> {
                Err(WspError::Invoke("malformed argument".into()))
            }
            fn handles(&self, endpoint: &str) -> bool {
                endpoint.starts_with("test://")
            }
            fn kind(&self) -> &'static str {
                "bad"
            }
        }
        let events = EventBus::new();
        let listener = CollectingListener::new();
        events.add_listener(listener.clone());
        let client = Client::new(events);
        client.add_invoker(Arc::new(BadArgInvoker));
        let handle = client.invoke_async_with_policy(
            test_service(),
            "echoString",
            vec![],
            instant_policy(5),
        );
        let token = handle.token();
        assert!(matches!(handle.wait(), Err(WspError::Invoke(_))));
        client.dispatcher().flush();
        let seen = listener.resilience_for(token);
        assert_eq!(seen.len(), 1);
        assert!(matches!(
            &seen[0].action,
            ResilienceAction::AttemptFailed {
                will_retry: false,
                ..
            }
        ));
    }

    #[test]
    fn consecutive_failures_trip_the_breaker() {
        // One endpoint, no failover targets: the breaker's threshold
        // (3) trips mid-call and the final attempt is rejected at the
        // breaker, not on the wire.
        let events = EventBus::new();
        let listener = CollectingListener::new();
        events.add_listener(listener.clone());
        let client = Client::new(events);
        let flaky = Arc::new(FlakyInvoker::new(u32::MAX));
        client.add_invoker(flaky.clone());
        let handle = client.invoke_async_with_policy(
            test_service(),
            "echoString",
            vec![Value::string("x")],
            instant_policy(4),
        );
        let token = handle.token();
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, WspError::CircuitOpen { .. }));
        assert_eq!(
            flaky.calls.load(std::sync::atomic::Ordering::SeqCst),
            3,
            "fourth attempt never reached the wire"
        );
        client.dispatcher().flush();
        let actions = listener.resilience_for(token);
        assert!(actions
            .iter()
            .any(|e| matches!(e.action, ResilienceAction::BreakerTripped)));
    }

    #[test]
    fn panicking_probe_reopens_the_breaker_instead_of_stranding_it() {
        // Trip the breaker with transport failures, wait out a short
        // cooldown, then have the half-open probe attempt panic inside
        // the invoker. The ProbeGuard must route ProbeAborted so the
        // breaker re-opens with the probe slot free — not stay wedged
        // with probe_in_flight=true rejecting every future caller.
        use std::sync::atomic::{AtomicU32, Ordering};
        struct TripThenPanicInvoker {
            calls: AtomicU32,
        }
        impl Invoker for TripThenPanicInvoker {
            fn invoke(
                &self,
                _service: &LocatedService,
                _operation: &str,
                _args: &[Value],
            ) -> Result<Value, WspError> {
                let n = self.calls.fetch_add(1, Ordering::SeqCst);
                if n < 3 {
                    Err(WspError::Transport("down".into()))
                } else {
                    panic!("probe attempt exploded");
                }
            }
            fn handles(&self, endpoint: &str) -> bool {
                endpoint.starts_with("test://")
            }
            fn kind(&self) -> &'static str {
                "trip-then-panic"
            }
        }
        let client = Client::new(EventBus::new());
        client.health().set_config(crate::BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(50),
        });
        client.add_invoker(Arc::new(TripThenPanicInvoker {
            calls: AtomicU32::new(0),
        }));
        let service = test_service();
        // Three failing attempts trip the breaker.
        let handle = client.invoke_async_with_policy(
            service.clone(),
            "echoString",
            vec![],
            instant_policy(3),
        );
        assert!(handle.wait().is_err());
        let breaker = client.health().breaker(&service.endpoint);
        assert_eq!(breaker.state(Instant::now()), crate::BreakerState::Open);
        std::thread::sleep(Duration::from_millis(60));
        // The probe attempt panics; the waiter re-panics with it.
        let handle = client.invoke_async(service.clone(), "echoString", vec![]);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.wait()));
        assert!(unwound.is_err(), "poisoned handle re-panics the waiter");
        // The guard freed the probe slot and re-opened the breaker.
        assert!(!breaker.probe_in_flight(), "probe slot must not strand");
        assert_eq!(breaker.state(Instant::now()), crate::BreakerState::Open);
        // After a fresh cooldown the breaker admits a new probe.
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(breaker.try_acquire(Instant::now()), Admission::Probe);
    }

    #[test]
    fn retryable_failure_fails_over_to_next_endpoint() {
        // Endpoint A always fails at the transport; endpoint B echoes.
        // The locator advertises both, so attempt 2 lands on B.
        struct SplitInvoker;
        impl Invoker for SplitInvoker {
            fn invoke(
                &self,
                service: &LocatedService,
                _operation: &str,
                args: &[Value],
            ) -> Result<Value, WspError> {
                if service.endpoint.contains("primary") {
                    Err(WspError::Transport("unreachable".into()))
                } else {
                    Ok(args.first().cloned().unwrap_or(Value::Null))
                }
            }
            fn handles(&self, endpoint: &str) -> bool {
                endpoint.starts_with("test://")
            }
            fn kind(&self) -> &'static str {
                "split"
            }
        }
        let events = EventBus::new();
        let listener = CollectingListener::new();
        events.add_listener(listener.clone());
        let client = Client::new(events);
        client.add_invoker(Arc::new(SplitInvoker));
        let primary = service_at("test://primary/Echo");
        let backup = service_at("test://backup/Echo");
        client.set_locator(Arc::new(FixedLocator(vec![primary.clone(), backup])));
        let handle = client.invoke_async_with_policy(
            primary,
            "echoString",
            vec![Value::string("over")],
            instant_policy(3),
        );
        let token = handle.token();
        assert_eq!(handle.wait().unwrap(), Value::string("over"));
        client.dispatcher().flush();
        let actions = listener.resilience_for(token);
        assert!(
            actions.iter().any(|e| matches!(
                &e.action,
                ResilienceAction::FailedOver { to } if to == "test://backup/Echo"
            )),
            "failover event names the new endpoint: {actions:?}"
        );
    }

    #[test]
    fn deadline_bounds_the_retry_loop() {
        let events = EventBus::new();
        let listener = CollectingListener::new();
        events.add_listener(listener.clone());
        let client = Client::new(events);
        client.add_invoker(Arc::new(FlakyInvoker::new(u32::MAX)));
        // Backoff (20ms per retry) blows through a 30ms deadline well
        // before the attempt budget is spent.
        let policy = ResiliencePolicy::retrying(50)
            .with_backoff(Duration::from_millis(20), 1.0, Duration::from_millis(20))
            .with_jitter(0.0)
            .with_deadline(Duration::from_millis(30));
        let handle = client.invoke_async_with_policy(
            test_service(),
            "echoString",
            vec![Value::string("x")],
            policy,
        );
        let token = handle.token();
        let err = handle.wait().unwrap_err();
        assert!(
            matches!(
                err,
                WspError::Timeout {
                    what: "call deadline",
                    millis: 30
                }
            ),
            "got {err:?}"
        );
        client.dispatcher().flush();
        let actions = listener.resilience_for(token);
        assert!(actions
            .iter()
            .any(|e| matches!(e.action, ResilienceAction::DeadlineExceeded { .. })));
    }

    /// Sheds the first `sheds` calls with `Overloaded` (hint attached),
    /// then echoes.
    struct SheddingInvoker {
        sheds: u32,
        hint_ms: u64,
        calls: std::sync::atomic::AtomicU32,
    }
    impl Invoker for SheddingInvoker {
        fn invoke(
            &self,
            _service: &LocatedService,
            _operation: &str,
            args: &[Value],
        ) -> Result<Value, WspError> {
            let n = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if n < self.sheds {
                Err(WspError::Overloaded {
                    retry_after_ms: Some(self.hint_ms),
                })
            } else {
                Ok(args.first().cloned().unwrap_or(Value::Null))
            }
        }
        fn handles(&self, endpoint: &str) -> bool {
            endpoint.starts_with("test://")
        }
        fn kind(&self) -> &'static str {
            "shedding"
        }
    }

    #[test]
    fn overloaded_is_retried_and_hint_floors_the_backoff() {
        let client = Client::new(EventBus::new());
        let invoker = Arc::new(SheddingInvoker {
            sheds: 1,
            hint_ms: 60,
            calls: std::sync::atomic::AtomicU32::new(0),
        });
        client.add_invoker(invoker.clone());
        // Zero own backoff: any observed delay is the server's hint.
        let started = Instant::now();
        let out = client
            .invoke_with_policy(
                &test_service(),
                "echoString",
                &[Value::string("hinted")],
                instant_policy(3),
            )
            .unwrap();
        assert_eq!(out, Value::string("hinted"));
        assert_eq!(invoker.calls.load(std::sync::atomic::Ordering::SeqCst), 2);
        assert!(
            started.elapsed() >= Duration::from_millis(60),
            "retry must wait out the server's 60ms hint, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn overload_sheds_do_not_trip_the_breaker() {
        let events = EventBus::new();
        let listener = CollectingListener::new();
        events.add_listener(listener.clone());
        let client = Client::new(events);
        client.add_invoker(Arc::new(SheddingInvoker {
            sheds: 3, // would trip a threshold-3 breaker if sheds counted
            hint_ms: 0,
            calls: std::sync::atomic::AtomicU32::new(0),
        }));
        let handle = client.invoke_async_with_policy(
            test_service(),
            "echoString",
            vec![Value::string("alive")],
            instant_policy(5),
        );
        let token = handle.token();
        assert_eq!(
            handle.wait().unwrap(),
            Value::string("alive"),
            "the 4th attempt must reach the wire, not an open breaker"
        );
        client.dispatcher().flush();
        let actions = listener.resilience_for(token);
        assert!(
            !actions
                .iter()
                .any(|e| matches!(e.action, ResilienceAction::BreakerTripped)),
            "polite sheds must not blacklist a healthy endpoint: {actions:?}"
        );
    }

    #[test]
    fn attempts_run_inside_a_deadline_scope() {
        // The transport must be able to read the call's remaining
        // budget (to serialise it on the wire) via current_deadline().
        struct DeadlineProbe {
            seen: Arc<parking_lot::Mutex<Vec<Option<Instant>>>>,
        }
        impl Invoker for DeadlineProbe {
            fn invoke(
                &self,
                _service: &LocatedService,
                _operation: &str,
                _args: &[Value],
            ) -> Result<Value, WspError> {
                self.seen.lock().push(overload::current_deadline());
                Ok(Value::Null)
            }
            fn handles(&self, endpoint: &str) -> bool {
                endpoint.starts_with("test://")
            }
            fn kind(&self) -> &'static str {
                "probe"
            }
        }
        let client = Client::new(EventBus::new());
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        client.add_invoker(Arc::new(DeadlineProbe { seen: seen.clone() }));
        client
            .invoke_with_policy(
                &test_service(),
                "echoString",
                &[],
                ResiliencePolicy::none().with_deadline(Duration::from_secs(5)),
            )
            .unwrap();
        client.invoke(&test_service(), "echoString", &[]).unwrap();
        let seen = seen.lock();
        assert_eq!(seen.len(), 2);
        assert!(
            seen[0].is_some(),
            "a policy deadline is visible to the transport"
        );
        assert!(seen[1].is_none(), "no deadline, no scope");
    }

    #[test]
    fn replacing_locator_at_runtime() {
        let (client, _) = wired_client();
        assert_eq!(client.locator_kind(), Some("fixed"));
        struct EmptyLocator;
        impl ServiceLocator for EmptyLocator {
            fn locate(&self, _q: &ServiceQuery) -> Result<Vec<LocatedService>, WspError> {
                Ok(vec![])
            }
            fn kind(&self) -> &'static str {
                "empty"
            }
        }
        client.set_locator(Arc::new(EmptyLocator));
        assert_eq!(client.locator_kind(), Some("empty"));
        assert!(client.locate(&ServiceQuery::any()).unwrap().is_empty());
    }
}

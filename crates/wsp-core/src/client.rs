//! The client side of the interface tree: discovery and invocation.

use crate::components::{Invoker, ServiceLocator};
use crate::endpoint::LocatedService;
use crate::error::WspError;
use crate::events::{ClientMessageEvent, DiscoveryMessageEvent, EventBus};
use crate::query::{QueryExpr, ServiceQuery};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wsp_wsdl::Value;

/// The `Client` node: owns a pluggable [`ServiceLocator`] and a set of
/// [`Invoker`]s (one per reachable endpoint scheme), and fires
/// discovery/client events into the shared bus.
///
/// Both synchronous and asynchronous forms are offered; the paper's
/// position is that WSPeer "allows synchronous discovery and
/// invocation, \[but\] is essentially an asynchronous, event driven
/// system".
pub struct Client {
    locator: RwLock<Option<Arc<dyn ServiceLocator>>>,
    invokers: RwLock<Vec<Arc<dyn Invoker>>>,
    events: EventBus,
    tokens: AtomicU64,
}

impl Client {
    pub fn new(events: EventBus) -> Arc<Client> {
        Arc::new(Client {
            locator: RwLock::new(None),
            invokers: RwLock::new(Vec::new()),
            events,
            tokens: AtomicU64::new(1),
        })
    }

    /// Plug in (or replace) the locator — e.g. swap the UDDI locator
    /// for a P2PS one without the application changing.
    pub fn set_locator(&self, locator: Arc<dyn ServiceLocator>) {
        *self.locator.write() = Some(locator);
    }

    /// Add an invoker. Several can coexist; dispatch is by endpoint
    /// scheme.
    pub fn add_invoker(&self, invoker: Arc<dyn Invoker>) {
        self.invokers.write().push(invoker);
    }

    pub fn locator_kind(&self) -> Option<&'static str> {
        self.locator.read().as_ref().map(|l| l.kind())
    }

    fn next_token(&self) -> u64 {
        self.tokens.fetch_add(1, Ordering::Relaxed)
    }

    /// Synchronous discovery. Fires a [`DiscoveryMessageEvent`] as well
    /// as returning the result.
    pub fn locate(&self, query: &ServiceQuery) -> Result<Vec<LocatedService>, WspError> {
        let token = self.next_token();
        let locator = self
            .locator
            .read()
            .clone()
            .ok_or_else(|| WspError::Locate("no ServiceLocator plugged in".into()))?;
        let result = locator.locate(query);
        self.events.fire_discovery(&DiscoveryMessageEvent { token, result: result.clone() });
        result
    }

    /// Rich discovery (the paper's "more complex queries"): push a sound
    /// base query down to the binding's native search, then refine the
    /// results against the full expression using each service's name and
    /// the discovery properties carried in its WSDL.
    pub fn locate_where(&self, expr: &QueryExpr) -> Result<Vec<LocatedService>, WspError> {
        let candidates = self.locate(&expr.base_query())?;
        Ok(candidates
            .into_iter()
            .filter(|s| expr.matches(s.name(), &s.descriptor().properties))
            .collect())
    }

    /// Convenience: the first match, or an error.
    pub fn locate_one(&self, query: &ServiceQuery) -> Result<LocatedService, WspError> {
        self.locate(query)?
            .into_iter()
            .next()
            .ok_or_else(|| WspError::Locate(format!("no service matches {query:?}")))
    }

    /// Asynchronous discovery: returns immediately with a token; the
    /// result arrives as a [`DiscoveryMessageEvent`] with that token.
    pub fn locate_async(self: &Arc<Self>, query: ServiceQuery) -> u64 {
        let token = self.next_token();
        let client = Arc::clone(self);
        std::thread::spawn(move || {
            let result = match client.locator.read().clone() {
                Some(locator) => locator.locate(&query),
                None => Err(WspError::Locate("no ServiceLocator plugged in".into())),
            };
            client.events.fire_discovery(&DiscoveryMessageEvent { token, result });
        });
        token
    }

    fn invoker_for(&self, endpoint: &str) -> Result<Arc<dyn Invoker>, WspError> {
        self.invokers
            .read()
            .iter()
            .find(|i| i.handles(endpoint))
            .cloned()
            .ok_or_else(|| WspError::NoBindingFor {
                scheme: endpoint.split("://").next().unwrap_or("?").to_owned(),
            })
    }

    /// Synchronous invocation: validate, send, await the response.
    pub fn invoke(
        &self,
        service: &LocatedService,
        operation: &str,
        args: &[Value],
    ) -> Result<Value, WspError> {
        if !service.has_operation(operation) {
            return Err(WspError::NoSuchOperation {
                service: service.name().to_owned(),
                operation: operation.to_owned(),
            });
        }
        let invoker = self.invoker_for(&service.endpoint)?;
        let token = self.next_token();
        let result = invoker.invoke(service, operation, args);
        self.events.fire_client(&ClientMessageEvent {
            token,
            service: service.name().to_owned(),
            operation: operation.to_owned(),
            result: result.clone(),
        });
        result
    }

    /// Asynchronous invocation: returns a token immediately; completion
    /// arrives as a [`ClientMessageEvent`]. This is the mode "needed
    /// within a P2P environment" where nodes are unreliable.
    pub fn invoke_async(
        self: &Arc<Self>,
        service: LocatedService,
        operation: impl Into<String>,
        args: Vec<Value>,
    ) -> u64 {
        let token = self.next_token();
        let operation = operation.into();
        let client = Arc::clone(self);
        std::thread::spawn(move || {
            let result = if !service.has_operation(&operation) {
                Err(WspError::NoSuchOperation {
                    service: service.name().to_owned(),
                    operation: operation.clone(),
                })
            } else {
                match client.invoker_for(&service.endpoint) {
                    Ok(invoker) => invoker.invoke(&service, &operation, &args),
                    Err(e) => Err(e),
                }
            };
            client.events.fire_client(&ClientMessageEvent {
                token,
                service: service.name().to_owned(),
                operation,
                result,
            });
        });
        token
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::BindingKind;
    use crate::events::CollectingListener;
    use wsp_wsdl::{ServiceDescriptor, WsdlDocument};

    struct FixedLocator(Vec<LocatedService>);
    impl ServiceLocator for FixedLocator {
        fn locate(&self, _query: &ServiceQuery) -> Result<Vec<LocatedService>, WspError> {
            Ok(self.0.clone())
        }
        fn kind(&self) -> &'static str {
            "fixed"
        }
    }

    struct EchoInvoker;
    impl Invoker for EchoInvoker {
        fn invoke(
            &self,
            _service: &LocatedService,
            _operation: &str,
            args: &[Value],
        ) -> Result<Value, WspError> {
            Ok(args.first().cloned().unwrap_or(Value::Null))
        }
        fn handles(&self, endpoint: &str) -> bool {
            endpoint.starts_with("test://")
        }
        fn kind(&self) -> &'static str {
            "test"
        }
    }

    fn test_service() -> LocatedService {
        LocatedService::new(
            WsdlDocument::new(ServiceDescriptor::echo(), vec![]),
            "test://somewhere/Echo",
            BindingKind::HttpUddi,
        )
    }

    fn wired_client() -> (Arc<Client>, Arc<CollectingListener>) {
        let events = EventBus::new();
        let listener = CollectingListener::new();
        events.add_listener(listener.clone());
        let client = Client::new(events);
        client.set_locator(Arc::new(FixedLocator(vec![test_service()])));
        client.add_invoker(Arc::new(EchoInvoker));
        (client, listener)
    }

    #[test]
    fn locate_fires_event_and_returns() {
        let (client, listener) = wired_client();
        let found = client.locate(&ServiceQuery::by_name("Echo")).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(listener.discoveries.read().len(), 1);
    }

    #[test]
    fn locate_without_locator_errors() {
        let client = Client::new(EventBus::new());
        assert!(matches!(client.locate(&ServiceQuery::any()), Err(WspError::Locate(_))));
    }

    #[test]
    fn invoke_dispatches_by_scheme() {
        let (client, listener) = wired_client();
        let service = client.locate_one(&ServiceQuery::by_name("Echo")).unwrap();
        let out = client.invoke(&service, "echoString", &[Value::string("hello")]).unwrap();
        assert_eq!(out, Value::string("hello"));
        assert_eq!(listener.client_messages.read().len(), 1);
    }

    #[test]
    fn invoke_unknown_scheme_errors() {
        let (client, _) = wired_client();
        let mut service = test_service();
        service.endpoint = "gopher://old/Echo".into();
        let err = client.invoke(&service, "echoString", &[Value::string("x")]).unwrap_err();
        assert!(matches!(err, WspError::NoBindingFor { scheme } if scheme == "gopher"));
    }

    #[test]
    fn invoke_unknown_operation_errors() {
        let (client, _) = wired_client();
        let service = test_service();
        let err = client.invoke(&service, "fly", &[]).unwrap_err();
        assert!(matches!(err, WspError::NoSuchOperation { .. }));
    }

    #[test]
    fn async_paths_fire_events() {
        let (client, listener) = wired_client();
        let locate_token = client.locate_async(ServiceQuery::by_name("Echo"));
        let invoke_token =
            client.invoke_async(test_service(), "echoString", vec![Value::string("async")]);
        // Poll until both events land (threads).
        for _ in 0..200 {
            if listener.discoveries.read().len() == 1 && listener.client_messages.read().len() == 1
            {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(listener.discoveries.read()[0].token, locate_token);
        let client_event = &listener.client_messages.read()[0];
        assert_eq!(client_event.token, invoke_token);
        assert_eq!(client_event.result.as_ref().unwrap(), &Value::string("async"));
    }

    #[test]
    fn replacing_locator_at_runtime() {
        let (client, _) = wired_client();
        assert_eq!(client.locator_kind(), Some("fixed"));
        struct EmptyLocator;
        impl ServiceLocator for EmptyLocator {
            fn locate(&self, _q: &ServiceQuery) -> Result<Vec<LocatedService>, WspError> {
                Ok(vec![])
            }
            fn kind(&self) -> &'static str {
                "empty"
            }
        }
        client.set_locator(Arc::new(EmptyLocator));
        assert_eq!(client.locator_kind(), Some("empty"));
        assert!(client.locate(&ServiceQuery::any()).unwrap().is_empty());
    }
}

//! The client side of the interface tree: discovery and invocation.
//!
//! There is exactly **one** invocation pipeline. Every call — locate or
//! invoke — is a job submitted to the shared [`Dispatcher`]; the
//! asynchronous methods return the [`CallHandle`] and the synchronous
//! methods are `handle.wait()` over the very same submission. The
//! handle's correlation token is the token carried by the matching
//! [`DiscoveryMessageEvent`] / [`ClientMessageEvent`], so callers can
//! pair results delivered through events with the calls they made.

use crate::components::{Invoker, ServiceLocator};
use crate::dispatch::{CallHandle, Dispatcher};
use crate::endpoint::LocatedService;
use crate::error::WspError;
use crate::events::{ClientMessageEvent, DiscoveryMessageEvent, EventBus};
use crate::query::{QueryExpr, ServiceQuery};
use parking_lot::RwLock;
use std::sync::Arc;
use wsp_wsdl::Value;

/// The `Client` node: owns a pluggable [`ServiceLocator`] and a set of
/// [`Invoker`]s (one per reachable endpoint scheme), and fires
/// discovery/client events into the shared bus.
///
/// Both synchronous and asynchronous forms are offered; the paper's
/// position is that WSPeer "allows synchronous discovery and
/// invocation, \[but\] is essentially an asynchronous, event driven
/// system" — here the synchronous forms literally wrap the
/// asynchronous ones.
pub struct Client {
    locator: RwLock<Option<Arc<dyn ServiceLocator>>>,
    invokers: RwLock<Vec<Arc<dyn Invoker>>>,
    events: EventBus,
    dispatcher: Arc<Dispatcher>,
}

impl Client {
    /// A standalone client with its own default-sized dispatcher.
    /// Inside a [`crate::Peer`] the dispatcher is shared instead — see
    /// [`Client::with_dispatcher`].
    pub fn new(events: EventBus) -> Arc<Client> {
        Client::with_dispatcher(events, Dispatcher::with_defaults())
    }

    pub fn with_dispatcher(events: EventBus, dispatcher: Arc<Dispatcher>) -> Arc<Client> {
        Arc::new(Client {
            locator: RwLock::new(None),
            invokers: RwLock::new(Vec::new()),
            events,
            dispatcher,
        })
    }

    /// The dispatch core this client submits every call to.
    pub fn dispatcher(&self) -> &Arc<Dispatcher> {
        &self.dispatcher
    }

    /// Plug in (or replace) the locator — e.g. swap the UDDI locator
    /// for a P2PS one without the application changing.
    pub fn set_locator(&self, locator: Arc<dyn ServiceLocator>) {
        *self.locator.write() = Some(locator);
    }

    /// Add an invoker. Several can coexist; dispatch is by endpoint
    /// scheme.
    pub fn add_invoker(&self, invoker: Arc<dyn Invoker>) {
        self.invokers.write().push(invoker);
    }

    pub fn locator_kind(&self) -> Option<&'static str> {
        self.locator.read().as_ref().map(|l| l.kind())
    }

    /// Wrap a submission failure (shut-down dispatcher) as an
    /// already-failed handle so the async API stays infallible.
    fn failed_handle<T: Send + 'static>(
        &self,
        token: u64,
        error: WspError,
    ) -> CallHandle<Result<T, WspError>> {
        let (handle, completer) = self.dispatcher.register(token);
        completer.complete(Err(error));
        handle
    }

    /// Asynchronous discovery: submits to the dispatcher and returns a
    /// [`CallHandle`] immediately. The result also arrives as a
    /// [`DiscoveryMessageEvent`] carrying the handle's token.
    pub fn locate_async(
        &self,
        query: ServiceQuery,
    ) -> CallHandle<Result<Vec<LocatedService>, WspError>> {
        let token = self.dispatcher.next_token();
        let locator = self.locator.read().clone();
        let events = self.events.clone();
        let job = move || {
            let result = match locator {
                Some(locator) => locator.locate(&query),
                None => Err(WspError::Locate("no ServiceLocator plugged in".into())),
            };
            events.fire_discovery(&DiscoveryMessageEvent {
                token,
                result: result.clone(),
            });
            result
        };
        match self.dispatcher.submit_with_token(token, job) {
            Ok(handle) => handle,
            Err(e) => self.failed_handle(token, e),
        }
    }

    /// Synchronous discovery: [`Client::locate_async`] + wait. Fires a
    /// [`DiscoveryMessageEvent`] as well as returning the result.
    pub fn locate(&self, query: &ServiceQuery) -> Result<Vec<LocatedService>, WspError> {
        self.locate_async(query.clone()).wait()
    }

    /// Rich discovery (the paper's "more complex queries"): push a sound
    /// base query down to the binding's native search, then refine the
    /// results against the full expression using each service's name and
    /// the discovery properties carried in its WSDL.
    pub fn locate_where(&self, expr: &QueryExpr) -> Result<Vec<LocatedService>, WspError> {
        let candidates = self.locate(&expr.base_query())?;
        Ok(candidates
            .into_iter()
            .filter(|s| expr.matches(s.name(), &s.descriptor().properties))
            .collect())
    }

    /// Convenience: the first match, or an error.
    pub fn locate_one(&self, query: &ServiceQuery) -> Result<LocatedService, WspError> {
        self.locate(query)?
            .into_iter()
            .next()
            .ok_or_else(|| WspError::Locate(format!("no service matches {query:?}")))
    }

    /// Asynchronous invocation: submits to the dispatcher and returns a
    /// [`CallHandle`] immediately. Completion also arrives as a
    /// [`ClientMessageEvent`] carrying the handle's token. This is the
    /// mode "needed within a P2P environment" where nodes are
    /// unreliable.
    pub fn invoke_async(
        &self,
        service: LocatedService,
        operation: impl Into<String>,
        args: Vec<Value>,
    ) -> CallHandle<Result<Value, WspError>> {
        let token = self.dispatcher.next_token();
        let operation = operation.into();
        let invokers: Vec<Arc<dyn Invoker>> = self.invokers.read().clone();
        let events = self.events.clone();
        let job = move || {
            let result = if !service.has_operation(&operation) {
                Err(WspError::NoSuchOperation {
                    service: service.name().to_owned(),
                    operation: operation.clone(),
                })
            } else {
                match invokers.iter().find(|i| i.handles(&service.endpoint)) {
                    Some(invoker) => invoker.invoke(&service, &operation, &args),
                    None => Err(WspError::NoBindingFor {
                        scheme: service
                            .endpoint
                            .split("://")
                            .next()
                            .unwrap_or("?")
                            .to_owned(),
                    }),
                }
            };
            events.fire_client(&ClientMessageEvent {
                token,
                service: service.name().to_owned(),
                operation,
                result: result.clone(),
            });
            result
        };
        match self.dispatcher.submit_with_token(token, job) {
            Ok(handle) => handle,
            Err(e) => self.failed_handle(token, e),
        }
    }

    /// Synchronous invocation: [`Client::invoke_async`] + wait — the
    /// same validated, event-firing pipeline, not a separate path.
    pub fn invoke(
        &self,
        service: &LocatedService,
        operation: &str,
        args: &[Value],
    ) -> Result<Value, WspError> {
        self.invoke_async(service.clone(), operation, args.to_vec())
            .wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::BindingKind;
    use crate::events::CollectingListener;
    use wsp_wsdl::{ServiceDescriptor, WsdlDocument};

    struct FixedLocator(Vec<LocatedService>);
    impl ServiceLocator for FixedLocator {
        fn locate(&self, _query: &ServiceQuery) -> Result<Vec<LocatedService>, WspError> {
            Ok(self.0.clone())
        }
        fn kind(&self) -> &'static str {
            "fixed"
        }
    }

    struct EchoInvoker;
    impl Invoker for EchoInvoker {
        fn invoke(
            &self,
            _service: &LocatedService,
            _operation: &str,
            args: &[Value],
        ) -> Result<Value, WspError> {
            Ok(args.first().cloned().unwrap_or(Value::Null))
        }
        fn handles(&self, endpoint: &str) -> bool {
            endpoint.starts_with("test://")
        }
        fn kind(&self) -> &'static str {
            "test"
        }
    }

    fn test_service() -> LocatedService {
        LocatedService::new(
            WsdlDocument::new(ServiceDescriptor::echo(), vec![]),
            "test://somewhere/Echo",
            BindingKind::HttpUddi,
        )
    }

    fn wired_client() -> (Arc<Client>, Arc<CollectingListener>) {
        let events = EventBus::new();
        let listener = CollectingListener::new();
        events.add_listener(listener.clone());
        let client = Client::new(events);
        client.set_locator(Arc::new(FixedLocator(vec![test_service()])));
        client.add_invoker(Arc::new(EchoInvoker));
        (client, listener)
    }

    #[test]
    fn locate_fires_event_and_returns() {
        let (client, listener) = wired_client();
        let found = client.locate(&ServiceQuery::by_name("Echo")).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(listener.discoveries.read().len(), 1);
    }

    #[test]
    fn locate_without_locator_errors() {
        let client = Client::new(EventBus::new());
        assert!(matches!(
            client.locate(&ServiceQuery::any()),
            Err(WspError::Locate(_))
        ));
    }

    #[test]
    fn invoke_dispatches_by_scheme() {
        let (client, listener) = wired_client();
        let service = client.locate_one(&ServiceQuery::by_name("Echo")).unwrap();
        let out = client
            .invoke(&service, "echoString", &[Value::string("hello")])
            .unwrap();
        assert_eq!(out, Value::string("hello"));
        assert_eq!(listener.client_messages.read().len(), 1);
    }

    #[test]
    fn invoke_unknown_scheme_errors() {
        let (client, _) = wired_client();
        let mut service = test_service();
        service.endpoint = "gopher://old/Echo".into();
        let err = client
            .invoke(&service, "echoString", &[Value::string("x")])
            .unwrap_err();
        assert!(matches!(err, WspError::NoBindingFor { scheme } if scheme == "gopher"));
    }

    #[test]
    fn invoke_unknown_operation_errors() {
        let (client, _) = wired_client();
        let service = test_service();
        let err = client.invoke(&service, "fly", &[]).unwrap_err();
        assert!(matches!(err, WspError::NoSuchOperation { .. }));
    }

    #[test]
    fn async_paths_fire_events() {
        let (client, listener) = wired_client();
        let locate_handle = client.locate_async(ServiceQuery::by_name("Echo"));
        let invoke_handle =
            client.invoke_async(test_service(), "echoString", vec![Value::string("async")]);
        // Deterministic barrier: both jobs (and the events they fire)
        // complete before flush returns — no poll-and-sleep loop.
        client.dispatcher().flush();
        let discovery = listener
            .discovery_for(locate_handle.token())
            .expect("discovery event carries the handle's token");
        assert_eq!(discovery.result.unwrap().len(), 1);
        let client_event = listener
            .client_message_for(invoke_handle.token())
            .expect("client event carries the handle's token");
        assert_eq!(
            client_event.result.as_ref().unwrap(),
            &Value::string("async")
        );
        assert_eq!(invoke_handle.wait().unwrap(), Value::string("async"));
    }

    #[test]
    fn invoke_returns_correlation_token_to_caller() {
        let (client, listener) = wired_client();
        let handle = client.invoke_async(test_service(), "echoString", vec![Value::string("t")]);
        let token = handle.token();
        assert_eq!(handle.wait().unwrap(), Value::string("t"));
        let event = listener
            .client_message_for(token)
            .expect("event matched by returned token");
        assert_eq!(event.operation, "echoString");
    }

    #[test]
    fn failed_invocations_complete_handle_and_fire_event() {
        let (client, listener) = wired_client();
        let handle = client.invoke_async(test_service(), "fly", vec![]);
        let token = handle.token();
        assert!(matches!(
            handle.wait(),
            Err(WspError::NoSuchOperation { .. })
        ));
        let event = listener
            .client_message_for(token)
            .expect("error still fires an event");
        assert!(event.result.is_err());
    }

    #[test]
    fn replacing_locator_at_runtime() {
        let (client, _) = wired_client();
        assert_eq!(client.locator_kind(), Some("fixed"));
        struct EmptyLocator;
        impl ServiceLocator for EmptyLocator {
            fn locate(&self, _q: &ServiceQuery) -> Result<Vec<LocatedService>, WspError> {
                Ok(vec![])
            }
            fn kind(&self) -> &'static str {
                "empty"
            }
        }
        client.set_locator(Arc::new(EmptyLocator));
        assert_eq!(client.locator_kind(), Some("empty"));
        assert!(client.locate(&ServiceQuery::any()).unwrap().is_empty());
    }
}

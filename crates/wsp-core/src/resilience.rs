//! Per-call resilience policies: deadlines, retries, backoff.
//!
//! The paper's scalability argument (Section II) rests on interacting
//! with "unreliable" peers exhibiting "highly transient connectivity".
//! A [`ResiliencePolicy`] makes that survivable: it bounds how long one
//! logical call may take (deadline), how many transport attempts it may
//! spend (max attempts), and how attempts are spaced (jittered
//! exponential backoff). The [`crate::Client`] consults the policy on
//! every retryable failure, and the per-endpoint circuit breakers in
//! [`crate::health`] decide which endpoints are worth an attempt at
//! all.
//!
//! The backoff schedule is defined *pre-jitter* and is the part with
//! hard invariants (property-tested in `tests/prop_backoff.rs`):
//! delays are monotone non-decreasing, each respects the cap, and the
//! schedule is truncated so the summed delays never exceed the
//! deadline. Jitter only ever shortens a delay (full-jitter-down), so
//! the invariants survive it.

use crate::error::WspError;
use rand::Rng;
use std::time::Duration;

/// How a [`WspError`] is classified for retry purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// Transport-level or timing failures that a retry (possibly against
    /// another endpoint) can plausibly fix.
    Transient,
    /// Definitive answers — semantic faults, validation errors,
    /// cancellation — that retrying would only repeat.
    Permanent,
}

impl WspError {
    /// Retry classification of this error. Transient: transport
    /// failures, timeouts, discovery failures, dispatch-core rejection
    /// and open circuits (another endpoint may still answer).
    /// Permanent: SOAP faults, validation errors (`Invoke`), missing
    /// operations/bindings, cancellation, deploy/publish failures.
    pub fn retry_class(&self) -> RetryClass {
        match self {
            WspError::Transport(_)
            | WspError::Timeout { .. }
            | WspError::Locate(_)
            | WspError::Dispatch(_)
            | WspError::Overloaded { .. }
            | WspError::CircuitOpen { .. } => RetryClass::Transient,
            WspError::Invoke(_)
            | WspError::Fault(_)
            | WspError::Deploy(_)
            | WspError::Publish(_)
            | WspError::NoBindingFor { .. }
            | WspError::Cancelled { .. }
            | WspError::NoSuchOperation { .. } => RetryClass::Permanent,
        }
    }

    /// Whether this error should trip/count against an endpoint's
    /// circuit breaker. Only failures that say something about the
    /// *endpoint* count — an open circuit (our own rejection) or a
    /// missing local binding does not. An [`WspError::Overloaded`]
    /// shed does not either: the endpoint answered promptly and is
    /// alive, just busy — tripping the breaker would turn a polite
    /// load-shed into a blackout of a healthy peer.
    pub fn counts_against_endpoint(&self) -> bool {
        matches!(self, WspError::Transport(_) | WspError::Timeout { .. })
    }
}

/// A per-call resilience policy.
///
/// The default policy is a single attempt with no deadline — exactly
/// the pre-resilience behaviour, so plain [`crate::Client::invoke`]
/// semantics are unchanged until a policy is installed.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePolicy {
    /// Wall-clock budget for the whole call, all attempts and backoffs
    /// included. `None` means unbounded.
    pub deadline: Option<Duration>,
    /// Maximum transport attempts (≥ 1).
    pub max_attempts: u32,
    /// Pre-jitter delay before the second attempt.
    pub base_backoff: Duration,
    /// Growth factor per further attempt (≥ 1).
    pub multiplier: f64,
    /// Upper bound on any single pre-jitter delay.
    pub max_backoff: Duration,
    /// Fraction of each delay randomised away, in `[0, 1]`: the actual
    /// sleep is uniform in `[(1 − jitter) · d, d]`. Jitter only
    /// shortens, so deadline maths done pre-jitter stay valid.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream (combined with the call
    /// token, so concurrent calls de-correlate but a rerun reproduces).
    pub jitter_seed: u64,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy::none()
    }
}

impl ResiliencePolicy {
    /// Single attempt, no deadline, no backoff — the legacy behaviour.
    pub fn none() -> Self {
        ResiliencePolicy {
            deadline: None,
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            multiplier: 2.0,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
            jitter_seed: 0,
        }
    }

    /// A sensible retrying policy: `max_attempts` attempts, 50 ms base
    /// backoff doubling up to 1 s, 20% jitter, no deadline.
    pub fn retrying(max_attempts: u32) -> Self {
        ResiliencePolicy {
            deadline: None,
            max_attempts: max_attempts.max(1),
            base_backoff: Duration::from_millis(50),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(1),
            jitter: 0.2,
            jitter_seed: 0,
        }
    }

    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub fn with_backoff(mut self, base: Duration, multiplier: f64, cap: Duration) -> Self {
        self.base_backoff = base;
        self.multiplier = multiplier.max(1.0);
        self.max_backoff = cap;
        self
    }

    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Does the policy ever retry?
    pub fn retries_enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Should a failed attempt with `error` be retried (attempt budget
    /// permitting)?
    pub fn is_retryable(&self, error: &WspError) -> bool {
        error.retry_class() == RetryClass::Transient
    }

    /// The pre-jitter delay before attempt `attempt` (1-based; the
    /// first retry is attempt 2), before deadline truncation. `None`
    /// for attempt 1 or attempts beyond the budget.
    pub fn backoff_before(&self, attempt: u32) -> Option<Duration> {
        if attempt < 2 || attempt > self.max_attempts {
            return None;
        }
        let exp = (attempt - 2) as i32;
        let factor = self.multiplier.max(1.0).powi(exp);
        let raw = self.base_backoff.as_secs_f64() * factor;
        let capped = raw.min(self.max_backoff.as_secs_f64());
        Some(Duration::from_secs_f64(capped.max(0.0)))
    }

    /// The full pre-jitter backoff schedule: one delay per retry
    /// (attempts 2 ..= `max_attempts`), truncated so the cumulative
    /// delay never exceeds the deadline. These are the delays the
    /// property tests pin down.
    pub fn schedule(&self) -> Vec<Duration> {
        let mut delays = Vec::new();
        let mut total = Duration::ZERO;
        for attempt in 2..=self.max_attempts {
            let Some(delay) = self.backoff_before(attempt) else {
                break;
            };
            if let Some(deadline) = self.deadline {
                if total + delay > deadline {
                    break;
                }
            }
            total += delay;
            delays.push(delay);
        }
        delays
    }

    /// Apply jitter to a pre-jitter delay: uniform in
    /// `[(1 − jitter) · delay, delay]`. Never lengthens.
    pub fn jittered<R: Rng>(&self, delay: Duration, rng: &mut R) -> Duration {
        if self.jitter <= 0.0 || delay.is_zero() {
            return delay;
        }
        let keep = 1.0 - self.jitter.clamp(0.0, 1.0) * rng.random::<f64>();
        Duration::from_secs_f64(delay.as_secs_f64() * keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_policy_is_single_attempt() {
        let p = ResiliencePolicy::default();
        assert_eq!(p.max_attempts, 1);
        assert!(!p.retries_enabled());
        assert!(p.schedule().is_empty());
        assert_eq!(p.backoff_before(1), None);
        assert_eq!(p.backoff_before(2), None);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = ResiliencePolicy::retrying(6).with_backoff(
            Duration::from_millis(100),
            2.0,
            Duration::from_millis(450),
        );
        let schedule = p.schedule();
        assert_eq!(
            schedule,
            vec![
                Duration::from_millis(100),
                Duration::from_millis(200),
                Duration::from_millis(400),
                Duration::from_millis(450),
                Duration::from_millis(450),
            ]
        );
    }

    #[test]
    fn deadline_truncates_schedule() {
        let p = ResiliencePolicy::retrying(10)
            .with_backoff(Duration::from_millis(100), 1.0, Duration::from_secs(1))
            .with_deadline(Duration::from_millis(250));
        // 100 + 100 fits in 250ms; a third 100 would exceed it.
        assert_eq!(p.schedule().len(), 2);
    }

    #[test]
    fn jitter_only_shortens() {
        let p = ResiliencePolicy::retrying(3).with_jitter(0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let delay = Duration::from_millis(100);
        for _ in 0..100 {
            let j = p.jittered(delay, &mut rng);
            assert!(j <= delay);
            assert!(j >= Duration::from_millis(50));
        }
    }

    #[test]
    fn classification_separates_transient_from_permanent() {
        assert_eq!(
            WspError::Transport("conn refused".into()).retry_class(),
            RetryClass::Transient
        );
        assert_eq!(
            WspError::Timeout {
                what: "invoke",
                millis: 5
            }
            .retry_class(),
            RetryClass::Transient
        );
        assert_eq!(
            WspError::CircuitOpen {
                endpoint: "http://x".into()
            }
            .retry_class(),
            RetryClass::Transient
        );
        assert_eq!(
            WspError::Invoke("bad arg".into()).retry_class(),
            RetryClass::Permanent
        );
        assert_eq!(
            WspError::NoSuchOperation {
                service: "S".into(),
                operation: "op".into()
            }
            .retry_class(),
            RetryClass::Permanent
        );
        assert_eq!(
            WspError::Cancelled { token: 1 }.retry_class(),
            RetryClass::Permanent
        );
        assert_eq!(
            WspError::Overloaded {
                retry_after_ms: Some(100)
            }
            .retry_class(),
            RetryClass::Transient,
            "a shed request is worth retrying — after the hinted backoff"
        );
    }

    #[test]
    fn breaker_accounting_only_counts_endpoint_failures() {
        assert!(WspError::Transport("x".into()).counts_against_endpoint());
        assert!(WspError::Timeout {
            what: "t",
            millis: 1
        }
        .counts_against_endpoint());
        assert!(!WspError::CircuitOpen {
            endpoint: "e".into()
        }
        .counts_against_endpoint());
        assert!(!WspError::Invoke("x".into()).counts_against_endpoint());
        assert!(
            !WspError::Overloaded {
                retry_after_ms: None
            }
            .counts_against_endpoint(),
            "a shed means the endpoint is alive — it must not trip the breaker"
        );
    }
}

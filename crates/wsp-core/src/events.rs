//! The event model: WSPeer is "essentially an asynchronous, event
//! driven system in which components subscribe to events and are
//! notified when and if responses are returned" (Section III).
//!
//! The five event kinds mirror the paper's `PeerMessageListener`
//! interface verbatim: discovery, publish, client, server and
//! deployment messages. Every node of the interface tree fires into the
//! same [`EventBus`], which propagates to listeners registered at the
//! `Peer` root.

use crate::endpoint::LocatedService;
use crate::error::WspError;
use parking_lot::RwLock;
use std::sync::Arc;
use wsp_soap::Envelope;
use wsp_wsdl::Value;

/// Fired by the `ServiceLocator` when discovery completes or fails.
#[derive(Debug, Clone)]
pub struct DiscoveryMessageEvent {
    /// The application token passed to the locate call.
    pub token: u64,
    pub result: Result<Vec<LocatedService>, WspError>,
}

/// Fired by the `ServicePublisher` after a publish attempt.
#[derive(Debug, Clone)]
pub struct PublishMessageEvent {
    pub service: String,
    /// Where the description was made available (registry key, advert
    /// address, …).
    pub result: Result<String, WspError>,
}

/// Fired by the `Invocation` machinery when a response (or failure)
/// comes back for an asynchronous call.
#[derive(Debug, Clone)]
pub struct ClientMessageEvent {
    /// The application token passed to the invoke call.
    pub token: u64,
    pub service: String,
    pub operation: String,
    pub result: Result<Value, WspError>,
}

/// Which side of the messaging engine a server message was observed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerPhase {
    /// The raw request, before the engine processes it — the
    /// application may handle it directly (Section III, point 2).
    Inbound,
    /// The response, after the engine produced it.
    Outbound,
}

/// Fired by the `Server` for traffic through hosted services.
#[derive(Debug, Clone)]
pub struct ServerMessageEvent {
    pub service: String,
    pub phase: ServerPhase,
    pub envelope: Envelope,
}

/// Fired by the `ServiceDeployer` when a service is (un)deployed.
#[derive(Debug, Clone)]
pub struct DeploymentMessageEvent {
    pub service: String,
    /// Endpoint URIs now serving the service; empty on undeploy.
    pub endpoints: Vec<String>,
}

/// The paper's five-method listener interface. All methods default to
/// no-ops so applications implement only what they subscribe to.
#[allow(unused_variables)]
pub trait PeerMessageListener: Send + Sync {
    fn on_discovery(&self, event: &DiscoveryMessageEvent) {}
    fn on_publish(&self, event: &PublishMessageEvent) {}
    fn on_client_message(&self, event: &ClientMessageEvent) {}
    fn on_server_message(&self, event: &ServerMessageEvent) {}
    fn on_deployment(&self, event: &DeploymentMessageEvent) {}
}

/// The event fan-out shared by every node in the interface tree.
/// Cloning shares the listener set (events "propagate upwards to the
/// root of the interface tree").
#[derive(Clone, Default)]
pub struct EventBus {
    listeners: Arc<RwLock<Vec<Arc<dyn PeerMessageListener>>>>,
}

impl EventBus {
    pub fn new() -> Self {
        EventBus::default()
    }

    /// Register an application listener.
    pub fn add_listener(&self, listener: Arc<dyn PeerMessageListener>) {
        self.listeners.write().push(listener);
    }

    pub fn listener_count(&self) -> usize {
        self.listeners.read().len()
    }

    pub fn fire_discovery(&self, event: &DiscoveryMessageEvent) {
        for l in self.listeners.read().iter() {
            l.on_discovery(event);
        }
    }

    pub fn fire_publish(&self, event: &PublishMessageEvent) {
        for l in self.listeners.read().iter() {
            l.on_publish(event);
        }
    }

    pub fn fire_client(&self, event: &ClientMessageEvent) {
        for l in self.listeners.read().iter() {
            l.on_client_message(event);
        }
    }

    pub fn fire_server(&self, event: &ServerMessageEvent) {
        for l in self.listeners.read().iter() {
            l.on_server_message(event);
        }
    }

    pub fn fire_deployment(&self, event: &DeploymentMessageEvent) {
        for l in self.listeners.read().iter() {
            l.on_deployment(event);
        }
    }
}

/// A listener that records everything — used by tests and examples to
/// observe the asynchronous flows.
#[derive(Default)]
pub struct CollectingListener {
    pub discoveries: RwLock<Vec<DiscoveryMessageEvent>>,
    pub publishes: RwLock<Vec<PublishMessageEvent>>,
    pub client_messages: RwLock<Vec<ClientMessageEvent>>,
    pub server_messages: RwLock<Vec<ServerMessageEvent>>,
    pub deployments: RwLock<Vec<DeploymentMessageEvent>>,
}

impl CollectingListener {
    pub fn new() -> Arc<Self> {
        Arc::new(CollectingListener::default())
    }

    /// Total events observed.
    pub fn total(&self) -> usize {
        self.discoveries.read().len()
            + self.publishes.read().len()
            + self.client_messages.read().len()
            + self.server_messages.read().len()
            + self.deployments.read().len()
    }
}

impl PeerMessageListener for CollectingListener {
    fn on_discovery(&self, event: &DiscoveryMessageEvent) {
        self.discoveries.write().push(event.clone());
    }

    fn on_publish(&self, event: &PublishMessageEvent) {
        self.publishes.write().push(event.clone());
    }

    fn on_client_message(&self, event: &ClientMessageEvent) {
        self.client_messages.write().push(event.clone());
    }

    fn on_server_message(&self, event: &ServerMessageEvent) {
        self.server_messages.write().push(event.clone());
    }

    fn on_deployment(&self, event: &DeploymentMessageEvent) {
        self.deployments.write().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listeners_receive_fired_events() {
        let bus = EventBus::new();
        let listener = CollectingListener::new();
        bus.add_listener(listener.clone());
        bus.fire_deployment(&DeploymentMessageEvent {
            service: "Echo".into(),
            endpoints: vec!["http://h/Echo".into()],
        });
        bus.fire_publish(&PublishMessageEvent { service: "Echo".into(), result: Ok("uuid:svc-1".into()) });
        assert_eq!(listener.deployments.read().len(), 1);
        assert_eq!(listener.publishes.read().len(), 1);
        assert_eq!(listener.total(), 2);
    }

    #[test]
    fn cloned_bus_shares_listeners() {
        let bus = EventBus::new();
        let cloned = bus.clone();
        let listener = CollectingListener::new();
        bus.add_listener(listener.clone());
        assert_eq!(cloned.listener_count(), 1);
        cloned.fire_discovery(&DiscoveryMessageEvent { token: 1, result: Ok(vec![]) });
        assert_eq!(listener.discoveries.read().len(), 1);
    }

    #[test]
    fn multiple_listeners_all_notified() {
        let bus = EventBus::new();
        let a = CollectingListener::new();
        let b = CollectingListener::new();
        bus.add_listener(a.clone());
        bus.add_listener(b.clone());
        bus.fire_client(&ClientMessageEvent {
            token: 9,
            service: "Echo".into(),
            operation: "echoString".into(),
            result: Ok(Value::string("hi")),
        });
        assert_eq!(a.client_messages.read().len(), 1);
        assert_eq!(b.client_messages.read().len(), 1);
    }

    #[test]
    fn default_listener_methods_are_noops() {
        struct OnlyDiscovery;
        impl PeerMessageListener for OnlyDiscovery {}
        let bus = EventBus::new();
        bus.add_listener(Arc::new(OnlyDiscovery));
        // Firing other kinds must not panic.
        bus.fire_server(&ServerMessageEvent {
            service: "S".into(),
            phase: ServerPhase::Inbound,
            envelope: Envelope::empty(),
        });
    }
}

//! The event model: WSPeer is "essentially an asynchronous, event
//! driven system in which components subscribe to events and are
//! notified when and if responses are returned" (Section III).
//!
//! The five event kinds mirror the paper's `PeerMessageListener`
//! interface verbatim: discovery, publish, client, server and
//! deployment messages. Every node of the interface tree fires into the
//! same [`EventBus`], which propagates to listeners registered at the
//! `Peer` root.
//!
//! Delivery is **non-blocking with respect to the listener set**: the
//! bus snapshots the listeners before invoking any of them, so a
//! listener may call [`EventBus::add_listener`] (or fire further
//! events) from inside its callback without deadlocking the bus. Each
//! listener is panic-isolated — one throwing listener neither kills
//! the delivering thread nor starves the listeners after it. Buses
//! default to [`DeliveryMode::Immediate`] (callbacks run on the firing
//! thread, as the paper's Java listeners do); switching to
//! [`DeliveryMode::Queued`] defers callbacks until [`EventBus::flush`],
//! which tests use as a deterministic barrier.

use crate::endpoint::LocatedService;
use crate::error::WspError;
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use wsp_soap::Envelope;
use wsp_wsdl::Value;

/// Fired by the `ServiceLocator` when discovery completes or fails.
#[derive(Debug, Clone)]
pub struct DiscoveryMessageEvent {
    /// The correlation token of the locate call (matches the
    /// `CallHandle` token for dispatcher-routed locates).
    pub token: u64,
    pub result: Result<Vec<LocatedService>, WspError>,
}

/// Fired by the `ServicePublisher` after a publish attempt.
#[derive(Debug, Clone)]
pub struct PublishMessageEvent {
    pub service: String,
    /// Where the description was made available (registry key, advert
    /// address, …).
    pub result: Result<String, WspError>,
}

/// Fired by the `Invocation` machinery when a response (or failure)
/// comes back for an asynchronous call.
#[derive(Debug, Clone)]
pub struct ClientMessageEvent {
    /// The correlation token of the invoke call (matches the
    /// `CallHandle` token for dispatcher-routed invokes).
    pub token: u64,
    pub service: String,
    pub operation: String,
    pub result: Result<Value, WspError>,
}

/// Which side of the messaging engine a server message was observed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerPhase {
    /// The raw request, before the engine processes it — the
    /// application may handle it directly (Section III, point 2).
    Inbound,
    /// The response, after the engine produced it.
    Outbound,
}

/// Fired by the `Server` for traffic through hosted services.
#[derive(Debug, Clone)]
pub struct ServerMessageEvent {
    pub service: String,
    pub phase: ServerPhase,
    pub envelope: Envelope,
}

/// Fired by the `ServiceDeployer` when a service is (un)deployed.
#[derive(Debug, Clone)]
pub struct DeploymentMessageEvent {
    pub service: String,
    /// Endpoint URIs now serving the service; empty on undeploy.
    pub endpoints: Vec<String>,
}

/// What a resilience event reports (see [`ResilienceMessageEvent`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResilienceAction {
    /// One transport attempt failed; `will_retry` says whether the
    /// policy grants another.
    AttemptFailed {
        attempt: u32,
        error: String,
        will_retry: bool,
    },
    /// A retryable failure re-resolved via the locator and the next
    /// attempt targets `to` instead of the event's `endpoint`.
    FailedOver { to: String },
    /// The endpoint's circuit breaker tripped (closed → open, or a
    /// failed half-open probe re-opening).
    BreakerTripped,
    /// A half-open probe attempt was admitted against the endpoint.
    BreakerProbe,
    /// A successful probe closed the endpoint's breaker.
    BreakerRecovered,
    /// The per-call deadline expired; no further attempts.
    DeadlineExceeded { after_attempts: u32 },
}

/// Fired by the resilience layer in [`crate::Client`] so applications
/// observe degradation asynchronously — every failed attempt, breaker
/// trip/probe/recovery, failover and deadline expiry, correlated to
/// the invoke call by `token` (Section II's asynchronous interaction
/// with unreliable peers, applied to failure reporting).
#[derive(Debug, Clone)]
pub struct ResilienceMessageEvent {
    /// The correlation token of the invoke call.
    pub token: u64,
    pub service: String,
    /// The endpoint the action concerns (for `FailedOver`, the one
    /// being abandoned).
    pub endpoint: String,
    pub action: ResilienceAction,
}

/// Phase of a host's graceful-drain lifecycle (see
/// [`LifecycleMessageEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecyclePhase {
    /// The host stopped accepting new work; in-flight work continues.
    DrainStarted,
    /// Every admitted request finished inside the drain deadline.
    DrainCompleted,
    /// The drain deadline passed with work still in flight; the host
    /// stopped anyway (the only path that drops admitted work besides
    /// an abrupt `shutdown_now`).
    DrainTimedOut,
}

/// Fired by hosts and servers as they drain and stop — the
/// observability half of graceful shutdown, so an application (or an
/// overload episode's trace) can tell a clean drain from a drop.
#[derive(Debug, Clone)]
pub struct LifecycleMessageEvent {
    /// What is draining: a host address (`http://0.0.0.0:8080`) or a
    /// service name for per-service undeploy drains.
    pub subject: String,
    pub phase: LifecyclePhase,
    /// Requests still in flight when the phase was entered.
    pub in_flight: usize,
}

/// The paper's five-method listener interface. All methods default to
/// no-ops so applications implement only what they subscribe to.
#[allow(unused_variables)]
pub trait PeerMessageListener: Send + Sync {
    fn on_discovery(&self, event: &DiscoveryMessageEvent) {}
    fn on_publish(&self, event: &PublishMessageEvent) {}
    fn on_client_message(&self, event: &ClientMessageEvent) {}
    fn on_server_message(&self, event: &ServerMessageEvent) {}
    fn on_deployment(&self, event: &DeploymentMessageEvent) {}
    /// Resilience extension (beyond the paper's five): degradation
    /// signals from the retry/breaker/failover machinery.
    fn on_resilience(&self, event: &ResilienceMessageEvent) {}
    /// Lifecycle extension: drain/shutdown progress of hosts and
    /// services.
    fn on_lifecycle(&self, event: &LifecycleMessageEvent) {}
}

/// When listener callbacks run relative to the `fire_*` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// Callbacks run on the firing thread, before `fire_*` returns.
    #[default]
    Immediate,
    /// Events accumulate until [`EventBus::flush`] delivers them on
    /// the flushing thread, in fire order.
    Queued,
}

/// One deferred event, any kind.
enum QueuedEvent {
    Discovery(DiscoveryMessageEvent),
    Publish(PublishMessageEvent),
    Client(ClientMessageEvent),
    Server(ServerMessageEvent),
    Deployment(DeploymentMessageEvent),
    Resilience(ResilienceMessageEvent),
    Lifecycle(LifecycleMessageEvent),
}

#[derive(Default)]
struct BusInner {
    listeners: RwLock<Vec<Arc<dyn PeerMessageListener>>>,
    mode: RwLock<DeliveryMode>,
    queue: Mutex<VecDeque<QueuedEvent>>,
    listener_panics: AtomicUsize,
    /// Threads currently inside [`EventBus::flush`]. A re-entrant flush
    /// (a listener flushing from inside a queued delivery) must be a
    /// no-op: the outer flush already drains the queue, and letting the
    /// inner one run would deliver later events to other listeners
    /// before they have seen the current one.
    flushing: Mutex<Vec<std::thread::ThreadId>>,
}

/// Removes the current thread from the bus's flushing set on drop, so
/// the marker cannot leak even if delivery unwinds.
struct FlushGuard<'bus> {
    inner: &'bus BusInner,
    me: std::thread::ThreadId,
}

impl Drop for FlushGuard<'_> {
    fn drop(&mut self) {
        self.inner.flushing.lock().retain(|id| *id != self.me);
    }
}

/// The event fan-out shared by every node in the interface tree.
/// Cloning shares the listener set (events "propagate upwards to the
/// root of the interface tree").
#[derive(Clone, Default)]
pub struct EventBus {
    inner: Arc<BusInner>,
}

impl EventBus {
    pub fn new() -> Self {
        EventBus::default()
    }

    /// Register an application listener. Safe to call from inside a
    /// listener callback; the new listener sees subsequent events.
    pub fn add_listener(&self, listener: Arc<dyn PeerMessageListener>) {
        self.inner.listeners.write().push(listener);
    }

    pub fn listener_count(&self) -> usize {
        self.inner.listeners.read().len()
    }

    /// Choose when callbacks run; takes effect for events fired after
    /// the call.
    pub fn set_delivery_mode(&self, mode: DeliveryMode) {
        *self.inner.mode.write() = mode;
    }

    pub fn delivery_mode(&self) -> DeliveryMode {
        *self.inner.mode.read()
    }

    /// How many listener callbacks have panicked (and been isolated)
    /// over the bus's lifetime.
    pub fn listener_panics(&self) -> usize {
        self.inner.listener_panics.load(Ordering::SeqCst)
    }

    /// Deliver every queued event (in fire order) on the calling
    /// thread. Events fired *by listeners* during the flush are
    /// delivered too, before `flush` returns. A listener calling
    /// `flush` from inside a delivery is safe: the re-entrant call
    /// returns immediately and the outer flush drains the queue, so
    /// every event is delivered exactly once and in fire order. No-op
    /// in [`DeliveryMode::Immediate`].
    pub fn flush(&self) {
        let me = std::thread::current().id();
        {
            let mut flushing = self.inner.flushing.lock();
            if flushing.contains(&me) {
                return;
            }
            flushing.push(me);
        }
        let _guard = FlushGuard {
            inner: &self.inner,
            me,
        };
        loop {
            let Some(event) = self.inner.queue.lock().pop_front() else {
                return;
            };
            self.deliver(&event);
        }
    }

    /// Snapshot the listener set, then invoke each listener outside
    /// any bus lock, isolating panics. The snapshot is what makes
    /// re-entrant listeners (firing events or adding listeners from a
    /// callback) safe.
    fn deliver(&self, event: &QueuedEvent) {
        let snapshot: Vec<Arc<dyn PeerMessageListener>> = self.inner.listeners.read().clone();
        for listener in snapshot {
            let delivery = catch_unwind(AssertUnwindSafe(|| match event {
                QueuedEvent::Discovery(e) => listener.on_discovery(e),
                QueuedEvent::Publish(e) => listener.on_publish(e),
                QueuedEvent::Client(e) => listener.on_client_message(e),
                QueuedEvent::Server(e) => listener.on_server_message(e),
                QueuedEvent::Deployment(e) => listener.on_deployment(e),
                QueuedEvent::Resilience(e) => listener.on_resilience(e),
                QueuedEvent::Lifecycle(e) => listener.on_lifecycle(e),
            }));
            if delivery.is_err() {
                self.inner.listener_panics.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    fn fire(&self, event: QueuedEvent) {
        match self.delivery_mode() {
            DeliveryMode::Immediate => self.deliver(&event),
            DeliveryMode::Queued => self.inner.queue.lock().push_back(event),
        }
    }

    pub fn fire_discovery(&self, event: &DiscoveryMessageEvent) {
        self.fire(QueuedEvent::Discovery(event.clone()));
    }

    pub fn fire_publish(&self, event: &PublishMessageEvent) {
        self.fire(QueuedEvent::Publish(event.clone()));
    }

    pub fn fire_client(&self, event: &ClientMessageEvent) {
        self.fire(QueuedEvent::Client(event.clone()));
    }

    pub fn fire_server(&self, event: &ServerMessageEvent) {
        self.fire(QueuedEvent::Server(event.clone()));
    }

    pub fn fire_deployment(&self, event: &DeploymentMessageEvent) {
        self.fire(QueuedEvent::Deployment(event.clone()));
    }

    pub fn fire_resilience(&self, event: &ResilienceMessageEvent) {
        self.fire(QueuedEvent::Resilience(event.clone()));
    }

    pub fn fire_lifecycle(&self, event: &LifecycleMessageEvent) {
        self.fire(QueuedEvent::Lifecycle(event.clone()));
    }
}

/// A listener that records everything — used by tests and examples to
/// observe the asynchronous flows.
#[derive(Default)]
pub struct CollectingListener {
    pub discoveries: RwLock<Vec<DiscoveryMessageEvent>>,
    pub publishes: RwLock<Vec<PublishMessageEvent>>,
    pub client_messages: RwLock<Vec<ClientMessageEvent>>,
    pub server_messages: RwLock<Vec<ServerMessageEvent>>,
    pub deployments: RwLock<Vec<DeploymentMessageEvent>>,
    pub resilience: RwLock<Vec<ResilienceMessageEvent>>,
    pub lifecycle: RwLock<Vec<LifecycleMessageEvent>>,
}

impl CollectingListener {
    pub fn new() -> Arc<Self> {
        Arc::new(CollectingListener::default())
    }

    /// Total events observed.
    pub fn total(&self) -> usize {
        self.discoveries.read().len()
            + self.publishes.read().len()
            + self.client_messages.read().len()
            + self.server_messages.read().len()
            + self.deployments.read().len()
            + self.resilience.read().len()
            + self.lifecycle.read().len()
    }

    /// The discovery event carrying `token`, if it has arrived.
    pub fn discovery_for(&self, token: u64) -> Option<DiscoveryMessageEvent> {
        self.discoveries
            .read()
            .iter()
            .find(|e| e.token == token)
            .cloned()
    }

    /// The client-message event carrying `token`, if it has arrived.
    pub fn client_message_for(&self, token: u64) -> Option<ClientMessageEvent> {
        self.client_messages
            .read()
            .iter()
            .find(|e| e.token == token)
            .cloned()
    }

    /// All resilience events for call `token`, in fire order.
    pub fn resilience_for(&self, token: u64) -> Vec<ResilienceMessageEvent> {
        self.resilience
            .read()
            .iter()
            .filter(|e| e.token == token)
            .cloned()
            .collect()
    }
}

impl PeerMessageListener for CollectingListener {
    fn on_discovery(&self, event: &DiscoveryMessageEvent) {
        self.discoveries.write().push(event.clone());
    }

    fn on_publish(&self, event: &PublishMessageEvent) {
        self.publishes.write().push(event.clone());
    }

    fn on_client_message(&self, event: &ClientMessageEvent) {
        self.client_messages.write().push(event.clone());
    }

    fn on_server_message(&self, event: &ServerMessageEvent) {
        self.server_messages.write().push(event.clone());
    }

    fn on_deployment(&self, event: &DeploymentMessageEvent) {
        self.deployments.write().push(event.clone());
    }

    fn on_resilience(&self, event: &ResilienceMessageEvent) {
        self.resilience.write().push(event.clone());
    }

    fn on_lifecycle(&self, event: &LifecycleMessageEvent) {
        self.lifecycle.write().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listeners_receive_fired_events() {
        let bus = EventBus::new();
        let listener = CollectingListener::new();
        bus.add_listener(listener.clone());
        bus.fire_deployment(&DeploymentMessageEvent {
            service: "Echo".into(),
            endpoints: vec!["http://h/Echo".into()],
        });
        bus.fire_publish(&PublishMessageEvent {
            service: "Echo".into(),
            result: Ok("uuid:svc-1".into()),
        });
        assert_eq!(listener.deployments.read().len(), 1);
        assert_eq!(listener.publishes.read().len(), 1);
        assert_eq!(listener.total(), 2);
    }

    #[test]
    fn cloned_bus_shares_listeners() {
        let bus = EventBus::new();
        let cloned = bus.clone();
        let listener = CollectingListener::new();
        bus.add_listener(listener.clone());
        assert_eq!(cloned.listener_count(), 1);
        cloned.fire_discovery(&DiscoveryMessageEvent {
            token: 1,
            result: Ok(vec![]),
        });
        assert_eq!(listener.discoveries.read().len(), 1);
    }

    #[test]
    fn multiple_listeners_all_notified() {
        let bus = EventBus::new();
        let a = CollectingListener::new();
        let b = CollectingListener::new();
        bus.add_listener(a.clone());
        bus.add_listener(b.clone());
        bus.fire_client(&ClientMessageEvent {
            token: 9,
            service: "Echo".into(),
            operation: "echoString".into(),
            result: Ok(Value::string("hi")),
        });
        assert_eq!(a.client_messages.read().len(), 1);
        assert_eq!(b.client_messages.read().len(), 1);
    }

    #[test]
    fn resilience_events_reach_listeners_in_order() {
        let bus = EventBus::new();
        let listener = CollectingListener::new();
        bus.add_listener(listener.clone());
        let fire = |action: ResilienceAction| {
            bus.fire_resilience(&ResilienceMessageEvent {
                token: 7,
                service: "Echo".into(),
                endpoint: "http://a/Echo".into(),
                action,
            });
        };
        fire(ResilienceAction::AttemptFailed {
            attempt: 1,
            error: "transport failed: refused".into(),
            will_retry: true,
        });
        fire(ResilienceAction::BreakerTripped);
        fire(ResilienceAction::FailedOver {
            to: "http://b/Echo".into(),
        });
        let seen = listener.resilience_for(7);
        assert_eq!(seen.len(), 3);
        assert!(matches!(
            seen[0].action,
            ResilienceAction::AttemptFailed { attempt: 1, .. }
        ));
        assert_eq!(seen[1].action, ResilienceAction::BreakerTripped);
        assert!(listener.resilience_for(8).is_empty());
        assert_eq!(listener.total(), 3);
    }

    #[test]
    fn lifecycle_events_reach_listeners() {
        let bus = EventBus::new();
        let listener = CollectingListener::new();
        bus.add_listener(listener.clone());
        bus.fire_lifecycle(&LifecycleMessageEvent {
            subject: "http://0.0.0.0:9000".into(),
            phase: LifecyclePhase::DrainStarted,
            in_flight: 3,
        });
        bus.fire_lifecycle(&LifecycleMessageEvent {
            subject: "http://0.0.0.0:9000".into(),
            phase: LifecyclePhase::DrainCompleted,
            in_flight: 0,
        });
        let seen = listener.lifecycle.read();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].phase, LifecyclePhase::DrainStarted);
        assert_eq!(seen[1].phase, LifecyclePhase::DrainCompleted);
        assert_eq!(listener.total(), 2);
    }

    #[test]
    fn default_listener_methods_are_noops() {
        struct OnlyDiscovery;
        impl PeerMessageListener for OnlyDiscovery {}
        let bus = EventBus::new();
        bus.add_listener(Arc::new(OnlyDiscovery));
        // Firing other kinds must not panic.
        bus.fire_server(&ServerMessageEvent {
            service: "S".into(),
            phase: ServerPhase::Inbound,
            envelope: Envelope::empty(),
        });
    }

    fn deployment(service: &str) -> DeploymentMessageEvent {
        DeploymentMessageEvent {
            service: service.into(),
            endpoints: vec![],
        }
    }

    #[test]
    fn reentrant_listener_can_add_listeners_and_fire_events() {
        // Before the snapshot rework this deadlocked: delivery held the
        // listener read lock while the callback needed the write lock.
        struct Reentrant {
            bus: EventBus,
            seen: CollectingListener,
        }
        impl PeerMessageListener for Reentrant {
            fn on_deployment(&self, event: &DeploymentMessageEvent) {
                self.seen.on_deployment(event);
                if event.service == "first" {
                    self.bus.add_listener(CollectingListener::new());
                    self.bus.fire_publish(&PublishMessageEvent {
                        service: event.service.clone(),
                        result: Ok("nested".into()),
                    });
                }
            }
            fn on_publish(&self, event: &PublishMessageEvent) {
                self.seen.on_publish(event);
            }
        }
        let bus = EventBus::new();
        let listener = Arc::new(Reentrant {
            bus: bus.clone(),
            seen: CollectingListener::default(),
        });
        bus.add_listener(listener.clone());
        bus.fire_deployment(&deployment("first"));
        assert_eq!(listener.seen.deployments.read().len(), 1);
        assert_eq!(
            listener.seen.publishes.read().len(),
            1,
            "nested fire delivered"
        );
        assert_eq!(bus.listener_count(), 2, "listener added from a callback");
    }

    #[test]
    fn panicking_listener_is_isolated() {
        struct Bomb;
        impl PeerMessageListener for Bomb {
            fn on_deployment(&self, _: &DeploymentMessageEvent) {
                panic!("listener bug");
            }
        }
        let bus = EventBus::new();
        let after = CollectingListener::new();
        bus.add_listener(Arc::new(Bomb));
        bus.add_listener(after.clone());
        bus.fire_deployment(&deployment("S"));
        bus.fire_deployment(&deployment("T"));
        assert_eq!(
            after.deployments.read().len(),
            2,
            "listeners after the bomb still run"
        );
        assert_eq!(bus.listener_panics(), 2);
    }

    #[test]
    fn queued_mode_defers_until_flush() {
        let bus = EventBus::new();
        let listener = CollectingListener::new();
        bus.add_listener(listener.clone());
        bus.set_delivery_mode(DeliveryMode::Queued);
        bus.fire_deployment(&deployment("A"));
        bus.fire_deployment(&deployment("B"));
        assert_eq!(listener.total(), 0, "nothing delivered before flush");
        bus.flush();
        let services: Vec<String> = listener
            .deployments
            .read()
            .iter()
            .map(|e| e.service.clone())
            .collect();
        assert_eq!(services, ["A", "B"], "flush delivers in fire order");
        bus.flush();
        assert_eq!(listener.total(), 2, "flush is idempotent when drained");
    }

    #[test]
    fn reentrant_flush_neither_deadlocks_nor_reorders() {
        // A listener that flushes from inside a queued delivery. Before
        // the re-entrancy guard, the inner flush delivered event B to
        // every listener while the listener *after* the flusher had not
        // yet seen event A — observed order [B, A].
        struct Flusher {
            bus: EventBus,
        }
        impl PeerMessageListener for Flusher {
            fn on_deployment(&self, _: &DeploymentMessageEvent) {
                self.bus.flush(); // must be a harmless no-op
            }
        }
        let bus = EventBus::new();
        let seen = CollectingListener::new();
        bus.add_listener(Arc::new(Flusher { bus: bus.clone() }));
        bus.add_listener(seen.clone());
        bus.set_delivery_mode(DeliveryMode::Queued);
        bus.fire_deployment(&deployment("A"));
        bus.fire_deployment(&deployment("B"));
        bus.flush();
        let services: Vec<String> = seen
            .deployments
            .read()
            .iter()
            .map(|e| e.service.clone())
            .collect();
        assert_eq!(services, ["A", "B"], "exactly once, in fire order");
        bus.flush();
        assert_eq!(seen.total(), 2, "nothing re-delivered or lost");
    }

    #[test]
    fn listener_firing_and_flushing_during_flush_loses_nothing() {
        // The worst case: a listener both fires a new event and calls
        // flush from inside a delivery. The cascade must arrive exactly
        // once, after the event that caused it.
        struct FireAndFlush {
            bus: EventBus,
        }
        impl PeerMessageListener for FireAndFlush {
            fn on_deployment(&self, event: &DeploymentMessageEvent) {
                if event.service == "first" {
                    self.bus.fire_deployment(&deployment("second"));
                    self.bus.flush();
                }
            }
        }
        let bus = EventBus::new();
        let seen = CollectingListener::new();
        bus.add_listener(Arc::new(FireAndFlush { bus: bus.clone() }));
        bus.add_listener(seen.clone());
        bus.set_delivery_mode(DeliveryMode::Queued);
        bus.fire_deployment(&deployment("first"));
        bus.flush();
        let services: Vec<String> = seen
            .deployments
            .read()
            .iter()
            .map(|e| e.service.clone())
            .collect();
        assert_eq!(services, ["first", "second"]);
    }

    #[test]
    fn concurrent_flushes_deliver_each_event_once() {
        // Two threads flushing the same bus race on the queue, not on
        // delivery: each queued event is popped (and delivered) by
        // exactly one of them.
        let bus = EventBus::new();
        let seen = CollectingListener::new();
        bus.add_listener(seen.clone());
        bus.set_delivery_mode(DeliveryMode::Queued);
        for i in 0..100 {
            bus.fire_deployment(&deployment(&format!("svc-{i}")));
        }
        let flushers: Vec<_> = (0..2)
            .map(|_| {
                let bus = bus.clone();
                std::thread::spawn(move || bus.flush())
            })
            .collect();
        for f in flushers {
            f.join().unwrap();
        }
        assert_eq!(seen.total(), 100);
    }

    #[test]
    fn flush_delivers_events_fired_during_flush() {
        struct Chain {
            bus: EventBus,
        }
        impl PeerMessageListener for Chain {
            fn on_deployment(&self, event: &DeploymentMessageEvent) {
                if event.service == "first" {
                    self.bus.fire_deployment(&deployment("second"));
                }
            }
        }
        let bus = EventBus::new();
        let seen = CollectingListener::new();
        bus.add_listener(Arc::new(Chain { bus: bus.clone() }));
        bus.add_listener(seen.clone());
        bus.set_delivery_mode(DeliveryMode::Queued);
        bus.fire_deployment(&deployment("first"));
        bus.flush();
        assert_eq!(
            seen.deployments.read().len(),
            2,
            "cascade drained in one flush"
        );
    }
}

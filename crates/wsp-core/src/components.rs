//! The pluggable component traits of the interface tree (Figure 2):
//! `ServiceLocator` and `Invocation` under the client side,
//! `ServiceDeployer` and `ServicePublisher` under the server side, and
//! the [`Binding`] bundle that plugs a whole substrate in at once.
//!
//! "By plugging in different components, WSPeer can communicate with
//! different entities without the application changing."

use crate::endpoint::{DeployedService, LocatedService};
use crate::error::WspError;
use crate::query::ServiceQuery;
use std::sync::Arc;
use wsp_wsdl::{ServiceDescriptor, ServiceHandler, Value};

/// Client-side discovery component.
pub trait ServiceLocator: Send + Sync {
    /// Find services matching `query`. Blocking with an internal
    /// timeout; the `Client` wraps this for asynchronous use.
    fn locate(&self, query: &ServiceQuery) -> Result<Vec<LocatedService>, WspError>;

    /// Short label for diagnostics ("uddi", "p2ps", …).
    fn kind(&self) -> &'static str;
}

/// Client-side invocation component.
pub trait Invoker: Send + Sync {
    /// Invoke `operation` on `service` with `args`, waiting for the
    /// response (one-way operations return `Value::Null` immediately).
    fn invoke(
        &self,
        service: &LocatedService,
        operation: &str,
        args: &[Value],
    ) -> Result<Value, WspError>;

    /// Can this invoker reach `endpoint`? (Scheme-based dispatch.)
    fn handles(&self, endpoint: &str) -> bool;

    fn kind(&self) -> &'static str;
}

/// Server-side deployment component: "taking a code source, generating
/// a service interface description from it, and creating an
/// addressable endpoint".
pub trait ServiceDeployer: Send + Sync {
    fn deploy(
        &self,
        descriptor: ServiceDescriptor,
        handler: Arc<dyn ServiceHandler>,
    ) -> Result<DeployedService, WspError>;

    /// Remove a deployed service. True if it was deployed.
    fn undeploy(&self, service: &str) -> bool;

    fn kind(&self) -> &'static str;
}

/// Server-side publication component: "making the service endpoint
/// and/or its interface description available to the network".
pub trait ServicePublisher: Send + Sync {
    /// Publish a deployed service; returns a location token (registry
    /// key, advert URI, …).
    fn publish(&self, service: &DeployedService) -> Result<String, WspError>;

    /// Withdraw a publication. True if it was published.
    fn unpublish(&self, service: &str) -> bool;

    fn kind(&self) -> &'static str;
}

/// A full substrate plugged in as one unit. The `Peer` wires a
/// binding's four components into its tree; the application can still
/// replace any single component afterwards ("users can insert
/// variations into the tree at any level").
pub trait Binding: Send + Sync {
    fn kind(&self) -> &'static str;
    fn locator(&self) -> Arc<dyn ServiceLocator>;
    fn invoker(&self) -> Arc<dyn Invoker>;
    fn deployer(&self) -> Arc<dyn ServiceDeployer>;
    fn publisher(&self) -> Arc<dyn ServicePublisher>;

    /// Called when the binding is plugged into a `Peer`, handing it the
    /// peer's shared [`crate::dispatch::Dispatcher`]. Bindings that run
    /// background work (request serving, event pumps) submit it there
    /// instead of spawning threads of their own. Default: no-op.
    fn on_attach(&self, _dispatcher: &Arc<crate::dispatch::Dispatcher>) {}
}

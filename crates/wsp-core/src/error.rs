//! The unified error type of the WSPeer API.

use std::fmt;
use wsp_soap::Fault;
use wsp_wsdl::ProxyError;

/// Everything that can go wrong across locate / deploy / publish /
/// invoke, regardless of binding.
#[derive(Debug, Clone)]
pub enum WspError {
    /// Discovery failed (registry unreachable, malformed responses, …).
    Locate(String),
    /// Deployment failed (port in use, duplicate service, …).
    Deploy(String),
    /// Publication failed.
    Publish(String),
    /// Client-side invocation error (validation, decoding, semantic
    /// misuse). Permanent for retry purposes — see
    /// [`WspError::Transport`] for the transient counterpart.
    Invoke(String),
    /// Transport-level failure (connection refused, reset, endpoint
    /// unreachable, 5xx overload). Classified transient: a retry —
    /// possibly against a failed-over endpoint — can plausibly succeed.
    Transport(String),
    /// The per-endpoint circuit breaker is open: recent consecutive
    /// failures made the endpoint not worth an attempt until the
    /// cooldown elapses (see `wsp_core::health`).
    CircuitOpen { endpoint: String },
    /// The service answered with a SOAP fault (boxed to keep the enum
    /// small; faults carry XML detail).
    Fault(Box<Fault>),
    /// No response arrived in time (asynchronous interactions with
    /// unreliable peers time out rather than hang).
    Timeout { what: &'static str, millis: u64 },
    /// No plugged-in component can handle the endpoint's URI scheme.
    NoBindingFor { scheme: String },
    /// The dispatch core could not accept or run the call (queue full
    /// under `try_submit`, dispatcher shut down, …).
    Dispatch(String),
    /// The call was cancelled via its `CallHandle` before completing.
    Cancelled { token: u64 },
    /// The located service does not offer the requested operation.
    NoSuchOperation { service: String, operation: String },
    /// The server shed the request under admission control (queue or
    /// in-flight limit reached, or the deadline had already expired on
    /// arrival). Transient-with-hint: `retry_after_ms` is the server's
    /// suggested backoff, honoured by the client's retry loop as a
    /// floor under its own schedule.
    Overloaded { retry_after_ms: Option<u64> },
}

impl WspError {
    /// The server's `Retry-After` hint, if this error carries one.
    pub fn retry_after_hint(&self) -> Option<std::time::Duration> {
        match self {
            WspError::Overloaded {
                retry_after_ms: Some(ms),
            } => Some(std::time::Duration::from_millis(*ms)),
            _ => None,
        }
    }
}

impl fmt::Display for WspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WspError::Locate(why) => write!(f, "locate failed: {why}"),
            WspError::Deploy(why) => write!(f, "deploy failed: {why}"),
            WspError::Publish(why) => write!(f, "publish failed: {why}"),
            WspError::Invoke(why) => write!(f, "invoke failed: {why}"),
            WspError::Transport(why) => write!(f, "transport failed: {why}"),
            WspError::CircuitOpen { endpoint } => {
                write!(f, "circuit open for {endpoint} (cooling down)")
            }
            WspError::Fault(fault) => write!(f, "{fault}"),
            WspError::Timeout { what, millis } => write!(f, "{what} timed out after {millis}ms"),
            WspError::NoBindingFor { scheme } => {
                write!(f, "no plugged-in component handles {scheme}:// endpoints")
            }
            WspError::Dispatch(why) => write!(f, "dispatch failed: {why}"),
            WspError::Cancelled { token } => write!(f, "call {token} was cancelled"),
            WspError::NoSuchOperation { service, operation } => {
                write!(f, "service {service} has no operation {operation:?}")
            }
            WspError::Overloaded { retry_after_ms } => match retry_after_ms {
                Some(ms) => write!(f, "server overloaded, retry after {ms}ms"),
                None => write!(f, "server overloaded"),
            },
        }
    }
}

impl std::error::Error for WspError {}

impl From<ProxyError> for WspError {
    fn from(e: ProxyError) -> Self {
        match e {
            ProxyError::Fault(fault) => WspError::Fault(fault),
            other => WspError::Invoke(other.to_string()),
        }
    }
}

impl From<Fault> for WspError {
    fn from(fault: Fault) -> Self {
        WspError::Fault(Box::new(fault))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        assert!(WspError::Locate("registry down".into())
            .to_string()
            .contains("registry down"));
        assert!(WspError::Timeout {
            what: "invoke",
            millis: 500
        }
        .to_string()
        .contains("500ms"));
        assert!(WspError::NoBindingFor {
            scheme: "p2ps".into()
        }
        .to_string()
        .contains("p2ps"));
        assert!(WspError::Dispatch("queue full".into())
            .to_string()
            .contains("queue full"));
        assert!(WspError::Cancelled { token: 9 }.to_string().contains('9'));
        assert!(WspError::Transport("connection reset".into())
            .to_string()
            .contains("connection reset"));
        assert!(WspError::CircuitOpen {
            endpoint: "http://h:1/Echo".into()
        }
        .to_string()
        .contains("http://h:1/Echo"));
        assert!(WspError::Overloaded {
            retry_after_ms: Some(250)
        }
        .to_string()
        .contains("250ms"));
        assert!(WspError::Overloaded {
            retry_after_ms: None
        }
        .to_string()
        .contains("overloaded"));
    }

    #[test]
    fn retry_after_hint_only_on_overloaded_with_hint() {
        use std::time::Duration;
        assert_eq!(
            WspError::Overloaded {
                retry_after_ms: Some(40)
            }
            .retry_after_hint(),
            Some(Duration::from_millis(40))
        );
        assert_eq!(
            WspError::Overloaded {
                retry_after_ms: None
            }
            .retry_after_hint(),
            None
        );
        assert_eq!(WspError::Transport("reset".into()).retry_after_hint(), None);
    }

    #[test]
    fn proxy_fault_maps_to_fault_variant() {
        let err: WspError = ProxyError::from(Fault::receiver("boom")).into();
        assert!(matches!(err, WspError::Fault(f) if f.reason == "boom"));
        let err: WspError = ProxyError::NoSuchOperation("x".into()).into();
        assert!(matches!(err, WspError::Invoke(_)));
    }
}

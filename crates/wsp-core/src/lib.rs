//! # wsp-core — WSPeer
//!
//! An interface to Web service hosting and invocation, reproducing the
//! system of Harrison & Taylor, *WSPeer — An Interface to Web Service
//! Hosting and Invocation* (IPDPS 2005). WSPeer sits between an
//! application and the network, "acting as both buffer and interpreter"
//! (Figure 1): the application deploys, publishes, locates and invokes
//! services against one API while pluggable bindings speak to vastly
//! different substrates.
//!
//! * The **interface tree** (Figure 2): a [`Peer`] owns a [`Client`]
//!   (with pluggable [`ServiceLocator`] and [`Invoker`] components) and
//!   a [`Server`] (with pluggable [`ServiceDeployer`] and
//!   [`ServicePublisher`]). Events from every node propagate to
//!   listeners at the root via the five-method [`PeerMessageListener`].
//! * The **standard binding** ([`bindings::HttpUddiBinding`], Figure 3):
//!   SOAP over HTTP(G), UDDI publish/find, WSDL at `endpoint?wsdl`, and
//!   a lightweight container-less host launched on first deployment.
//! * The **P2PS binding** ([`bindings::P2psBinding`], Figure 4): XML
//!   advertisements, rendezvous discovery, and SOAP over unidirectional
//!   pipes with WS-Addressing `ReplyTo` return pipes (Figures 5–6).
//! * **Stateful services** ([`StatefulService`]): any in-memory object
//!   becomes a standards-compliant service; each operation may map to a
//!   different object.
//! * **Workflows** ([`Workflow`]): Triana-style chaining of discovered
//!   services.
//!
//! ```no_run
//! use std::sync::Arc;
//! use wsp_core::{bindings::HttpUddiBinding, EventBus, Peer, ServiceQuery};
//! use wsp_wsdl::{ServiceDescriptor, Value};
//!
//! let binding = HttpUddiBinding::with_local_registry(wsp_uddi::Registry::new(), EventBus::new());
//! let peer = Peer::with_binding(&binding);
//! peer.server().deploy_and_publish(
//!     ServiceDescriptor::echo(),
//!     Arc::new(|_op: &str, args: &[Value]| Ok(args[0].clone())),
//! ).unwrap();
//! let svc = peer.client().locate_one(&ServiceQuery::by_name("Echo")).unwrap();
//! let out = peer.client().invoke(&svc, "echoString", &[Value::string("hi")]).unwrap();
//! assert_eq!(out, Value::string("hi"));
//! ```

pub mod bindings;
pub mod client;
pub mod components;
pub mod endpoint;
pub mod error;
pub mod events;
pub mod peer;
pub mod query;
pub mod server;
pub mod state;
pub mod workflow;

pub use client::Client;
pub use components::{Binding, Invoker, ServiceDeployer, ServiceLocator, ServicePublisher};
pub use endpoint::{BindingKind, DeployedService, LocatedService};
pub use error::WspError;
pub use events::{
    ClientMessageEvent, CollectingListener, DeploymentMessageEvent, DiscoveryMessageEvent,
    EventBus, PeerMessageListener, PublishMessageEvent, ServerMessageEvent, ServerPhase,
};
pub use peer::Peer;
pub use query::{QueryExpr, ServiceQuery};
pub use server::Server;
pub use state::StatefulService;
pub use workflow::{Stage, Workflow, WorkflowRun};

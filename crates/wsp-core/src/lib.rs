//! # wsp-core — WSPeer
//!
//! An interface to Web service hosting and invocation, reproducing the
//! system of Harrison & Taylor, *WSPeer — An Interface to Web Service
//! Hosting and Invocation* (IPDPS 2005). WSPeer sits between an
//! application and the network, "acting as both buffer and interpreter"
//! (Figure 1): the application deploys, publishes, locates and invokes
//! services against one API while pluggable bindings speak to vastly
//! different substrates.
//!
//! * The **interface tree** (Figure 2): a [`Peer`] owns a [`Client`]
//!   (with pluggable [`ServiceLocator`] and [`Invoker`] components) and
//!   a [`Server`] (with pluggable [`ServiceDeployer`] and
//!   [`ServicePublisher`]). Events from every node propagate to
//!   listeners at the root via the five-method [`PeerMessageListener`].
//! * The **standard binding** ([`bindings::HttpUddiBinding`], Figure 3):
//!   SOAP over HTTP(G), UDDI publish/find, WSDL at `endpoint?wsdl`, and
//!   a lightweight container-less host launched on first deployment.
//! * The **P2PS binding** ([`bindings::P2psBinding`], Figure 4): XML
//!   advertisements, rendezvous discovery, and SOAP over unidirectional
//!   pipes with WS-Addressing `ReplyTo` return pipes (Figures 5–6).
//! * **Stateful services** ([`StatefulService`]): any in-memory object
//!   becomes a standards-compliant service; each operation may map to a
//!   different object.
//! * **Workflows** ([`Workflow`]): Triana-style chaining of discovered
//!   services.
//! * The **dispatch core** ([`Dispatcher`]): every peer owns one
//!   bounded-queue worker pool plus a token → pending-call correlation
//!   table, shared by its client, server and bindings. Sync and async
//!   invocation are a single pipeline — [`Client::invoke`] is
//!   `invoke_async(..).wait()`.
//!
//! ## Asynchrony: `CallHandle` and event delivery
//!
//! `invoke_async`/`locate_async` return a [`CallHandle`] whose
//! [`token`](CallHandle::token) matches the `token` field of the
//! [`ClientMessageEvent`]/[`DiscoveryMessageEvent`] fired on
//! completion, so listener callbacks correlate with in-flight calls.
//! Handle semantics:
//!
//! * [`wait`](CallHandle::wait) blocks for the result; while blocked
//!   the thread *helps* — it runs queued jobs inline, so nested sync
//!   calls from inside a pool worker cannot deadlock the pool.
//! * [`wait_timeout`](CallHandle::wait_timeout) returns `Err(handle)`
//!   on timeout so the caller can keep waiting or
//!   [`cancel`](CallHandle::cancel); a cancelled call drops any late
//!   completion. [`try_poll`](CallHandle::try_poll) never blocks.
//! * A panicking job poisons only its own handle (the waiter re-panics
//!   with the job's message); worker threads always survive.
//!
//! [`EventBus`] delivery never holds locks while running listeners:
//! the listener list is snapshotted first, so re-entrant listeners may
//! add listeners or fire further events, and each callback runs under
//! `catch_unwind` (panics are counted via
//! [`EventBus::listener_panics`], not propagated). Delivery is
//! [`DeliveryMode::Immediate`] by default — callbacks run on whichever
//! thread fires the event, typically a pool worker — or
//! [`DeliveryMode::Queued`], which defers all callbacks to an explicit
//! [`EventBus::flush`], a deterministic barrier for tests and batch
//! consumers. [`Dispatcher::flush`] is the matching barrier for job
//! completion itself.
//!
//! ```no_run
//! use std::sync::Arc;
//! use wsp_core::{bindings::HttpUddiBinding, EventBus, Peer, ServiceQuery};
//! use wsp_wsdl::{ServiceDescriptor, Value};
//!
//! let binding = HttpUddiBinding::with_local_registry(wsp_uddi::Registry::new(), EventBus::new());
//! let peer = Peer::with_binding(&binding);
//! peer.server().deploy_and_publish(
//!     ServiceDescriptor::echo(),
//!     Arc::new(|_op: &str, args: &[Value]| Ok(args[0].clone())),
//! ).unwrap();
//! let svc = peer.client().locate_one(&ServiceQuery::by_name("Echo")).unwrap();
//! let out = peer.client().invoke(&svc, "echoString", &[Value::string("hi")]).unwrap();
//! assert_eq!(out, Value::string("hi"));
//! ```

pub mod bindings;
pub mod client;
pub mod components;
pub mod dispatch;
pub mod endpoint;
pub mod error;
pub mod events;
pub mod health;
pub mod machines;
pub mod overload;
pub mod peer;
pub mod query;
pub mod resilience;
pub mod server;
pub mod state;
pub mod telemetry;
pub mod workflow;

pub use client::Client;
pub use components::{Binding, Invoker, ServiceDeployer, ServiceLocator, ServicePublisher};
pub use dispatch::{CallHandle, Completer, Dispatcher, DispatcherConfig, DispatcherStats};
pub use endpoint::{BindingKind, DeployedService, LocatedService};
pub use error::WspError;
pub use events::{
    ClientMessageEvent, CollectingListener, DeliveryMode, DeploymentMessageEvent,
    DiscoveryMessageEvent, EventBus, LifecycleMessageEvent, LifecyclePhase, PeerMessageListener,
    PublishMessageEvent, ResilienceAction, ResilienceMessageEvent, ServerMessageEvent, ServerPhase,
};
pub use health::{
    Admission, BreakerConfig, BreakerState, CircuitBreaker, EndpointHealth, ProbeGuard,
};
pub use overload::{
    AdmissionController, AdmissionPermit, DeadlineScope, KeyedAdmissionController,
    KeyedAdmissionPermit, KeyedLoadShedPolicy, LoadShedPolicy,
};
pub use peer::Peer;
pub use query::{QueryExpr, ServiceQuery};
pub use resilience::{ResiliencePolicy, RetryClass};
pub use server::Server;
pub use state::StatefulService;
pub use telemetry::{
    CorrelationScope, Counter, Histogram, HistogramSnapshot, Telemetry, TelemetrySnapshot,
    TraceEvent,
};
pub use workflow::{Stage, Workflow, WorkflowRun};

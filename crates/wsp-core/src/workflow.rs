//! Workflow composition — the Triana use case (paper Section V):
//! discovered services "appear as standard tools … users can drag these
//! icons onto a scratchpad and wire them together to create Web service
//! workflows."
//!
//! A [`Workflow`] is an ordered chain of invocation stages; each stage's
//! output feeds the next stage's first argument (the Triana wiring
//! model), optionally with extra constant arguments.

use crate::client::Client;
use crate::endpoint::LocatedService;
use crate::error::WspError;
use std::sync::Arc;
use wsp_wsdl::Value;

/// One stage: a located service, an operation, and constant arguments
/// appended after the flowing value.
#[derive(Clone)]
pub struct Stage {
    pub service: LocatedService,
    pub operation: String,
    pub extra_args: Vec<Value>,
}

impl Stage {
    pub fn new(service: LocatedService, operation: impl Into<String>) -> Self {
        Stage {
            service,
            operation: operation.into(),
            extra_args: Vec::new(),
        }
    }

    pub fn with_extra_arg(mut self, value: Value) -> Self {
        self.extra_args.push(value);
        self
    }
}

/// Outcome of one run, stage by stage.
#[derive(Debug, Clone)]
pub struct WorkflowRun {
    /// The value produced by each completed stage, in order.
    pub stage_outputs: Vec<Value>,
    /// The final output (same as the last stage output).
    pub output: Value,
}

/// One step of a workflow: a single unit or a parallel fan-out.
#[derive(Clone)]
enum Step {
    /// One service; output flows to the next step. Boxed: a `Stage`
    /// carries a whole WSDL and would dwarf the `Fanout` variant.
    Single(Box<Stage>),
    /// Several services invoked concurrently on the same input; their
    /// outputs are gathered into a `Value::Array` in declaration order
    /// (Triana's parallel wiring).
    Fanout(Vec<Stage>),
}

/// A service workflow: a chain of single and parallel steps.
#[derive(Clone, Default)]
pub struct Workflow {
    steps: Vec<Step>,
}

impl Workflow {
    pub fn new() -> Self {
        Workflow::default()
    }

    /// Append a sequential stage.
    pub fn then(mut self, stage: Stage) -> Self {
        self.steps.push(Step::Single(Box::new(stage)));
        self
    }

    /// Append a parallel fan-out: every stage gets this step's input;
    /// the step's output is the array of their results.
    pub fn then_fanout(mut self, stages: Vec<Stage>) -> Self {
        self.steps.push(Step::Fanout(stages));
        self
    }

    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Run the chain: `input` → step 1 → step 2 → … Failure at any
    /// step aborts with that step's error (the partial outputs are
    /// lost — workflows are restartable from scratch, like Triana's).
    pub fn run(&self, client: &Arc<Client>, input: Value) -> Result<WorkflowRun, WspError> {
        let mut current = input;
        let mut stage_outputs = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            current = match step {
                Step::Single(stage) => invoke_stage(client, stage, &current)?,
                Step::Fanout(stages) => run_fanout(client, stages, &current)?,
            };
            stage_outputs.push(current.clone());
        }
        Ok(WorkflowRun {
            output: current,
            stage_outputs,
        })
    }
}

fn invoke_stage(client: &Arc<Client>, stage: &Stage, input: &Value) -> Result<Value, WspError> {
    let mut args = Vec::with_capacity(1 + stage.extra_args.len());
    args.push(input.clone());
    args.extend(stage.extra_args.iter().cloned());
    client.invoke(&stage.service, &stage.operation, &args)
}

/// Invoke every stage concurrently (real threads — slow services
/// overlap) and gather results in order.
fn run_fanout(client: &Arc<Client>, stages: &[Stage], input: &Value) -> Result<Value, WspError> {
    let results: Vec<Result<Value, WspError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = stages
            .iter()
            .map(|stage| scope.spawn(move || invoke_stage(client, stage, input)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(WspError::Invoke("fan-out worker panicked".into())))
            })
            .collect()
    });
    let mut outputs = Vec::with_capacity(results.len());
    for result in results {
        outputs.push(result?);
    }
    Ok(Value::Array(outputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{Invoker, ServiceLocator};
    use crate::endpoint::BindingKind;
    use crate::events::EventBus;
    use crate::query::ServiceQuery;
    use wsp_wsdl::{OperationDef, ServiceDescriptor, WsdlDocument, XsdType};

    /// An invoker implementing two string-processing "services".
    struct TextInvoker;
    impl Invoker for TextInvoker {
        fn invoke(
            &self,
            service: &LocatedService,
            operation: &str,
            args: &[Value],
        ) -> Result<Value, WspError> {
            let input = args[0].as_str().unwrap_or("").to_owned();
            Ok(match (service.name(), operation) {
                ("Upper", "apply") => Value::string(input.to_uppercase()),
                ("Suffix", "apply") => {
                    let suffix = args.get(1).and_then(|v| v.as_str()).unwrap_or("!");
                    Value::string(format!("{input}{suffix}"))
                }
                ("Broken", _) => return Err(WspError::Invoke("stage exploded".into())),
                _ => Value::Null,
            })
        }
        fn handles(&self, endpoint: &str) -> bool {
            endpoint.starts_with("test://")
        }
        fn kind(&self) -> &'static str {
            "test"
        }
    }

    struct NoLocator;
    impl ServiceLocator for NoLocator {
        fn locate(&self, _q: &ServiceQuery) -> Result<Vec<LocatedService>, WspError> {
            Ok(vec![])
        }
        fn kind(&self) -> &'static str {
            "none"
        }
    }

    fn tool(name: &str) -> LocatedService {
        let descriptor = ServiceDescriptor::new(name, format!("urn:{name}")).operation(
            OperationDef::new("apply")
                .input("text", XsdType::String)
                .returns(XsdType::String),
        );
        LocatedService::new(
            WsdlDocument::new(descriptor, vec![]),
            format!("test://tools/{name}"),
            BindingKind::HttpUddi,
        )
    }

    fn client() -> Arc<Client> {
        let client = Client::new(EventBus::new());
        client.set_locator(Arc::new(NoLocator));
        client.add_invoker(Arc::new(TextInvoker));
        client
    }

    #[test]
    fn chain_pipes_outputs_forward() {
        let workflow = Workflow::new()
            .then(Stage::new(tool("Upper"), "apply"))
            .then(Stage::new(tool("Suffix"), "apply").with_extra_arg(Value::string("!!")));
        let run = workflow.run(&client(), Value::string("cactus")).unwrap();
        assert_eq!(run.output, Value::string("CACTUS!!"));
        assert_eq!(run.stage_outputs.len(), 2);
        assert_eq!(run.stage_outputs[0], Value::string("CACTUS"));
    }

    #[test]
    fn empty_workflow_is_identity() {
        let run = Workflow::new().run(&client(), Value::string("x")).unwrap();
        assert_eq!(run.output, Value::string("x"));
        assert!(run.stage_outputs.is_empty());
    }

    #[test]
    fn failing_stage_aborts() {
        let workflow = Workflow::new()
            .then(Stage::new(tool("Upper"), "apply"))
            .then(Stage::new(tool("Broken"), "apply"))
            .then(Stage::new(tool("Suffix"), "apply"));
        let err = workflow.run(&client(), Value::string("x")).unwrap_err();
        assert!(matches!(err, WspError::Invoke(why) if why.contains("exploded")));
    }

    #[test]
    fn stage_count() {
        let w = Workflow::new().then(Stage::new(tool("Upper"), "apply"));
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
        assert!(Workflow::new().is_empty());
    }

    #[test]
    fn fanout_gathers_in_declaration_order() {
        let workflow = Workflow::new().then_fanout(vec![
            Stage::new(tool("Upper"), "apply"),
            Stage::new(tool("Suffix"), "apply").with_extra_arg(Value::string("?")),
        ]);
        let run = workflow.run(&client(), Value::string("both")).unwrap();
        assert_eq!(
            run.output,
            Value::Array(vec![Value::string("BOTH"), Value::string("both?")])
        );
    }

    #[test]
    fn fanout_failure_aborts_step() {
        let workflow = Workflow::new().then_fanout(vec![
            Stage::new(tool("Upper"), "apply"),
            Stage::new(tool("Broken"), "apply"),
        ]);
        let err = workflow.run(&client(), Value::string("x")).unwrap_err();
        assert!(matches!(err, WspError::Invoke(why) if why.contains("exploded")));
    }

    #[test]
    fn fanout_then_sequential_stage() {
        // A fan-out feeding a later stage: the next stage receives the
        // array (here we just check the shape survives the chain).
        struct CountInvoker;
        impl Invoker for CountInvoker {
            fn invoke(
                &self,
                _service: &LocatedService,
                _operation: &str,
                args: &[Value],
            ) -> Result<Value, WspError> {
                Ok(Value::Int(
                    args[0].as_array().map(|a| a.len()).unwrap_or(0) as i64
                ))
            }
            fn handles(&self, endpoint: &str) -> bool {
                endpoint.starts_with("count://")
            }
            fn kind(&self) -> &'static str {
                "count"
            }
        }
        let client = client();
        client.add_invoker(Arc::new(CountInvoker));
        let mut counter = tool("Counter");
        counter.endpoint = "count://tools/Counter".into();
        let workflow = Workflow::new()
            .then_fanout(vec![
                Stage::new(tool("Upper"), "apply"),
                Stage::new(tool("Upper"), "apply"),
                Stage::new(tool("Upper"), "apply"),
            ])
            .then(Stage::new(counter, "apply"));
        let run = workflow.run(&client, Value::string("x")).unwrap();
        assert_eq!(run.output, Value::Int(3));
    }
}

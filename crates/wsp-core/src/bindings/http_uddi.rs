//! The standard implementation (paper Section IV.A, Figure 3): SOAP
//! over HTTP(G), WSDL served at `endpoint?wsdl`, publish/find through a
//! UDDI registry, and a container-less HTTP host that is "only launched
//! once the application has deployed a service".

use crate::components::{Binding, Invoker, ServiceDeployer, ServiceLocator, ServicePublisher};
use crate::dispatch::Dispatcher;
use crate::endpoint::{BindingKind, DeployedService, LocatedService};
use crate::error::WspError;
use crate::events::{EventBus, ServerMessageEvent, ServerPhase};
use crate::health::{Admission, BreakerConfig, BreakerState, EndpointHealth};
use crate::overload::{self, AdmissionController, DeadlineScope, LoadShedPolicy};
use crate::query::{properties_to_uddi_categories, ServiceQuery};
use crate::resilience::ResiliencePolicy;
use crate::telemetry::{self, CorrelationScope};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};
use wsp_http::{
    guard_router, http_call_with_timeout, ConnectionPool, HttpUri, HttpgCredential, Request,
    Response, ServerConfig, TcpServer, DEFAULT_CLIENT_TIMEOUT,
};
use wsp_soap::Envelope;
use wsp_uddi::{BindingTemplate, BusinessService, TModel, UddiClient};
use wsp_wsdl::{
    MessageEngine, Port, ServiceDescriptor, ServiceHandler, ServiceProxy, TransportKind, Value,
    WsdlDocument,
};

/// Wire header carrying the caller's correlation token; the serving
/// peer adopts it so client- and server-side spans share one trace id.
pub const CORRELATION_HEADER: &str = "X-WSP-Correlation";

/// Configuration of the standard binding.
#[derive(Clone)]
pub struct HttpUddiConfig {
    /// TCP port of the lightweight host (0 = ephemeral).
    pub port: u16,
    /// Business key under which services are published.
    pub business: String,
    /// When set, the host requires HTTPG tokens and endpoints use the
    /// `httpg://` scheme (the Globus-style authenticated transport).
    pub httpg: Option<HttpgCredential>,
    /// Reuse TCP connections across invocations (keep-alive pool)
    /// instead of the paper-era connection-per-call behaviour.
    pub keep_alive: bool,
    /// Admission-control limits for requests served by this host.
    /// Default is unlimited, the historical behaviour.
    pub load_shed: LoadShedPolicy,
    /// Transport tunables for the lightweight host (read deadlines,
    /// connection cap, drain deadline).
    pub server: ServerConfig,
    /// Retry/backoff policy for registry interactions (publish,
    /// locate). Default is no retries, the historical behaviour; a
    /// replicated discovery plane pairs this with `retrying(n)` so
    /// transient registry faults fail over instead of failing.
    pub registry_policy: ResiliencePolicy,
}

impl Default for HttpUddiConfig {
    fn default() -> Self {
        HttpUddiConfig {
            port: 0,
            business: "wspeer".into(),
            httpg: None,
            keep_alive: false,
            load_shed: LoadShedPolicy::default(),
            server: ServerConfig::default(),
            registry_policy: ResiliencePolicy::none(),
        }
    }
}

struct Shared {
    config: HttpUddiConfig,
    uddi: UddiClient,
    host: Mutex<Option<TcpServer>>,
    /// service name → UDDI service key (for unpublish).
    published: RwLock<HashMap<String, String>>,
    pool: ConnectionPool,
    events: EventBus,
    /// Gate on every POST the host serves: in-flight cap, queue-depth
    /// cap (against the shared dispatcher's queue), queue-wait
    /// watermark, and expired-deadline shedding.
    admission: AdmissionController,
    /// The peer's shared dispatch core, installed by `on_attach`; used
    /// to fan WSDL retrieval out during discovery.
    dispatcher: RwLock<Option<Arc<Dispatcher>>>,
    /// Per-registry-endpoint circuit breakers: a dead or flapping
    /// registry stops being hammered while the breaker cools down.
    registry_health: EndpointHealth,
}

impl Shared {
    /// Launch the host lazily — deployment, not construction, starts
    /// the server (the paper's container-less behaviour). The host
    /// always carries a plain-text `/metrics` route exposing the
    /// process-wide telemetry registry plus this binding's pool and
    /// dispatcher gauges.
    fn ensure_host(self: &Arc<Self>) -> Result<(String, u16), WspError> {
        let mut host = self.host.lock();
        if host.is_none() {
            let router = wsp_http::Router::new();
            if let Some(credential) = &self.config.httpg {
                guard_router(&router, credential.clone());
            }
            router.deploy_internal("metrics", metrics_handler(Arc::downgrade(self)));
            let server =
                TcpServer::launch_with(self.config.port, router, self.config.server.clone())
                    .map_err(|e| WspError::Deploy(format!("cannot launch HTTP host: {e}")))?;
            *host = Some(server);
        }
        let server = host.as_ref().expect("just ensured");
        Ok(("127.0.0.1".to_owned(), server.port()))
    }

    fn scheme(&self) -> &'static str {
        if self.config.httpg.is_some() {
            "httpg"
        } else {
            "http"
        }
    }

    fn transport(&self) -> TransportKind {
        if self.config.httpg.is_some() {
            TransportKind::Httpg
        } else {
            TransportKind::Http
        }
    }

    /// Issue an HTTP(G) request to an absolute endpoint URI. `timeout`
    /// caps the read wait below the default 10 s — used by deadline
    /// propagation so a call never outlives its remaining budget.
    fn call(
        &self,
        endpoint: &str,
        mut request: Request,
        timeout: Option<Duration>,
    ) -> Result<Response, WspError> {
        let uri = HttpUri::parse(endpoint).map_err(|e| WspError::Invoke(e.to_string()))?;
        if uri.is_httpg() {
            let credential = self
                .config
                .httpg
                .as_ref()
                .ok_or_else(|| WspError::NoBindingFor {
                    scheme: "httpg".into(),
                })?;
            credential.apply(&mut request);
        }
        // Wire-level failures are `Transport`: the resilience layer may
        // retry them or fail over, unlike semantic `Invoke` errors.
        // The pooled path keeps its fixed per-exchange timeout (pooled
        // sockets share their read timeout); one-shot calls honour the
        // tighter per-call budget.
        if self.config.keep_alive {
            self.pool
                .call(&uri.host, uri.port, request)
                .map_err(|e| WspError::Transport(e.to_string()))
        } else {
            let timeout = timeout
                .unwrap_or(DEFAULT_CLIENT_TIMEOUT)
                .min(DEFAULT_CLIENT_TIMEOUT);
            http_call_with_timeout(&uri.host, uri.port, request, timeout)
                .map_err(|e| WspError::Transport(e.to_string()))
        }
    }
}

/// One resilient registry interaction: admission through the
/// registry's circuit breaker, transient (transport) failures retried
/// on the binding's [`ResiliencePolicy`], and the outcome recorded in
/// the `registry.publish` / `registry.locate` telemetry series that
/// `/metrics` exports.
fn registry_call<T>(
    shared: &Shared,
    op: &'static str,
    call: impl Fn() -> Result<T, wsp_uddi::UddiError>,
) -> Result<T, WspError> {
    let registry = telemetry::global();
    let endpoint = shared
        .uddi
        .endpoint_hint()
        .unwrap_or("uddi:anonymous")
        .to_owned();
    let breaker = shared.registry_health.breaker(&endpoint);
    let started = Instant::now();
    let mut attempt = 1u32;
    loop {
        if matches!(breaker.try_acquire(Instant::now()), Admission::Rejected) {
            registry.counter(format!("{op}.errors")).incr();
            return Err(WspError::Transport(format!(
                "registry {endpoint} circuit breaker open"
            )));
        }
        match call() {
            Ok(value) => {
                breaker.on_success(Instant::now());
                registry.counter(op).incr();
                registry
                    .histogram(format!("{op}.rtt_us"))
                    .record_micros(started.elapsed());
                return Ok(value);
            }
            Err(wsp_uddi::UddiError::Transport(why)) => {
                breaker.on_failure(Instant::now());
                let error = WspError::Transport(why);
                attempt += 1;
                match shared.config.registry_policy.backoff_before(attempt) {
                    Some(delay) if shared.config.registry_policy.is_retryable(&error) => {
                        registry.counter(format!("{op}.retries")).incr();
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                    }
                    _ => {
                        registry.counter(format!("{op}.errors")).incr();
                        return Err(error);
                    }
                }
            }
            Err(other) => {
                // The registry answered; the error is semantic, not a
                // liveness signal — the breaker records a success.
                breaker.on_success(Instant::now());
                registry.counter(format!("{op}.errors")).incr();
                return Err(WspError::Invoke(other.to_string()));
            }
        }
    }
}

/// The `/metrics` route: the process-wide telemetry registry rendered
/// as plain text, followed by connection-pool and dispatcher gauges
/// owned by this binding. Holds only a `Weak` so an undeployed binding
/// can drop even while its host lingers.
fn metrics_handler(shared: Weak<Shared>) -> wsp_http::HttpHandler {
    Arc::new(move |_request: &Request| {
        let mut extra = String::new();
        if let Some(shared) = shared.upgrade() {
            let pool = shared.pool.stats();
            extra.push_str(&format!("http_pool_hits {}\n", pool.hits));
            extra.push_str(&format!("http_pool_misses {}\n", pool.misses));
            extra.push_str(&format!("http_pool_retired {}\n", pool.retired));
            extra.push_str(&format!("http_pool_retries {}\n", pool.retries));
            extra.push_str(&format!("http_pool_idle {}\n", shared.pool.idle_count()));
            extra.push_str(&format!(
                "admission_in_flight {}\n",
                shared.admission.in_flight()
            ));
            extra.push_str(&format!(
                "admission_draining {}\n",
                shared.admission.is_draining() as u8
            ));
            let open = shared
                .registry_health
                .snapshot(Instant::now())
                .iter()
                .filter(|(_, state)| *state != BreakerState::Closed)
                .count();
            extra.push_str(&format!("registry_breakers_open {open}\n"));
            let dispatcher = shared.dispatcher.read().clone();
            if let Some(dispatcher) = dispatcher {
                let stats = dispatcher.stats();
                extra.push_str(&format!("dispatch_submitted {}\n", stats.submitted));
                extra.push_str(&format!("dispatch_completed {}\n", stats.completed));
                extra.push_str(&format!("dispatch_failed {}\n", stats.failed));
                extra.push_str(&format!("dispatch_cancelled {}\n", stats.cancelled));
                extra.push_str(&format!("dispatch_shed {}\n", stats.shed));
                extra.push_str(&format!("dispatch_queue_depth {}\n", stats.queue_depth));
                extra.push_str(&format!("dispatch_in_flight {}\n", stats.in_flight));
                extra.push_str(&format!("dispatch_pending_calls {}\n", stats.pending_calls));
                extra.push_str(&format!("dispatch_workers {}\n", stats.workers));
            }
        }
        Response::ok(
            "text/plain; charset=utf-8",
            telemetry::render_metrics_with(telemetry::global(), &extra),
        )
    })
}

/// Map an admission-control rejection to the wire: `503` with a
/// whole-second `Retry-After` (rounded up, HTTP-standard) plus the
/// millisecond-precision `X-WSP-Retry-After-Ms` the WSPeer client
/// prefers.
fn overloaded_response(error: &WspError) -> Response {
    let mut response = Response::unavailable(&error.to_string());
    if let WspError::Overloaded {
        retry_after_ms: Some(ms),
    } = error
    {
        response
            .headers
            .set("Retry-After", ms.div_ceil(1000).max(1).to_string());
        response
            .headers
            .set(overload::RETRY_AFTER_MS_HEADER, ms.to_string());
    }
    response
}

/// The HTTP/UDDI binding: plug into a [`crate::Peer`] and the peer
/// becomes a standard Web service node.
#[derive(Clone)]
pub struct HttpUddiBinding {
    shared: Arc<Shared>,
}

impl HttpUddiBinding {
    pub fn new(uddi: UddiClient, events: EventBus, config: HttpUddiConfig) -> Self {
        let admission = AdmissionController::new(config.load_shed.clone());
        HttpUddiBinding {
            shared: Arc::new(Shared {
                uddi,
                host: Mutex::new(None),
                published: RwLock::new(HashMap::new()),
                pool: ConnectionPool::new(),
                events,
                admission,
                dispatcher: RwLock::new(None),
                registry_health: EndpointHealth::new(BreakerConfig::default()),
                config,
            }),
        }
    }

    /// Against a registry reachable over HTTP.
    pub fn with_registry_uri(uri: &str, events: EventBus) -> Self {
        HttpUddiBinding::new(UddiClient::http(uri), events, HttpUddiConfig::default())
    }

    /// Against an in-process registry (tests, single-process demos).
    pub fn with_local_registry(registry: wsp_uddi::Registry, events: EventBus) -> Self {
        HttpUddiBinding::new(
            UddiClient::direct(registry),
            events,
            HttpUddiConfig::default(),
        )
    }

    /// The host's port, if it has been launched.
    pub fn host_port(&self) -> Option<u16> {
        self.shared.host.lock().as_ref().map(|s| s.port())
    }

    /// Has deployment launched the host yet?
    pub fn host_running(&self) -> bool {
        self.shared.host.lock().is_some()
    }
}

impl Binding for HttpUddiBinding {
    fn kind(&self) -> &'static str {
        "http-uddi"
    }

    fn locator(&self) -> Arc<dyn ServiceLocator> {
        Arc::new(UddiLocator {
            shared: self.shared.clone(),
        })
    }

    fn invoker(&self) -> Arc<dyn Invoker> {
        Arc::new(HttpInvoker {
            shared: self.shared.clone(),
        })
    }

    fn deployer(&self) -> Arc<dyn ServiceDeployer> {
        Arc::new(HttpDeployer {
            shared: self.shared.clone(),
        })
    }

    fn publisher(&self) -> Arc<dyn ServicePublisher> {
        Arc::new(UddiPublisher {
            shared: self.shared.clone(),
        })
    }

    fn on_attach(&self, dispatcher: &Arc<Dispatcher>) {
        *self.shared.dispatcher.write() = Some(dispatcher.clone());
    }
}

// --- deployer --------------------------------------------------------------

struct HttpDeployer {
    shared: Arc<Shared>,
}

impl ServiceDeployer for HttpDeployer {
    fn deploy(
        &self,
        descriptor: ServiceDescriptor,
        handler: Arc<dyn ServiceHandler>,
    ) -> Result<DeployedService, WspError> {
        let (host, port) = self.shared.ensure_host()?;
        let scheme = self.shared.scheme();
        let endpoint = format!("{scheme}://{host}:{port}/{}", descriptor.name);
        let wsdl = WsdlDocument::new(
            descriptor.clone(),
            vec![Port {
                name: format!("{}Port", descriptor.name),
                transport: self.shared.transport(),
                location: endpoint.clone(),
            }],
        );
        let wsdl_xml = wsdl.to_xml();
        let engine = MessageEngine::new(descriptor.clone(), handler);
        let events = self.shared.events.clone();
        let service_name = descriptor.name.clone();
        // `Weak`: the router (inside the host, inside `Shared`) holds
        // this handler, so a strong `Arc<Shared>` here would be a cycle.
        let shared = Arc::downgrade(&self.shared);

        let http_handler: wsp_http::HttpHandler = Arc::new(move |request: &Request| {
            match request.method {
                wsp_http::Method::Get => {
                    // `?wsdl` (and plain GET) serve the description.
                    Response::ok("text/xml; charset=utf-8", wsdl_xml.clone())
                }
                wsp_http::Method::Post => {
                    // Adopt the caller's correlation token (if any) for
                    // every span and event fired while serving this
                    // request — one id reconstructs the full round trip.
                    let correlation = request
                        .headers
                        .get(CORRELATION_HEADER)
                        .and_then(|v| v.trim().parse().ok())
                        .unwrap_or(0u64);
                    let _scope = CorrelationScope::enter(correlation);
                    let registry = telemetry::global();
                    let serve_started = Instant::now();
                    if registry.is_enabled() {
                        registry.span(
                            correlation,
                            "server.request",
                            format_args!("service={service_name}"),
                        );
                    }
                    // Deadline propagation: the wire carries *remaining
                    // budget* (clock-skew safe); re-anchor it locally.
                    let deadline = request
                        .headers
                        .get(overload::DEADLINE_HEADER)
                        .and_then(|v| v.trim().parse::<u64>().ok())
                        .map(overload::deadline_in_ms);
                    // Admission control: gate on in-flight count, the
                    // shared dispatcher's queue depth, the queue-wait
                    // watermark, and an already-expired deadline. The
                    // permit spans the whole serve (RAII).
                    let _permit = match shared.upgrade() {
                        Some(shared) => {
                            let queue_depth = shared
                                .dispatcher
                                .read()
                                .as_ref()
                                .map(|d| d.stats().queue_depth)
                                .unwrap_or(0);
                            match shared.admission.try_admit(queue_depth, deadline) {
                                Ok(permit) => Some(permit),
                                Err(error) => {
                                    if registry.is_enabled() {
                                        registry.span(
                                            correlation,
                                            "server.shed",
                                            format_args!("service={service_name} error={error}"),
                                        );
                                    }
                                    return overloaded_response(&error);
                                }
                            }
                        }
                        None => None, // binding gone; serve best-effort
                    };
                    // Anything the handler invokes downstream inherits
                    // what is left of the caller's budget.
                    let _deadline = DeadlineScope::enter(deadline);
                    let envelope = match Envelope::from_xml(&request.body_str()) {
                        Ok(envelope) => envelope,
                        Err(e) => {
                            if registry.is_enabled() {
                                registry.span(
                                    correlation,
                                    "server.fault",
                                    format_args!("service={service_name} error={e}"),
                                );
                            }
                            let fault = Envelope::fault(e.to_fault());
                            let mut r = Response::new(500, "Internal Server Error");
                            r.headers
                                .set("Content-Type", wsp_soap::constants::CONTENT_TYPE);
                            r.body = fault.to_xml_bytes();
                            return r;
                        }
                    };
                    // The application sees the request before the engine
                    // (Section III, point 2).
                    events.fire_server(&ServerMessageEvent {
                        service: service_name.clone(),
                        phase: ServerPhase::Inbound,
                        envelope: envelope.clone(),
                    });
                    match engine.process(&envelope) {
                        Some(response) => {
                            events.fire_server(&ServerMessageEvent {
                                service: service_name.clone(),
                                phase: ServerPhase::Outbound,
                                envelope: response.clone(),
                            });
                            let status = if response.fault_body().is_some() {
                                500
                            } else {
                                200
                            };
                            let mut r = Response::new(
                                status,
                                if status == 200 {
                                    "OK"
                                } else {
                                    "Internal Server Error"
                                },
                            );
                            r.headers
                                .set("Content-Type", wsp_soap::constants::CONTENT_TYPE);
                            r.body = response.to_xml_bytes();
                            if registry.is_enabled() {
                                registry
                                    .histogram("server.serve_us")
                                    .record_micros(serve_started.elapsed());
                                registry.span(
                                    correlation,
                                    "server.response",
                                    format_args!("service={service_name} status={status}"),
                                );
                            }
                            r
                        }
                        None => {
                            if registry.is_enabled() {
                                registry
                                    .histogram("server.serve_us")
                                    .record_micros(serve_started.elapsed());
                                registry.span(
                                    correlation,
                                    "server.response",
                                    format_args!("service={service_name} status=202"),
                                );
                            }
                            Response::new(202, "Accepted") // one-way
                        }
                    }
                }
                _ => Response::bad_request("SOAP endpoints accept GET (?wsdl) and POST"),
            }
        });

        let host_guard = self.shared.host.lock();
        host_guard
            .as_ref()
            .expect("host launched above")
            .router()
            .deploy(&descriptor.name, http_handler);
        Ok(DeployedService {
            descriptor,
            endpoints: vec![endpoint],
            wsdl,
        })
    }

    fn undeploy(&self, service: &str) -> bool {
        self.shared
            .host
            .lock()
            .as_ref()
            .map(|h| h.router().undeploy(service))
            .unwrap_or(false)
    }

    fn kind(&self) -> &'static str {
        "http"
    }
}

// --- publisher -------------------------------------------------------------

struct UddiPublisher {
    shared: Arc<Shared>,
}

impl ServicePublisher for UddiPublisher {
    fn publish(&self, service: &DeployedService) -> Result<String, WspError> {
        let endpoint = service
            .primary_endpoint()
            .ok_or_else(|| WspError::Publish("service has no endpoint".into()))?;
        // The tmodel + service pair is one logical registry publish:
        // retried together, counted once.
        let saved = registry_call(&self.shared, "registry.publish", || {
            let tmodel = self.shared.uddi.save_tmodel(
                &TModel::new("", format!("{} WSDL", service.name()))
                    .with_overview(format!("{endpoint}?wsdl")),
            )?;
            let mut record =
                BusinessService::new("", self.shared.config.business.clone(), service.name())
                    .with_binding(BindingTemplate::new("", endpoint).with_tmodel(tmodel.key));
            if let Some(doc) = &service.descriptor.documentation {
                record = record.with_description(doc.clone());
            }
            for category in properties_to_uddi_categories(&service.descriptor.properties) {
                record = record.with_category(category);
            }
            self.shared.uddi.save_service(&record)
        })
        .map_err(|e| WspError::Publish(e.to_string()))?;
        self.shared
            .published
            .write()
            .insert(service.name().to_owned(), saved.key.clone());
        Ok(saved.key)
    }

    fn unpublish(&self, service: &str) -> bool {
        let Some(key) = self.shared.published.write().remove(service) else {
            return false;
        };
        registry_call(&self.shared, "registry.unpublish", || {
            self.shared.uddi.delete_service(&key)
        })
        .unwrap_or(false)
    }

    fn kind(&self) -> &'static str {
        "uddi"
    }
}

// --- locator ---------------------------------------------------------------

struct UddiLocator {
    shared: Arc<Shared>,
}

/// Fetch the WSDL behind one UDDI access point. Providers that have
/// gone away (or answer garbage) are skipped, not fatal.
fn fetch_wsdl(shared: &Shared, access_point: &str) -> Option<LocatedService> {
    let request = Request::get(format!(
        "{}?wsdl",
        HttpUri::parse(access_point)
            .map(|u| u.target)
            .unwrap_or_else(|_| "/".into())
    ));
    let response = shared.call(access_point, request, None).ok()?;
    if !response.is_success() {
        return None;
    }
    let wsdl = WsdlDocument::from_xml(&response.body_str()).ok()?;
    Some(LocatedService::new(
        wsdl,
        access_point.to_owned(),
        BindingKind::HttpUddi,
    ))
}

impl ServiceLocator for UddiLocator {
    fn locate(&self, query: &ServiceQuery) -> Result<Vec<LocatedService>, WspError> {
        let registry = telemetry::global();
        let locate_started = Instant::now();
        if registry.is_enabled() {
            registry.counter("uddi.locate.queries").incr();
        }
        let records = registry_call(&self.shared, "registry.locate", || {
            self.shared.uddi.locate(&query.to_uddi())
        })
        .map_err(|e| WspError::Locate(e.to_string()))?;
        let targets: Vec<String> = records
            .iter()
            .flat_map(|record| record.bindings.iter().map(|b| b.access_point.clone()))
            .collect();
        // With a peer dispatcher attached, fetch the per-provider WSDLs
        // in parallel on the pool; collection preserves registry order.
        let dispatcher = self.shared.dispatcher.read().clone();
        if let Some(dispatcher) = dispatcher.filter(|_| targets.len() > 1) {
            let handles: Vec<_> = targets
                .into_iter()
                .map(|access_point| {
                    let shared = self.shared.clone();
                    dispatcher.submit(move || fetch_wsdl(&shared, &access_point))
                })
                .collect();
            let mut found = Vec::new();
            // A submit rejected by a shut-down dispatcher just skips
            // that provider.
            for handle in handles.into_iter().flatten() {
                found.extend(handle.wait());
            }
            if registry.is_enabled() {
                registry
                    .histogram("uddi.locate.rtt_us")
                    .record_micros(locate_started.elapsed());
            }
            return Ok(found);
        }
        let found = targets
            .iter()
            .filter_map(|access_point| fetch_wsdl(&self.shared, access_point))
            .collect();
        if registry.is_enabled() {
            registry
                .histogram("uddi.locate.rtt_us")
                .record_micros(locate_started.elapsed());
        }
        Ok(found)
    }

    fn kind(&self) -> &'static str {
        "uddi"
    }
}

// --- invoker ---------------------------------------------------------------

struct HttpInvoker {
    shared: Arc<Shared>,
}

impl Invoker for HttpInvoker {
    fn invoke(
        &self,
        service: &LocatedService,
        operation: &str,
        args: &[Value],
    ) -> Result<Value, WspError> {
        let proxy = ServiceProxy::new(service.wsdl.descriptor.clone(), service.endpoint.clone());
        let envelope = proxy.encode_request(operation, args)?;
        let target = HttpUri::parse(&service.endpoint)
            .map(|u| u.target)
            .unwrap_or_else(|_| "/".into());
        let mut request = Request::post(
            target,
            wsp_soap::constants::CONTENT_TYPE,
            envelope.to_xml_bytes(),
        );
        // Thread the caller's correlation token through the wire so the
        // serving peer's spans line up with ours in one trace.
        let correlation = telemetry::current_correlation();
        if correlation != 0 {
            request
                .headers
                .set(CORRELATION_HEADER, correlation.to_string());
        }
        // Deadline propagation: ship the *remaining* budget and cap the
        // local read wait at it — a call never outlives its deadline.
        let mut call_timeout = None;
        if let Some(deadline) = overload::current_deadline() {
            match overload::remaining_ms(deadline) {
                Some(ms) => {
                    request
                        .headers
                        .set(overload::DEADLINE_HEADER, ms.to_string());
                    call_timeout = Some(Duration::from_millis(ms));
                }
                None => {
                    // Budget already gone: fail locally rather than
                    // burn the server's time on a doomed request.
                    return Err(WspError::Timeout {
                        what: "deadline expired before send",
                        millis: 0,
                    });
                }
            }
        }
        let registry = telemetry::global();
        let started = Instant::now();
        if registry.is_enabled() {
            registry.span(
                correlation,
                "http.request",
                format_args!("endpoint={} operation={operation}", service.endpoint),
            );
        }
        let response = match self.shared.call(&service.endpoint, request, call_timeout) {
            Ok(response) => {
                if registry.is_enabled() {
                    registry
                        .histogram("http.roundtrip_us")
                        .record_micros(started.elapsed());
                    registry.span(
                        correlation,
                        "http.response",
                        format_args!("status={}", response.status),
                    );
                }
                response
            }
            Err(error) => {
                if registry.is_enabled() {
                    registry.span(correlation, "http.error", format_args!("error={error}"));
                }
                return Err(error);
            }
        };
        let expects_response = service
            .wsdl
            .descriptor
            .find_operation(operation)
            .map(|op| op.expects_response())
            .unwrap_or(true);
        if !expects_response {
            return Ok(Value::Null);
        }
        if response.status == 202 || (response.is_success() && response.body.is_empty()) {
            return Ok(Value::Null);
        }
        if response.status == 503 {
            // A shed, not a failure: the server is alive and asked us
            // to back off. Honour its hint (ms header preferred, the
            // coarse `Retry-After` seconds as fallback).
            let hint = response
                .headers
                .get(overload::RETRY_AFTER_MS_HEADER)
                .and_then(|v| v.trim().parse::<u64>().ok())
                .or_else(|| {
                    response
                        .headers
                        .get("Retry-After")
                        .and_then(|v| v.trim().parse::<u64>().ok())
                        .map(|secs| secs * 1000)
                });
            return Err(WspError::Overloaded {
                retry_after_ms: hint,
            });
        }
        if !response.is_success() && response.status != 500 {
            let why = format!("endpoint answered HTTP {}", response.status);
            // 5xx (other than SOAP's fault-bearing 500) means the server
            // side broke — transient, worth a retry. 4xx is our fault.
            return Err(if response.status >= 500 {
                WspError::Transport(why)
            } else {
                WspError::Invoke(why)
            });
        }
        let envelope = Envelope::from_xml(&response.body_str())
            .map_err(|e| WspError::Invoke(format!("unparseable response: {e}")))?;
        Ok(proxy.decode_response(operation, &envelope)?)
    }

    fn handles(&self, endpoint: &str) -> bool {
        endpoint.starts_with("http://") || endpoint.starts_with("httpg://")
    }

    fn kind(&self) -> &'static str {
        "http"
    }
}

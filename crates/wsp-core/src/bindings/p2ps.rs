//! The P2PS implementation (paper Section IV.B, Figures 4–6): services
//! deployed as pipe collections, published as XML adverts, discovered
//! by rendezvous flooding, and invoked with SOAP over unidirectional
//! pipes using WS-Addressing `ReplyTo` return pipes.
//!
//! One operation = one pipe, matching the paper's
//! `p2ps://id/echo#echostring` scheme; every service additionally
//! carries the *definition pipe* from which its WSDL is retrieved.

use crate::components::{Binding, Invoker, ServiceDeployer, ServiceLocator, ServicePublisher};
use crate::dispatch::{Completer, Dispatcher};
use crate::endpoint::{BindingKind, DeployedService, LocatedService};
use crate::error::WspError;
use crate::events::{EventBus, ServerMessageEvent, ServerPhase};
use crate::overload::{self, AdmissionController, DeadlineScope, LoadShedPolicy};
use crate::query::ServiceQuery;
use crate::telemetry;
use crossbeam_channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};
use wsp_p2ps::{
    decode_request, encode_response, P2psUri, PipeAdvertisement, ReceivedRequest, RpcCorrelator,
    ServiceAdvertisement, ThreadPeer, ThreadPeerEvent, DEFINITION_PIPE, P2PS_NS,
};
use wsp_soap::{Envelope, HeaderBlock};
use wsp_wsdl::{
    MessageEngine, Port, ServiceDescriptor, ServiceHandler, ServiceProxy, TransportKind, Value,
    WsdlDocument,
};

/// Timing knobs of the P2PS binding.
#[derive(Debug, Clone)]
pub struct P2psConfig {
    /// How long a locate call collects query hits before returning —
    /// P2P discovery has no single authoritative answer, so the locator
    /// gathers what the network returns within this window.
    pub discovery_window: Duration,
    /// How long to wait for a response on a return pipe.
    pub request_timeout: Duration,
    /// Admission-control limits for requests this peer hosts over
    /// pipes. Default is unlimited, the historical behaviour.
    pub load_shed: LoadShedPolicy,
}

impl Default for P2psConfig {
    fn default() -> Self {
        P2psConfig {
            discovery_window: Duration::from_millis(300),
            request_timeout: Duration::from_secs(5),
            load_shed: LoadShedPolicy::default(),
        }
    }
}

struct Shared {
    peer: ThreadPeer,
    config: P2psConfig,
    events: EventBus,
    /// Gate on every hosted-service request arriving over a pipe.
    admission: AdmissionController,
    engines: RwLock<HashMap<String, Arc<MessageEngine>>>,
    wsdls: RwLock<HashMap<String, String>>,
    published: RwLock<HashMap<String, ServiceAdvertisement>>,
    correlator: Mutex<RpcCorrelator>,
    /// Outstanding pipe requests, completed by the demux when the
    /// correlated response arrives on the return pipe. Tokens come from
    /// the dispatcher, so they share one space with client calls.
    pending_requests: Mutex<HashMap<u64, Completer<Envelope>>>,
    pending_queries: Mutex<HashMap<u64, Sender<Vec<ServiceAdvertisement>>>>,
    /// The peer's shared dispatch core, installed by `on_attach`; a
    /// standalone binding lazily creates a default one.
    dispatcher: RwLock<Option<Arc<Dispatcher>>>,
    demux_started: AtomicBool,
}

impl Shared {
    /// The dispatcher all binding work runs on: whatever `on_attach`
    /// installed, else a lazily-created default for standalone use.
    fn dispatcher_handle(&self) -> Arc<Dispatcher> {
        if let Some(dispatcher) = self.dispatcher.read().clone() {
            return dispatcher;
        }
        let mut slot = self.dispatcher.write();
        if let Some(dispatcher) = slot.clone() {
            return dispatcher;
        }
        let dispatcher = Dispatcher::with_defaults();
        *slot = Some(dispatcher.clone());
        dispatcher
    }

    /// Start the demultiplexer driver once, on the dispatcher. Called
    /// from `on_attach` and lazily from every component entry point so
    /// a standalone binding still works.
    fn ensure_demux(self: &Arc<Self>) {
        if self.demux_started.swap(true, Ordering::SeqCst) {
            return;
        }
        let dispatcher = self.dispatcher_handle();
        let weak = Arc::downgrade(self);
        dispatcher.spawn_driver(format!("wsp-p2ps-demux-{}", self.peer.id()), move || {
            demux_loop(weak)
        });
    }
}

/// The P2PS binding. Construct with a spawned [`ThreadPeer`]; the
/// binding runs a demultiplexer driver that routes the peer's events to
/// hosted services (server side, served on the dispatcher's pool) and
/// outstanding calls (client side, completed through the correlation
/// table).
#[derive(Clone)]
pub struct P2psBinding {
    shared: Arc<Shared>,
}

impl P2psBinding {
    pub fn new(peer: ThreadPeer, events: EventBus, config: P2psConfig) -> Self {
        let admission = AdmissionController::new(config.load_shed.clone());
        P2psBinding {
            shared: Arc::new(Shared {
                peer,
                config,
                events,
                admission,
                engines: RwLock::new(HashMap::new()),
                wsdls: RwLock::new(HashMap::new()),
                published: RwLock::new(HashMap::new()),
                correlator: Mutex::new(RpcCorrelator::new()),
                pending_requests: Mutex::new(HashMap::new()),
                pending_queries: Mutex::new(HashMap::new()),
                dispatcher: RwLock::new(None),
                demux_started: AtomicBool::new(false),
            }),
        }
    }

    /// This peer's logical id.
    pub fn peer_id(&self) -> wsp_p2ps::PeerId {
        self.shared.peer.id()
    }

    /// Wire this peer to a neighbour (its rendezvous, usually).
    pub fn add_neighbour(&self, peer: wsp_p2ps::PeerId, rendezvous: bool) {
        self.shared.peer.add_neighbour(peer, rendezvous);
    }
}

impl Binding for P2psBinding {
    fn kind(&self) -> &'static str {
        "p2ps"
    }

    fn locator(&self) -> Arc<dyn ServiceLocator> {
        Arc::new(P2psLocator {
            shared: self.shared.clone(),
        })
    }

    fn invoker(&self) -> Arc<dyn Invoker> {
        Arc::new(P2psInvoker {
            shared: self.shared.clone(),
        })
    }

    fn deployer(&self) -> Arc<dyn ServiceDeployer> {
        Arc::new(P2psDeployer {
            shared: self.shared.clone(),
        })
    }

    fn publisher(&self) -> Arc<dyn ServicePublisher> {
        Arc::new(P2psPublisher {
            shared: self.shared.clone(),
        })
    }

    fn on_attach(&self, dispatcher: &Arc<Dispatcher>) {
        // Adopt the peer's shared dispatcher (replacing any lazily
        // created default) and start the demux driver on it.
        *self.shared.dispatcher.write() = Some(dispatcher.clone());
        self.shared.ensure_demux();
    }
}

// --- demultiplexer ----------------------------------------------------------

fn demux_loop(weak: Weak<Shared>) {
    loop {
        let Some(shared) = weak.upgrade() else { return };
        let event = shared.peer.recv_event(Duration::from_millis(50));
        match event {
            Some(ThreadPeerEvent::QueryResult { token, adverts }) => {
                if let Some(tx) = shared.pending_queries.lock().get(&token) {
                    let _ = tx.send(adverts);
                }
            }
            Some(ThreadPeerEvent::PipeDelivery {
                pipe,
                from: _,
                payload,
            }) => {
                if pipe.service.is_some() {
                    // Hosted-service traffic passes admission control
                    // here — before it is queued — then is served on
                    // the worker pool so the demux never blocks on a
                    // handler. The demux decodes the request once (it
                    // already parses return-pipe traffic) so admission
                    // sees the propagated deadline.
                    if let Some(received) = decode_request(&payload) {
                        admit_and_serve(&shared, &pipe, received);
                    }
                } else {
                    // A return pipe: correlate with an outstanding call
                    // and complete its handle.
                    let correlated = shared.correlator.lock().accept_response(&payload);
                    if let Some((token, envelope)) = correlated {
                        if let Some(completer) = shared.pending_requests.lock().remove(&token) {
                            completer.complete(envelope);
                        }
                    }
                }
            }
            Some(_) | None => {}
        }
        drop(shared); // release before blocking again so shutdown works
    }
}

/// Read the propagated deadline (remaining milliseconds, re-anchored
/// locally) from the request's `Deadline` SOAP header, if present.
fn deadline_from_envelope(envelope: &Envelope) -> Option<std::time::Instant> {
    let header = envelope.find_header("", overload::DEADLINE_SOAP_HEADER)?;
    let ms = header.element.text().trim().parse::<u64>().ok()?;
    Some(overload::deadline_in_ms(ms))
}

/// Admission-control gate for one hosted-service request: admitted work
/// runs on the pool under its propagated deadline (expired deadlines
/// are shed again at dequeue); a shed answers immediately with the
/// `wsp:overloaded` busy fault and its retry hint.
fn admit_and_serve(shared: &Arc<Shared>, pipe: &PipeAdvertisement, received: ReceivedRequest) {
    let dispatcher = shared.dispatcher_handle();
    let deadline = deadline_from_envelope(&received.envelope);
    // Definition-pipe reads are exempt: they are cheap metadata, and an
    // overloaded provider must stay discoverable so consumers back off
    // against it rather than treating it as departed.
    if pipe.name == DEFINITION_PIPE {
        let received = Arc::new(received);
        let job_shared = shared.clone();
        let job_pipe = pipe.clone();
        let job_received = received.clone();
        let submitted = dispatcher.execute_with_deadline(deadline, move || {
            serve_request(&job_shared, &job_pipe, &job_received);
        });
        if submitted.is_err() {
            let _deadline = DeadlineScope::enter(deadline);
            serve_request(shared, pipe, &received);
        }
        return;
    }
    match shared
        .admission
        .try_admit(dispatcher.stats().queue_depth, deadline)
    {
        Ok(permit) => {
            let received = Arc::new(received);
            let job_shared = shared.clone();
            let job_pipe = pipe.clone();
            let job_received = received.clone();
            let submitted = dispatcher.execute_with_deadline(deadline, move || {
                let _permit = permit;
                serve_request(&job_shared, &job_pipe, &job_received);
            });
            // Serve inline only if the dispatcher is gone (shut down).
            if submitted.is_err() {
                let _deadline = DeadlineScope::enter(deadline);
                serve_request(shared, pipe, &received);
            }
        }
        Err(_) => {
            let reason = overload::busy_fault_reason(shared.admission.policy().retry_after);
            let busy = Envelope::fault(wsp_soap::Fault::receiver(reason));
            if let Some((reply_pipe, wire)) = encode_response(&received, busy) {
                shared.peer.send_pipe(reply_pipe, wire);
            }
        }
    }
}

/// Server side of Figure 6: answer a request that arrived on one of our
/// service pipes.
fn serve_request(shared: &Shared, pipe: &PipeAdvertisement, received: &ReceivedRequest) {
    let service = pipe.service.clone().expect("checked by caller");

    let response = if pipe.name == DEFINITION_PIPE {
        // Serve the WSDL from the definition pipe.
        shared.wsdls.read().get(&service).map(|xml| {
            let body = wsp_xml::parse(xml).expect("stored WSDL is well-formed");
            Envelope::request(body)
        })
    } else {
        let engine = shared.engines.read().get(&service).cloned();
        match engine {
            Some(engine) => {
                shared.events.fire_server(&ServerMessageEvent {
                    service: service.clone(),
                    phase: ServerPhase::Inbound,
                    envelope: received.envelope.clone(),
                });
                let response = engine.process(&received.envelope);
                if let Some(response) = &response {
                    shared.events.fire_server(&ServerMessageEvent {
                        service: service.clone(),
                        phase: ServerPhase::Outbound,
                        envelope: response.clone(),
                    });
                }
                response
            }
            None => Some(Envelope::fault(wsp_soap::Fault::receiver(format!(
                "service {service:?} is not deployed on this peer"
            )))),
        }
    };

    if let Some(response) = response {
        if let Some((reply_pipe, wire)) = encode_response(received, response) {
            shared.peer.send_pipe(reply_pipe, wire);
        }
    }
}

// --- pipe request/response (Figure 5) ---------------------------------------

fn request_over_pipe(
    shared: &Shared,
    target: &PipeAdvertisement,
    mut envelope: Envelope,
) -> Result<Envelope, WspError> {
    let dispatcher = shared.dispatcher_handle();
    let token = dispatcher.next_token();
    // Deadline propagation: ship the remaining budget as a SOAP header
    // and cap the response wait at it.
    let mut request_timeout = shared.config.request_timeout;
    if let Some(deadline) = overload::current_deadline() {
        match overload::remaining_ms(deadline) {
            Some(ms) => {
                envelope.add_header(HeaderBlock::new(
                    wsp_xml::Element::build("", overload::DEADLINE_SOAP_HEADER)
                        .text(ms.to_string())
                        .finish(),
                ));
                request_timeout = request_timeout.min(Duration::from_millis(ms));
            }
            None => {
                return Err(WspError::Timeout {
                    what: "deadline expired before send",
                    millis: 0,
                });
            }
        }
    }
    let registry = telemetry::global();
    let started = Instant::now();
    if registry.is_enabled() {
        // Spans land under the *caller's* correlation (the invoking
        // job), with the pipe's own correlator token in the detail.
        registry.span(
            telemetry::current_correlation(),
            "p2ps.request",
            format_args!(
                "pipe={}#{} rpc_token={token}",
                target.service.as_deref().unwrap_or(""),
                target.name
            ),
        );
    }
    // Step 1-2: create a return pipe and its advertisement.
    let return_pipe = shared.peer.open_pipe(None);
    // Register the call in the correlation table; the demux completes
    // it when the response arrives — no thread parks on the network.
    let (handle, completer) = dispatcher.register::<Envelope>(token);
    shared.pending_requests.lock().insert(token, completer);
    // Step 3-5: serialise the advert into ReplyTo and send the request.
    let wire = shared
        .correlator
        .lock()
        .encode_request(token, target, &return_pipe, envelope);
    shared.peer.send_pipe(target.clone(), wire);
    // Step 6: await the response (helping the pool while waiting, so a
    // worker making a nested call still serves incoming requests).
    let result = handle.wait_timeout(request_timeout);
    shared.pending_requests.lock().remove(&token);
    // Closing the return pipe abandons any request still correlated to
    // it: on the timeout path the response never arrived, and without
    // this the MessageID → token entry leaked forever.
    shared.correlator.lock().pipe_closed(&return_pipe);
    shared.peer.close_pipe(return_pipe);
    match result {
        Ok(envelope) => {
            if registry.is_enabled() {
                registry
                    .histogram("p2ps.roundtrip_us")
                    .record_micros(started.elapsed());
                registry.span(
                    telemetry::current_correlation(),
                    "p2ps.response",
                    format_args!("rpc_token={token}"),
                );
            }
            // A `wsp:overloaded` receiver fault is a shed, not an
            // application fault: surface it as `Overloaded` so the
            // retry loop honours the server's hint without counting
            // the endpoint as unhealthy.
            if let Some(fault) = envelope.fault_body() {
                if let Some(hint) = overload::parse_busy_fault(&fault.reason) {
                    if registry.is_enabled() {
                        registry.span(
                            telemetry::current_correlation(),
                            "p2ps.shed",
                            format_args!("rpc_token={token}"),
                        );
                    }
                    return Err(WspError::Overloaded {
                        retry_after_ms: hint,
                    });
                }
            }
            Ok(envelope)
        }
        Err(handle) => {
            handle.cancel();
            if registry.is_enabled() {
                registry.span(
                    telemetry::current_correlation(),
                    "p2ps.timeout",
                    format_args!("rpc_token={token}"),
                );
            }
            Err(WspError::Timeout {
                what: "pipe request",
                millis: request_timeout.as_millis() as u64,
            })
        }
    }
}

// --- deployer ----------------------------------------------------------------

struct P2psDeployer {
    shared: Arc<Shared>,
}

fn advert_for(descriptor: &ServiceDescriptor, peer: wsp_p2ps::PeerId) -> ServiceAdvertisement {
    let mut advert = ServiceAdvertisement::new(descriptor.name.clone(), peer);
    for op in &descriptor.operations {
        advert = advert.with_pipe(op.name.clone());
    }
    advert = advert.with_definition_pipe();
    for (key, value) in &descriptor.properties {
        advert = advert.with_attribute(key.clone(), value.clone());
    }
    advert
}

impl ServiceDeployer for P2psDeployer {
    fn deploy(
        &self,
        descriptor: ServiceDescriptor,
        handler: Arc<dyn ServiceHandler>,
    ) -> Result<DeployedService, WspError> {
        // Hosting requires the demux to route incoming pipe traffic.
        self.shared.ensure_demux();
        let advert = advert_for(&descriptor, self.shared.peer.id());
        let endpoint = advert.uri().address();
        let wsdl = WsdlDocument::new(
            descriptor.clone(),
            vec![Port {
                name: format!("{}P2psPort", descriptor.name),
                transport: TransportKind::P2ps,
                location: endpoint.clone(),
            }],
        );
        self.shared.engines.write().insert(
            descriptor.name.clone(),
            Arc::new(MessageEngine::new(descriptor.clone(), handler)),
        );
        self.shared
            .wsdls
            .write()
            .insert(descriptor.name.clone(), wsdl.to_xml());
        // Open the pipes locally; announcement is publish's job.
        self.shared.peer.register(advert);
        Ok(DeployedService {
            descriptor,
            endpoints: vec![endpoint],
            wsdl,
        })
    }

    fn undeploy(&self, service: &str) -> bool {
        let existed = self.shared.engines.write().remove(service).is_some();
        self.shared.wsdls.write().remove(service);
        self.shared.peer.unpublish(service);
        existed
    }

    fn kind(&self) -> &'static str {
        "p2ps"
    }
}

// --- publisher -----------------------------------------------------------------

struct P2psPublisher {
    shared: Arc<Shared>,
}

impl ServicePublisher for P2psPublisher {
    fn publish(&self, service: &DeployedService) -> Result<String, WspError> {
        if !self.shared.engines.read().contains_key(service.name()) {
            return Err(WspError::Publish(format!(
                "{} is not deployed on this peer",
                service.name()
            )));
        }
        let advert = advert_for(&service.descriptor, self.shared.peer.id());
        let location = advert.uri().address();
        self.shared
            .published
            .write()
            .insert(service.name().to_owned(), advert.clone());
        self.shared.peer.publish(advert);
        Ok(location)
    }

    fn unpublish(&self, service: &str) -> bool {
        let existed = self.shared.published.write().remove(service).is_some();
        if existed {
            self.shared.peer.unpublish(service);
        }
        existed
    }

    fn kind(&self) -> &'static str {
        "p2ps"
    }
}

// --- locator ---------------------------------------------------------------------

struct P2psLocator {
    shared: Arc<Shared>,
}

impl ServiceLocator for P2psLocator {
    fn locate(&self, query: &ServiceQuery) -> Result<Vec<LocatedService>, WspError> {
        self.shared.ensure_demux();
        let token = self.shared.dispatcher_handle().next_token();
        let registry = telemetry::global();
        let discovery_started = Instant::now();
        if registry.is_enabled() {
            registry.counter("p2ps.discovery.queries").incr();
            registry.span(
                telemetry::current_correlation(),
                "p2ps.discovery",
                format_args!("query_token={token}"),
            );
        }
        let (tx, rx) = unbounded();
        self.shared.pending_queries.lock().insert(token, tx);
        self.shared.peer.query(token, query.to_p2ps());

        // Collect hits for the discovery window.
        let deadline = Instant::now() + self.shared.config.discovery_window;
        let mut adverts: Vec<ServiceAdvertisement> = Vec::new();
        while let Some(remaining) = deadline.checked_duration_since(Instant::now()) {
            match rx.recv_timeout(remaining) {
                Ok(batch) => {
                    for advert in batch {
                        if !adverts
                            .iter()
                            .any(|a| a.peer == advert.peer && a.name == advert.name)
                        {
                            adverts.push(advert);
                        }
                    }
                }
                Err(_) => break,
            }
        }
        self.shared.pending_queries.lock().remove(&token);

        // Retrieve each hit's WSDL through its definition pipe.
        let mut found = Vec::new();
        for advert in adverts {
            let Some(definition_pipe) = advert.definition_pipe() else {
                continue;
            };
            let get = Envelope::request(wsp_xml::Element::new(P2PS_NS, "GetDefinition"));
            let Ok(response) = request_over_pipe(&self.shared, definition_pipe, get) else {
                continue; // provider vanished mid-discovery
            };
            let Some(defs) = response.payload() else {
                continue;
            };
            let Ok(wsdl) = WsdlDocument::from_element(defs) else {
                continue;
            };
            found.push(LocatedService::new(
                wsdl,
                advert.uri().address(),
                BindingKind::P2ps,
            ));
        }
        if registry.is_enabled() {
            // Full discovery round trip: flood window plus the WSDL
            // retrievals over definition pipes.
            registry
                .histogram("p2ps.discovery.rtt_us")
                .record_micros(discovery_started.elapsed());
            registry
                .counter("p2ps.discovery.hits")
                .add(found.len() as u64);
        }
        Ok(found)
    }

    fn kind(&self) -> &'static str {
        "p2ps"
    }
}

// --- invoker ----------------------------------------------------------------------

struct P2psInvoker {
    shared: Arc<Shared>,
}

impl Invoker for P2psInvoker {
    fn invoke(
        &self,
        service: &LocatedService,
        operation: &str,
        args: &[Value],
    ) -> Result<Value, WspError> {
        self.shared.ensure_demux();
        let uri = P2psUri::parse(&service.endpoint).map_err(|e| WspError::Invoke(e.to_string()))?;
        // One pipe per operation: the fragment is the operation name.
        let target = PipeAdvertisement::new(uri.peer, uri.service.clone(), operation.to_owned());
        let proxy = ServiceProxy::new(service.wsdl.descriptor.clone(), service.endpoint.clone());
        let envelope = proxy.encode_request(operation, args)?;
        let expects_response = service
            .wsdl
            .descriptor
            .find_operation(operation)
            .map(|op| op.expects_response())
            .unwrap_or(true);
        if !expects_response {
            // One-way: no return pipe, fire and forget.
            let mut envelope = envelope;
            envelope.set_addressing(wsp_p2ps::request_headers(&target));
            self.shared.peer.send_pipe(target, envelope.to_xml());
            return Ok(Value::Null);
        }
        let response = request_over_pipe(&self.shared, &target, envelope)?;
        Ok(proxy.decode_response(operation, &response)?)
    }

    fn handles(&self, endpoint: &str) -> bool {
        endpoint.starts_with("p2ps://")
    }

    fn kind(&self) -> &'static str {
        "p2ps"
    }
}

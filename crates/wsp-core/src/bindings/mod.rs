//! The two concrete bindings of the paper's Section IV — the standard
//! HTTP/UDDI implementation and the P2PS implementation — plus tests
//! showing that the same application code drives both, and that
//! components mix across bindings (a P2PS peer using the UDDI locator).

pub mod http_uddi;
pub mod p2ps;

pub use http_uddi::{HttpUddiBinding, HttpUddiConfig};
pub use p2ps::{P2psBinding, P2psConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::BindingKind;
    use crate::events::{CollectingListener, EventBus, ServerPhase};
    use crate::peer::Peer;
    use crate::query::ServiceQuery;
    use std::sync::Arc;
    use std::time::Duration;
    use wsp_p2ps::{PeerConfig, PeerId, ThreadNetwork};
    use wsp_uddi::Registry;
    use wsp_wsdl::{ServiceDescriptor, Value};

    fn echo_handler() -> Arc<dyn wsp_wsdl::ServiceHandler> {
        Arc::new(|_op: &str, args: &[Value]| Ok(args[0].clone()))
    }

    /// Figure 3: deploy → publish → locate → invoke over HTTP/UDDI.
    #[test]
    fn figure3_http_uddi_lifecycle() {
        let registry = Registry::new();
        let events = EventBus::new();
        let listener = CollectingListener::new();
        events.add_listener(listener.clone());

        let provider_binding =
            HttpUddiBinding::with_local_registry(registry.clone(), events.clone());
        let provider = Peer::new();
        provider.attach(&provider_binding);
        // Container-less: no HTTP server until the first deploy.
        assert!(!provider_binding.host_running());
        provider
            .server()
            .deploy_and_publish(ServiceDescriptor::echo(), echo_handler())
            .unwrap();
        assert!(provider_binding.host_running());

        let consumer = Peer::with_binding(&HttpUddiBinding::with_local_registry(
            registry,
            EventBus::new(),
        ));
        let service = consumer
            .client()
            .locate_one(&ServiceQuery::by_name("Echo"))
            .unwrap();
        assert_eq!(service.kind, BindingKind::HttpUddi);
        let result = consumer
            .client()
            .invoke(&service, "echoString", &[Value::string("over http")])
            .unwrap();
        assert_eq!(result, Value::string("over http"));

        // The provider saw the request either side of the engine.
        let phases: Vec<ServerPhase> = listener
            .server_messages
            .read()
            .iter()
            .map(|e| e.phase)
            .collect();
        assert_eq!(phases, vec![ServerPhase::Inbound, ServerPhase::Outbound]);
    }

    fn p2ps_pair() -> (Peer, P2psBinding, Peer, P2psBinding) {
        let network = ThreadNetwork::new();
        let rv = network.spawn(PeerConfig::rendezvous(PeerId(0x100)));
        let provider_peer = network.spawn(PeerConfig::ordinary(PeerId(0x1)));
        let consumer_peer = network.spawn(PeerConfig::ordinary(PeerId(0x2)));
        provider_peer.add_neighbour(rv.id(), true);
        consumer_peer.add_neighbour(rv.id(), true);
        rv.add_neighbour(provider_peer.id(), false);
        rv.add_neighbour(consumer_peer.id(), false);
        // The rendezvous peer thread must outlive the test: leak it.
        std::mem::forget(rv);

        let provider_binding =
            P2psBinding::new(provider_peer, EventBus::new(), P2psConfig::default());
        let consumer_binding =
            P2psBinding::new(consumer_peer, EventBus::new(), P2psConfig::default());
        let provider = Peer::with_binding(&provider_binding);
        let consumer = Peer::with_binding(&consumer_binding);
        (provider, provider_binding, consumer, consumer_binding)
    }

    /// Figure 4: the identical application steps over P2PS.
    #[test]
    fn figure4_p2ps_lifecycle() {
        let (provider, _pb, consumer, _cb) = p2ps_pair();
        provider
            .server()
            .deploy_and_publish(ServiceDescriptor::echo(), echo_handler())
            .unwrap();
        std::thread::sleep(Duration::from_millis(150)); // advert propagation

        let service = consumer
            .client()
            .locate_one(&ServiceQuery::by_name("Echo"))
            .unwrap();
        assert_eq!(service.kind, BindingKind::P2ps);
        assert!(service.endpoint.starts_with("p2ps://"));
        let result = consumer
            .client()
            .invoke(&service, "echoString", &[Value::string("over pipes")])
            .unwrap();
        assert_eq!(result, Value::string("over pipes"));
    }

    /// C6: binding composition — a peer invoking over P2PS while
    /// locating through UDDI, because the provider published to both.
    #[test]
    fn mixed_binding_uddi_locator_p2ps_invoker() {
        let (provider, provider_binding, consumer, _cb) = p2ps_pair();
        let registry = Registry::new();

        // Provider deploys on P2PS, then *additionally* publishes its
        // P2PS endpoint into the UDDI registry (the paper: "a P2PS
        // Server could use the UDDI conversant ServicePublisher").
        let deployed = provider
            .server()
            .deploy_and_publish(ServiceDescriptor::echo(), echo_handler())
            .unwrap();
        let _ = provider_binding; // host side set up
        let uddi = wsp_uddi::UddiClient::direct(registry.clone());
        uddi.save_service(
            &wsp_uddi::BusinessService::new("", "wspeer", deployed.name()).with_binding(
                wsp_uddi::BindingTemplate::new("", deployed.primary_endpoint().unwrap()),
            ),
        )
        .unwrap();

        // Consumer: UDDI locator answers with a p2ps:// endpoint; the
        // registry cannot serve `?wsdl` for pipes, so the locator falls
        // back to... nothing — instead the consumer locates via UDDI
        // *keys* and retargets. Here we check the key mixed-mode path
        // the paper names: locate via UDDI, invoke via P2PS.
        let records = uddi
            .locate(&ServiceQuery::by_name("Echo").to_uddi())
            .unwrap();
        assert_eq!(records.len(), 1);
        let endpoint = records[0].bindings[0].access_point.clone();
        assert!(endpoint.starts_with("p2ps://"));

        // Build the located service from the deployed WSDL (the
        // definition pipe would serve the same document).
        let service = crate::endpoint::LocatedService::new(
            deployed.wsdl.clone(),
            endpoint,
            BindingKind::P2ps,
        );
        std::thread::sleep(Duration::from_millis(100));
        let result = consumer
            .client()
            .invoke(&service, "echoString", &[Value::string("mixed mode")])
            .unwrap();
        assert_eq!(result, Value::string("mixed mode"));
    }
}

//! The root of the interface tree: a WSPeer `Peer` is simultaneously a
//! service provider and a service consumer (Figure 2).

use crate::client::Client;
use crate::components::Binding;
use crate::dispatch::{Dispatcher, DispatcherConfig};
use crate::events::{EventBus, PeerMessageListener};
use crate::server::Server;
use std::sync::Arc;

/// A service-oriented peer: one `Client`, one `Server`, one event bus,
/// one [`Dispatcher`].
///
/// All events fired anywhere in the tree propagate here; applications
/// implement [`PeerMessageListener`] and register with
/// [`Peer::add_listener`]. All work submitted anywhere in the tree —
/// client calls, binding request serving — runs on the one shared
/// dispatch core, visible through [`Peer::dispatcher`].
pub struct Peer {
    client: Arc<Client>,
    server: Arc<Server>,
    events: EventBus,
    dispatcher: Arc<Dispatcher>,
}

impl Peer {
    /// An empty peer — plug components in before use.
    pub fn new() -> Peer {
        Peer::with_event_bus(EventBus::new())
    }

    /// A peer firing into an existing bus — use this when a binding was
    /// constructed around the same bus, so *all* five event kinds reach
    /// one listener set.
    pub fn with_event_bus(events: EventBus) -> Peer {
        Peer::with_parts(events, Dispatcher::new(DispatcherConfig::default()))
    }

    /// Full control: an existing bus *and* an existing dispatch core
    /// (e.g. one sized for a benchmark, or shared across peers).
    pub fn with_parts(events: EventBus, dispatcher: Arc<Dispatcher>) -> Peer {
        Peer {
            client: Client::with_dispatcher(events.clone(), dispatcher.clone()),
            server: Server::with_dispatcher(events.clone(), dispatcher.clone()),
            events,
            dispatcher,
        }
    }

    /// A peer wired to one substrate. Figures 3 and 4 differ *only* in
    /// the binding handed to this constructor.
    pub fn with_binding(binding: &dyn Binding) -> Peer {
        let peer = Peer::new();
        peer.attach(binding);
        peer
    }

    /// Plug a binding's four components into the tree. May be called
    /// again (or per-component setters used) to re-bind at runtime.
    /// Hands the binding the shared dispatcher via
    /// [`Binding::on_attach`].
    pub fn attach(&self, binding: &dyn Binding) {
        self.client.set_locator(binding.locator());
        self.client.add_invoker(binding.invoker());
        self.server.set_deployer(binding.deployer());
        self.server.set_publisher(binding.publisher());
        binding.on_attach(&self.dispatcher);
    }

    /// The shared dispatch core for this peer's whole tree.
    pub fn dispatcher(&self) -> &Arc<Dispatcher> {
        &self.dispatcher
    }

    pub fn client(&self) -> &Arc<Client> {
        &self.client
    }

    /// The per-endpoint circuit-breaker registry maintained by this
    /// peer's client (see `wsp_core::health`).
    pub fn health(&self) -> &Arc<crate::health::EndpointHealth> {
        self.client.health()
    }

    /// The process-wide telemetry registry this peer's dispatch core,
    /// client and bindings record into (see `wsp_core::telemetry`).
    /// Process-wide because correlation tokens are process-unique: one
    /// trace reconstructs a call across every peer in the process.
    pub fn telemetry(&self) -> &'static crate::telemetry::Telemetry {
        crate::telemetry::global()
    }

    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Register an application listener for all five event kinds.
    pub fn add_listener(&self, listener: Arc<dyn PeerMessageListener>) {
        self.events.add_listener(listener);
    }

    /// The shared event bus (bindings fire server events through this).
    pub fn events(&self) -> &EventBus {
        &self.events
    }
}

impl Default for Peer {
    fn default() -> Self {
        Peer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::CollectingListener;

    #[test]
    fn peer_shares_one_bus_across_the_tree() {
        let peer = Peer::new();
        let listener = CollectingListener::new();
        peer.add_listener(listener.clone());
        assert_eq!(peer.events().listener_count(), 1);
        // Client and Server fire into the same bus; their unit tests
        // cover the firing, here we check the wiring identity.
        peer.events()
            .fire_deployment(&crate::events::DeploymentMessageEvent {
                service: "S".into(),
                endpoints: vec![],
            });
        assert_eq!(listener.deployments.read().len(), 1);
    }

    #[test]
    fn peer_shares_one_dispatcher_across_the_tree() {
        let peer = Peer::new();
        assert!(Arc::ptr_eq(peer.dispatcher(), peer.client().dispatcher()));
        assert!(Arc::ptr_eq(peer.dispatcher(), peer.server().dispatcher()));
        // Work submitted through the client shows up in the peer's stats.
        let handle = peer.dispatcher().submit(|| 1 + 1).unwrap();
        assert_eq!(handle.wait(), 2);
        assert_eq!(peer.dispatcher().stats().submitted, 1);
    }
}

//! The shared dispatch core: one worker pool and one correlation table
//! behind every invocation pipeline in the tree.
//!
//! The paper calls WSPeer "essentially an asynchronous, event driven
//! system"; this module is the machinery that makes the synchronous
//! API a thin wrapper over the asynchronous one rather than a separate
//! code path. A [`Dispatcher`] owns a bounded work queue drained by a
//! fixed pool of workers. Every call — sync or async, locate or invoke,
//! HTTP or P2PS — is a job submitted here plus a [`CallHandle`] keyed
//! by a correlation token; `Client::invoke` is literally
//! `invoke_call(..).wait()`.
//!
//! Two design points keep the pool deadlock-free:
//!
//! * **Helping waits.** A thread blocked in [`CallHandle::wait`] (or
//!   [`Dispatcher::flush`], or a submitter facing a full queue) does
//!   not just sleep — it pops queued jobs and runs them inline. A
//!   worker that performs a nested synchronous call therefore makes
//!   progress even when every pool thread is waiting, and a full
//!   queue drains through the very threads pushing into it.
//! * **External completions.** Calls whose result arrives from the
//!   outside world (a P2PS response pipe, say) register a token and
//!   get a [`Completer`]; no worker is parked waiting for the network.
//!
//! Jobs are panic-isolated: a panicking job poisons its own handle
//! (the waiter re-panics with the message; `wait_timeout` reports it
//! as an error) and bumps the `failed` counter, but the worker thread
//! survives.

//! The token lifecycle itself — registered → completed/poisoned/
//! cancelled → taken — lives in the pure
//! [`crate::machines::correlation::CorrelationMachine`]; this module is
//! its runtime shell. Every lifecycle transition steps the machine
//! under one mutex (the machine state *is* the correlation table);
//! values and panic messages travel through per-call mailboxes the
//! effects point at. Lock order is always machine → mailbox, and
//! waiters re-check their mailbox on a short condvar timeout, so a
//! missed notify can only delay a wake, never lose one. `wsp-check`
//! exhaustively explores the machine; the tests here exercise the
//! shell around it.

use crate::error::WspError;
use crate::machines::correlation::{
    CorrelationEffect, CorrelationEvent, CorrelationMachine, CorrelationState,
};
use crate::overload::DeadlineScope;
use crate::telemetry::{self, CorrelationScope, Counter, Histogram};
use crossbeam_channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wsp_simnet::Machine;

/// Sizing knobs for a [`Dispatcher`].
#[derive(Debug, Clone)]
pub struct DispatcherConfig {
    /// Fixed number of pool threads.
    pub workers: usize,
    /// Bounded queue capacity; submitters past this point help drain
    /// the queue instead of piling work up without limit.
    pub queue_capacity: usize,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        DispatcherConfig {
            workers: 4,
            queue_capacity: 256,
        }
    }
}

/// A point-in-time snapshot of a dispatcher's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatcherStats {
    /// Jobs accepted onto the queue since construction.
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs that panicked (isolated; the worker survived).
    pub failed: u64,
    /// Calls cancelled before completion.
    pub cancelled: u64,
    /// Jobs shed unrun at dequeue because their propagated deadline had
    /// already expired (nobody was waiting for the answer).
    pub shed: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Jobs currently executing (workers and helpers).
    pub in_flight: usize,
    /// Correlation-table entries still awaiting a result.
    pub pending_calls: usize,
    /// Pool size.
    pub workers: usize,
}

type BoxedFn = Box<dyn FnOnce() + Send>;

/// One queued unit of work. `enqueued_at` is set at submission while
/// telemetry is enabled; [`Inner::run_job`] then records queue-wait and
/// run time against the dispatcher's cached histograms — no extra
/// closure wrapping on the hot path.
struct Job {
    run: BoxedFn,
    enqueued_at: Option<Instant>,
    /// Shed the job unrun if this has passed by the time it is popped:
    /// the caller's propagated deadline, checked at dequeue (see
    /// [`Dispatcher::execute_with_deadline`]).
    deadline: Option<Instant>,
}

/// What a completed (or poisoned) call leaves in its mailbox. The
/// *authority* on whether mail may be read or written is the
/// correlation machine; the mailbox is dumb storage plus a condvar.
enum Mail<T> {
    Value(T),
    /// The job producing this result panicked; the message survives.
    Poison(String),
}

struct CallState<T> {
    mail: Mutex<Option<Mail<T>>>,
    cv: Condvar,
}

struct Inner {
    /// `None` once shutdown has begun; taking it disconnects workers.
    jobs_tx: Mutex<Option<Sender<Job>>>,
    jobs_rx: Receiver<Job>,
    machine: CorrelationMachine,
    /// The correlation table: the pure machine's state, stepped under
    /// this mutex. Always locked BEFORE any call's mailbox.
    calls: Mutex<CorrelationState>,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    shed: AtomicU64,
    in_flight: AtomicUsize,
    /// Queued + running jobs; [`Dispatcher::flush`] waits for zero.
    jobs_pending: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    workers: usize,
    /// Cached telemetry handles — recording through them is a single
    /// relaxed load when the global registry is disabled.
    queue_wait_us: Arc<Histogram>,
    run_us: Arc<Histogram>,
    queue_depth: Arc<Histogram>,
    shed_expired: Arc<Counter>,
}

/// Correlation tokens are allocated process-wide, not per dispatcher,
/// so a token doubles as a globally unambiguous correlation id in the
/// telemetry trace even when several peers share one process.
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

impl Inner {
    /// Pop one queued job and run it on the calling thread. The heart
    /// of the helping protocol — workers, waiters and submitters all
    /// drain the queue through this.
    fn try_run_one(&self) -> bool {
        match self.jobs_rx.try_recv() {
            Ok(job) => {
                self.run_job(job);
                true
            }
            Err(_) => false,
        }
    }

    fn run_job(&self, job: Job) {
        // Dequeue-time deadline shed: if the caller's budget ran out
        // while the job sat in the queue, nobody is waiting for the
        // answer — dropping the closure (releasing any admission permit
        // it holds) beats computing a response for a hung-up caller.
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            self.shed.fetch_add(1, Ordering::SeqCst);
            self.shed_expired.incr();
            drop(job.run);
            self.jobs_pending.fetch_sub(1, Ordering::SeqCst);
            let _idle = self.idle_lock.lock();
            self.idle_cv.notify_all();
            return;
        }
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        // One clock read serves as both queue-wait end and run start.
        let started = job.enqueued_at.map(|enqueued_at| {
            let now = Instant::now();
            self.queue_wait_us
                .record_micros(now.saturating_duration_since(enqueued_at));
            now
        });
        // Backstop isolation for fire-and-forget jobs; call-producing
        // jobs already poison their own handle before unwinding here.
        let outcome = catch_unwind(AssertUnwindSafe(job.run));
        if let Some(started) = started {
            self.run_us.record_micros(started.elapsed());
        }
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        match outcome {
            Ok(()) => self.completed.fetch_add(1, Ordering::SeqCst),
            Err(_) => self.failed.fetch_add(1, Ordering::SeqCst),
        };
        self.jobs_pending.fetch_sub(1, Ordering::SeqCst);
        let _idle = self.idle_lock.lock();
        self.idle_cv.notify_all();
    }

    /// Step the correlation machine under its lock and return the
    /// effects. Composite operations that must write a mailbox in the
    /// same critical section lock `calls` themselves instead.
    fn step_call(&self, event: CorrelationEvent) -> Vec<CorrelationEffect> {
        let mut calls = self.calls.lock();
        let (next, effects) = self.machine.step(&calls, &event);
        *calls = next;
        effects
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_owned()
    }
}

/// Handle to one pending call, keyed by its correlation token. The
/// token is the same value carried by the matching
/// [`crate::events::DiscoveryMessageEvent`] /
/// [`crate::events::ClientMessageEvent`], so applications can pair
/// events with the handles they hold.
pub struct CallHandle<T> {
    token: u64,
    state: Arc<CallState<T>>,
    inner: Arc<Inner>,
}

impl<T: Send + 'static> CallHandle<T> {
    /// The correlation token identifying this call in events and in
    /// the dispatcher's pending-call table.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Has a result arrived (or the call been poisoned)?
    pub fn is_complete(&self) -> bool {
        self.state.mail.lock().is_some()
    }

    /// Non-blocking snapshot of the result, leaving it in place.
    pub fn try_poll(&self) -> Option<T>
    where
        T: Clone,
    {
        match &*self.state.mail.lock() {
            Some(Mail::Value(value)) => Some(value.clone()),
            _ => None,
        }
    }

    /// Block until the result arrives, helping the pool run queued
    /// jobs in the meantime (so waiting inside a worker cannot
    /// deadlock the pool). Panics if the producing job panicked.
    pub fn wait(self) -> T {
        match self.wait_until(None) {
            Ok(value) => value,
            Err(_) => unreachable!("wait_until without deadline cannot time out"),
        }
    }

    /// Like [`CallHandle::wait`] but gives up after `timeout`,
    /// returning the handle back so the caller may keep waiting or
    /// [`CallHandle::cancel`].
    pub fn wait_timeout(self, timeout: Duration) -> Result<T, CallHandle<T>> {
        self.wait_until(Some(Instant::now() + timeout))
    }

    /// Step a `Take` event through the correlation machine. Returns the
    /// value on `YieldValue`, re-panics the waiter on `PanicWaiter`
    /// (with every lock released first), and returns `None` while the
    /// call is still pending. Lock order: machine, then mailbox.
    fn try_take(&self) -> Option<T> {
        let mut calls = self.inner.calls.lock();
        let (next, effects) = self
            .inner
            .machine
            .step(&calls, &CorrelationEvent::Take(self.token));
        *calls = next;
        match effects.first() {
            Some(CorrelationEffect::YieldValue(_)) => {
                let mail = self.state.mail.lock().take();
                drop(calls);
                match mail {
                    Some(Mail::Value(value)) => Some(value),
                    _ => unreachable!("machine yielded a value the mailbox never received"),
                }
            }
            Some(CorrelationEffect::PanicWaiter(_)) => {
                let mail = self.state.mail.lock().take();
                drop(calls);
                let message = match mail {
                    Some(Mail::Poison(message)) => message,
                    _ => "job panicked".to_owned(),
                };
                panic!("call {} panicked: {message}", self.token);
            }
            _ => None,
        }
    }

    fn wait_until(self, deadline: Option<Instant>) -> Result<T, CallHandle<T>> {
        loop {
            if let Some(value) = self.try_take() {
                return Ok(value);
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(self);
            }
            // Help: run one queued job; only sleep when the queue is
            // empty, and then only briefly so external completions are
            // picked up promptly (and a notify racing this check is
            // recovered by the timeout).
            if !self.inner.try_run_one() {
                let mut mail = self.state.mail.lock();
                if mail.is_none() {
                    self.state.cv.wait_for(&mut mail, Duration::from_millis(5));
                }
            }
        }
    }

    /// Deadline-bounded wait that does NOT help run queued jobs: the
    /// waiter only parks on the completion condvar, so even if the
    /// awaited job itself is slow the deadline is honoured. Must be
    /// called from an application thread, not a pool worker (a worker
    /// parked here is one worker fewer to run the job it waits for).
    fn wait_until_passive(self, deadline: Instant) -> Result<T, CallHandle<T>> {
        loop {
            if let Some(value) = self.try_take() {
                return Ok(value);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(self);
            }
            let mut mail = self.state.mail.lock();
            if mail.is_none() {
                self.state.cv.wait_for(&mut mail, deadline - now);
            }
        }
    }

    /// Abandon the call. A result arriving later is dropped. Returns
    /// `false` if the call had already completed.
    pub fn cancel(self) -> bool {
        let effects = self.inner.step_call(CorrelationEvent::Cancel(self.token));
        let cancelled = effects
            .iter()
            .any(|e| matches!(e, CorrelationEffect::CountCancelled(_)));
        if cancelled {
            self.inner.cancelled.fetch_add(1, Ordering::SeqCst);
        }
        // Dropping `self` now steps a second Cancel, which the machine
        // treats as a no-op: the token is already gone.
        cancelled
    }
}

impl<T> Drop for CallHandle<T> {
    /// Dropping a handle before completion is an eager, explicit
    /// cancellation: the correlation-table entry is removed NOW — not
    /// when a late result happens to arrive, not at dispatcher
    /// teardown. An unclaimed delivered result is discarded the same
    /// way. After `wait`/`cancel` consumed the call, the machine sees
    /// an unknown token and this is a no-op.
    fn drop(&mut self) {
        let effects = self.inner.step_call(CorrelationEvent::Cancel(self.token));
        if effects
            .iter()
            .any(|e| matches!(e, CorrelationEffect::CountCancelled(_)))
        {
            self.inner.cancelled.fetch_add(1, Ordering::SeqCst);
        }
    }
}

impl<T: Send + 'static> CallHandle<Result<T, WspError>> {
    /// Deadline-bounded wait for a fallible call: the never-hang form.
    /// On timeout the call is cancelled (a late result is dropped) and
    /// a classified [`WspError::Timeout`] comes back instead of the
    /// handle — callers waiting on unreliable peers get an error they
    /// can retry or report, not a stranded thread. The fault-injection
    /// suite uses this as its watchdog.
    ///
    /// Unlike [`CallHandle::wait_timeout`] this wait does not help run
    /// queued jobs — helping could pull the slow job being watched onto
    /// this very thread and blow the deadline. Call it from application
    /// threads, not from inside a pool worker.
    pub fn wait_within(self, timeout: Duration) -> Result<T, WspError> {
        let millis = timeout.as_millis() as u64;
        match self.wait_until_passive(Instant::now() + timeout) {
            Ok(result) => result,
            Err(handle) => {
                handle.cancel();
                Err(WspError::Timeout {
                    what: "call deadline",
                    millis,
                })
            }
        }
    }
}

impl<T> std::fmt::Debug for CallHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CallHandle")
            .field("token", &self.token)
            .finish()
    }
}

/// The completion side of an externally-resolved call (see
/// [`Dispatcher::register`]). Single-shot: completing consumes it.
pub struct Completer<T> {
    token: u64,
    state: Arc<CallState<T>>,
    inner: Arc<Inner>,
}

impl<T: Send + 'static> Completer<T> {
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Deliver the result. Returns `false` if the call was cancelled
    /// or already completed (the value is dropped in that case).
    pub fn complete(self, value: T) -> bool {
        // The mailbox is written while still holding the machine lock,
        // so a waiter whose Take was answered with YieldValue always
        // finds its mail.
        let mut calls = self.inner.calls.lock();
        let (next, effects) = self
            .inner
            .machine
            .step(&calls, &CorrelationEvent::Complete(self.token));
        *calls = next;
        if effects
            .iter()
            .any(|e| matches!(e, CorrelationEffect::DeliverValue(_)))
        {
            let mut mail = self.state.mail.lock();
            *mail = Some(Mail::Value(value));
            self.state.cv.notify_all();
            true
        } else {
            false
        }
    }

    fn poison(self, message: String) {
        let mut calls = self.inner.calls.lock();
        let (next, effects) = self
            .inner
            .machine
            .step(&calls, &CorrelationEvent::Poison(self.token));
        *calls = next;
        if effects
            .iter()
            .any(|e| matches!(e, CorrelationEffect::DeliverPoison(_)))
        {
            let mut mail = self.state.mail.lock();
            *mail = Some(Mail::Poison(message));
            self.state.cv.notify_all();
        }
    }
}

impl<T> std::fmt::Debug for Completer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completer")
            .field("token", &self.token)
            .finish()
    }
}

/// The shared dispatch core; see the module docs. One per [`crate::Peer`],
/// shared by its `Client`, `Server` and attached bindings.
pub struct Dispatcher {
    inner: Arc<Inner>,
    worker_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Dispatcher {
    pub fn new(config: DispatcherConfig) -> Arc<Dispatcher> {
        let workers = config.workers.max(1);
        let (jobs_tx, jobs_rx) = bounded::<Job>(config.queue_capacity.max(1));
        let inner = Arc::new(Inner {
            jobs_tx: Mutex::new(Some(jobs_tx)),
            jobs_rx,
            machine: CorrelationMachine,
            calls: Mutex::new(CorrelationMachine.initial()),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            jobs_pending: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            workers,
            queue_wait_us: telemetry::global().histogram("dispatch.queue_wait_us"),
            run_us: telemetry::global().histogram("dispatch.run_us"),
            queue_depth: telemetry::global().histogram("dispatch.queue_depth"),
            shed_expired: telemetry::global().counter("dispatch.shed_expired"),
        });
        let mut handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let inner = inner.clone();
            let handle = std::thread::Builder::new()
                .name(format!("wsp-worker-{index}"))
                .spawn(move || {
                    while let Ok(job) = inner.jobs_rx.recv() {
                        inner.run_job(job);
                    }
                })
                .expect("spawn dispatcher worker");
            handles.push(handle);
        }
        Arc::new(Dispatcher {
            inner,
            worker_handles: Mutex::new(handles),
        })
    }

    pub fn with_defaults() -> Arc<Dispatcher> {
        Dispatcher::new(DispatcherConfig::default())
    }

    /// Allocate a correlation token. Tokens are unique process-wide
    /// across locates, invokes and binding-internal requests, so one
    /// table correlates the whole peer — and the same value serves as
    /// the unambiguous correlation id in the telemetry trace.
    pub fn next_token(&self) -> u64 {
        NEXT_TOKEN.fetch_add(1, Ordering::Relaxed)
    }

    /// Submit `f` under a fresh token; its return value completes the
    /// returned handle.
    pub fn submit<T, F>(&self, f: F) -> Result<CallHandle<T>, WspError>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.submit_with_token(self.next_token(), f)
    }

    /// Submit `f` under a caller-allocated token (use
    /// [`Dispatcher::next_token`]), so events fired inside `f` can
    /// carry the same token the handle exposes.
    pub fn submit_with_token<T, F>(&self, token: u64, f: F) -> Result<CallHandle<T>, WspError>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (handle, completer) = self.register::<T>(token);
        let job: BoxedFn = Box::new(move || {
            // The token doubles as the correlation id: every span the
            // job records (directly or via bindings) carries it.
            let _correlation = CorrelationScope::enter(token);
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(value) => {
                    completer.complete(value);
                }
                Err(payload) => {
                    let message = panic_message(payload);
                    completer.poison(message.clone());
                    // Re-raise so run_job counts the failure; the worker
                    // catches it again and survives.
                    std::panic::panic_any(message);
                }
            }
        });
        match self.enqueue(job, true, None) {
            Ok(()) => Ok(handle),
            // On failure `handle` drops here: its Cancel event removes
            // the just-registered correlation entry eagerly.
            Err(e) => Err(e),
        }
    }

    /// Fire-and-forget: run `f` on the pool with no handle (server-side
    /// request serving, event pumping). Panics are isolated and counted.
    /// The submitter's correlation id (if any) is inherited, so spans
    /// recorded by fan-out work still name the originating call.
    pub fn execute<F>(&self, f: F) -> Result<(), WspError>
    where
        F: FnOnce() + Send + 'static,
    {
        self.execute_with_deadline(None, f)
    }

    /// [`Dispatcher::execute`] with a propagated call deadline: if the
    /// deadline passes while the job is still queued it is shed unrun
    /// (counted in [`DispatcherStats::shed`] and the
    /// `dispatch.shed_expired` telemetry counter); if the job does run,
    /// it runs inside a [`DeadlineScope`] so nested work can see the
    /// remaining budget. The server-side half of deadline propagation.
    pub fn execute_with_deadline<F>(&self, deadline: Option<Instant>, f: F) -> Result<(), WspError>
    where
        F: FnOnce() + Send + 'static,
    {
        let parent = telemetry::current_correlation();
        self.enqueue(
            Box::new(move || {
                let _correlation = CorrelationScope::enter(parent);
                let _deadline = DeadlineScope::enter(deadline);
                f()
            }),
            true,
            deadline,
        )
    }

    /// Non-blocking submit: errors instead of helping when the queue is
    /// full — the backpressure-sensitive entry point.
    pub fn try_submit<T, F>(&self, f: F) -> Result<CallHandle<T>, WspError>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let token = self.next_token();
        let (handle, completer) = self.register::<T>(token);
        let job: BoxedFn = Box::new(move || {
            let _correlation = CorrelationScope::enter(token);
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(value) => {
                    completer.complete(value);
                }
                Err(payload) => {
                    let message = panic_message(payload);
                    completer.poison(message.clone());
                    std::panic::panic_any(message);
                }
            }
        });
        match self.enqueue(job, false, None) {
            Ok(()) => Ok(handle),
            Err(e) => Err(e),
        }
    }

    fn enqueue(
        &self,
        run: BoxedFn,
        help_when_full: bool,
        deadline: Option<Instant>,
    ) -> Result<(), WspError> {
        // Timestamp for queue-wait/run-time measurement only while
        // telemetry is on: a disabled registry costs nothing but this
        // one check.
        let mut job = Job {
            run,
            enqueued_at: telemetry::global().is_enabled().then(Instant::now),
            deadline,
        };
        loop {
            let Some(tx) = self.inner.jobs_tx.lock().clone() else {
                return Err(WspError::Dispatch("dispatcher is shut down".into()));
            };
            self.inner.jobs_pending.fetch_add(1, Ordering::SeqCst);
            match tx.try_send(job) {
                Ok(()) => {
                    self.inner.submitted.fetch_add(1, Ordering::SeqCst);
                    self.inner
                        .queue_depth
                        .record(self.inner.jobs_rx.len() as u64);
                    return Ok(());
                }
                Err(TrySendError::Full(returned)) => {
                    self.inner.jobs_pending.fetch_sub(1, Ordering::SeqCst);
                    if !help_when_full {
                        return Err(WspError::Dispatch(format!(
                            "dispatch queue is full ({} jobs)",
                            self.inner.jobs_rx.len()
                        )));
                    }
                    // Backpressure: drain one job on this thread, then
                    // retry. The queue being full guarantees work exists.
                    job = returned;
                    if !self.inner.try_run_one() {
                        std::thread::yield_now();
                    }
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.inner.jobs_pending.fetch_sub(1, Ordering::SeqCst);
                    return Err(WspError::Dispatch("dispatcher is shut down".into()));
                }
            }
        }
    }

    /// Register an externally-completed call: the result will be
    /// delivered through the returned [`Completer`] (e.g. by a binding
    /// when a response arrives off the network), not by a pool job.
    pub fn register<T: Send + 'static>(&self, token: u64) -> (CallHandle<T>, Completer<T>) {
        let state = Arc::new(CallState {
            mail: Mutex::new(None),
            cv: Condvar::new(),
        });
        self.inner.step_call(CorrelationEvent::Register(token));
        (
            CallHandle {
                token,
                state: state.clone(),
                inner: self.inner.clone(),
            },
            Completer {
                token,
                state,
                inner: self.inner.clone(),
            },
        )
    }

    /// Spawn a named long-lived thread (an event pump, a peer driver)
    /// that is accounted to this dispatcher but scheduled by the OS —
    /// pump loops must never occupy pool workers.
    pub fn spawn_driver<F>(&self, name: impl Into<String>, f: F) -> std::thread::JoinHandle<()>
    where
        F: FnOnce() + Send + 'static,
    {
        std::thread::Builder::new()
            .name(name.into())
            .spawn(f)
            .expect("spawn driver thread")
    }

    /// Block until every job submitted so far has finished, helping run
    /// them. The barrier the tests use instead of sleep-and-poll loops.
    pub fn flush(&self) {
        loop {
            if self.inner.jobs_pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            if !self.inner.try_run_one() {
                let mut idle = self.inner.idle_lock.lock();
                if self.inner.jobs_pending.load(Ordering::SeqCst) == 0 {
                    return;
                }
                self.inner
                    .idle_cv
                    .wait_for(&mut idle, Duration::from_millis(5));
            }
        }
    }

    /// [`flush`](Dispatcher::flush) with a deadline: block until
    /// everything submitted so far has finished or `timeout` elapses.
    /// Returns `true` when the queue drained in time — the building
    /// block of graceful drain. Unlike `flush` this does NOT help run
    /// jobs: a job that never finishes must not capture the draining
    /// thread past its deadline, so the wait stays observational.
    pub fn flush_within(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.inner.jobs_pending.load(Ordering::SeqCst) == 0 {
                return true;
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let mut idle = self.inner.idle_lock.lock();
            if self.inner.jobs_pending.load(Ordering::SeqCst) == 0 {
                return true;
            }
            self.inner
                .idle_cv
                .wait_for(&mut idle, remaining.min(Duration::from_millis(5)));
        }
    }

    /// Run one queued job on the calling thread, if any is waiting.
    pub fn try_run_one(&self) -> bool {
        self.inner.try_run_one()
    }

    /// Tokens still awaiting results (the live correlation table).
    pub fn pending_tokens(&self) -> Vec<u64> {
        self.inner.calls.lock().table_tokens()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DispatcherStats {
        let pending_calls = self.pending_tokens().len();
        DispatcherStats {
            submitted: self.inner.submitted.load(Ordering::SeqCst),
            completed: self.inner.completed.load(Ordering::SeqCst),
            failed: self.inner.failed.load(Ordering::SeqCst),
            cancelled: self.inner.cancelled.load(Ordering::SeqCst),
            shed: self.inner.shed.load(Ordering::SeqCst),
            queue_depth: self.inner.jobs_rx.len(),
            in_flight: self.inner.in_flight.load(Ordering::SeqCst),
            pending_calls,
            workers: self.inner.workers,
        }
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        // Disconnect the queue; workers drain remaining jobs and exit.
        self.inner.jobs_tx.lock().take();
        for handle in self.worker_handles.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Dispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dispatcher")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn small() -> Arc<Dispatcher> {
        Dispatcher::new(DispatcherConfig {
            workers: 2,
            queue_capacity: 8,
        })
    }

    #[test]
    fn submit_and_wait_round_trip() {
        let d = small();
        let handle = d.submit(|| 6 * 7).unwrap();
        let token = handle.token();
        assert_eq!(handle.wait(), 42);
        assert!(!d.pending_tokens().contains(&token));
        let stats = d.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn tokens_are_unique_and_tracked() {
        let d = small();
        let gate = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let gate = gate.clone();
                d.submit(move || while !gate.load(Ordering::SeqCst) {})
                    .unwrap()
            })
            .collect();
        let mut tokens: Vec<u64> = handles.iter().map(|h| h.token()).collect();
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), 4, "tokens must be unique");
        let pending = d.pending_tokens();
        for token in &tokens {
            assert!(
                pending.contains(token),
                "unfinished call {token} must be in the table"
            );
        }
        gate.store(true, Ordering::SeqCst);
        for h in handles {
            h.wait();
        }
        assert!(d.pending_tokens().is_empty());
    }

    #[test]
    fn wait_timeout_returns_handle_then_result() {
        let d = small();
        let (handle, completer) = d.register::<u32>(d.next_token());
        let handle = match handle.wait_timeout(Duration::from_millis(30)) {
            Err(handle) => handle,
            Ok(_) => panic!("nothing completed it yet"),
        };
        assert!(completer.complete(7));
        assert_eq!(handle.wait(), 7);
    }

    #[test]
    fn wait_within_times_out_with_classified_error_and_cancels() {
        let d = small();
        let (handle, completer) = d.register::<Result<u32, WspError>>(d.next_token());
        let err = handle
            .wait_within(Duration::from_millis(20))
            .expect_err("nothing will complete this call");
        assert!(matches!(err, WspError::Timeout { millis: 20, .. }));
        // The timed-out call was cancelled: a late completion is dropped.
        assert!(!completer.complete(Ok(5)));
        assert_eq!(d.stats().cancelled, 1);
        // And a call that does complete comes back as its own result.
        let ok = d.submit(|| Ok::<u32, WspError>(3)).unwrap();
        assert_eq!(ok.wait_within(Duration::from_secs(5)).unwrap(), 3);
    }

    #[test]
    fn cancel_beats_late_completion() {
        let d = small();
        let (handle, completer) = d.register::<u32>(d.next_token());
        assert!(handle.cancel());
        assert!(!completer.complete(9), "completion after cancel is dropped");
        assert_eq!(d.stats().cancelled, 1);
    }

    #[test]
    fn dropping_a_pending_handle_eagerly_removes_its_table_entry() {
        let d = small();
        let (handle, completer) = d.register::<u32>(d.next_token());
        let token = handle.token();
        assert_eq!(d.pending_tokens(), vec![token]);
        // Dropping the handle (no wait, no explicit cancel) is an
        // eager Cancel: the entry leaves the table NOW, and counts as
        // a cancellation.
        drop(handle);
        assert!(
            d.pending_tokens().is_empty(),
            "entry must not linger until a late result or teardown"
        );
        assert_eq!(d.stats().cancelled, 1);
        assert_eq!(d.stats().pending_calls, 0);
        // A late completion is dropped, exactly like an explicit cancel.
        assert!(!completer.complete(99));
    }

    #[test]
    fn dropping_a_completed_but_unclaimed_handle_leaves_no_residue() {
        let d = small();
        let (handle, completer) = d.register::<u32>(d.next_token());
        assert!(completer.complete(5));
        // Completed, never taken: dropping discards the unclaimed
        // result without counting a cancellation.
        drop(handle);
        assert!(d.pending_tokens().is_empty());
        assert_eq!(d.stats().cancelled, 0);
    }

    #[test]
    fn panicking_job_poisons_only_its_own_handle() {
        let d = small();
        let bad = d.submit(|| -> u32 { panic!("deliberate") }).unwrap();
        let good = d.submit(|| 11u32).unwrap();
        assert_eq!(good.wait(), 11, "pool survives a panicking job");
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| bad.wait()));
        assert!(result.is_err(), "waiting on the poisoned call re-panics");
        assert_eq!(d.stats().failed, 1);
    }

    #[test]
    fn nested_sync_call_from_worker_does_not_deadlock() {
        // Saturate a 1-worker pool with a job that itself submits and
        // waits — only the helping wait lets this finish.
        let d = Dispatcher::new(DispatcherConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let inner_d = d.clone();
        let outer = d
            .submit(move || {
                let inner = inner_d.submit(|| 5u32).unwrap();
                inner.wait() + 1
            })
            .unwrap();
        assert_eq!(outer.wait(), 6);
    }

    #[test]
    fn flush_is_a_barrier() {
        let d = small();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = counter.clone();
            d.execute(move || {
                std::thread::sleep(Duration::from_millis(1));
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        d.flush();
        assert_eq!(counter.load(Ordering::SeqCst), 32);
        assert_eq!(d.stats().queue_depth, 0);
    }

    #[test]
    fn try_submit_reports_backpressure() {
        let d = Dispatcher::new(DispatcherConfig {
            workers: 1,
            queue_capacity: 2,
        });
        let gate = Arc::new(AtomicBool::new(false));
        // One job occupies the worker; fill the queue behind it.
        let blocker = {
            let gate = gate.clone();
            d.submit(move || while !gate.load(Ordering::SeqCst) {})
                .unwrap()
        };
        let mut queued = Vec::new();
        let mut rejected = 0;
        for n in 0..10u32 {
            match d.try_submit(move || n) {
                Ok(handle) => queued.push(handle),
                Err(WspError::Dispatch(why)) => {
                    assert!(why.contains("full"), "unexpected reason: {why}");
                    rejected += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejected > 0, "a 2-slot queue cannot absorb 10 jobs");
        gate.store(true, Ordering::SeqCst);
        blocker.wait();
        for handle in queued {
            handle.wait();
        }
    }

    #[test]
    fn blocking_submit_helps_past_a_full_queue() {
        let d = Dispatcher::new(DispatcherConfig {
            workers: 1,
            queue_capacity: 1,
        });
        let gate = Arc::new(AtomicBool::new(false));
        let blocker = {
            let gate = gate.clone();
            d.submit(move || while !gate.load(Ordering::SeqCst) {})
                .unwrap()
        };
        gate.store(true, Ordering::SeqCst);
        // These submits may find the queue full and must help instead
        // of deadlocking.
        let handles: Vec<_> = (0..16).map(|n| d.submit(move || n).unwrap()).collect();
        blocker.wait();
        let sum: i32 = handles.into_iter().map(|h| h.wait()).sum();
        assert_eq!(sum, (0..16).sum::<i32>());
    }

    #[test]
    fn expired_deadline_job_is_shed_at_dequeue() {
        // One worker, pinned by a blocker while a deadline job waits in
        // the queue past its budget: the handler must never run.
        let d = Dispatcher::new(DispatcherConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let gate = Arc::new(AtomicBool::new(false));
        let blocker = {
            let gate = gate.clone();
            d.submit(move || while !gate.load(Ordering::SeqCst) {})
                .unwrap()
        };
        let ran = Arc::new(AtomicBool::new(false));
        let deadline = Instant::now() + Duration::from_millis(20);
        {
            let ran = ran.clone();
            d.execute_with_deadline(Some(deadline), move || {
                ran.store(true, Ordering::SeqCst);
            })
            .unwrap();
        }
        // Let the deadline expire while the job is still queued.
        std::thread::sleep(Duration::from_millis(40));
        gate.store(true, Ordering::SeqCst);
        blocker.wait();
        d.flush();
        assert!(
            !ran.load(Ordering::SeqCst),
            "expired job must be shed, not run"
        );
        let stats = d.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.queue_depth, 0, "shed jobs leave the queue");
    }

    #[test]
    fn live_deadline_job_runs_inside_a_deadline_scope() {
        let d = small();
        let deadline = Instant::now() + Duration::from_secs(30);
        let seen = Arc::new(Mutex::new(None));
        {
            let seen = seen.clone();
            d.execute_with_deadline(Some(deadline), move || {
                *seen.lock() = Some(crate::overload::current_deadline());
            })
            .unwrap();
        }
        d.flush();
        assert_eq!(
            *seen.lock(),
            Some(Some(deadline)),
            "the job observes its propagated deadline"
        );
        assert_eq!(d.stats().shed, 0);
    }

    #[test]
    fn shutdown_rejects_new_work_but_finishes_queued() {
        let counter = Arc::new(AtomicUsize::new(0));
        let d = small();
        for _ in 0..8 {
            let counter = counter.clone();
            d.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        drop(d);
        assert_eq!(
            counter.load(Ordering::SeqCst),
            8,
            "drop drains the queue before joining"
        );
    }
}

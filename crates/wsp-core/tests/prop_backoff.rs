//! Property tests for the backoff schedule: for *any* policy the
//! pre-jitter delays are monotone non-decreasing, each respects the
//! cap, the cumulative delay never exceeds the deadline, and jitter
//! only ever shortens a delay.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use wsp_core::ResiliencePolicy;

fn arb_policy() -> impl Strategy<Value = ResiliencePolicy> {
    (
        (
            1u32..20,    // max_attempts
            0u64..2_000, // base backoff millis
            prop_oneof![Just(1.0f64), 1.0f64..4.0],
            0u64..5_000, // cap millis
        ),
        (
            0.0f64..1.0,                        // jitter
            any::<u64>(),                       // jitter seed
            proptest::option::of(1u64..20_000), // deadline millis
        ),
    )
        .prop_map(
            |((attempts, base, multiplier, cap), (jitter, jitter_seed, deadline))| {
                let mut policy = ResiliencePolicy::retrying(attempts)
                    .with_backoff(
                        Duration::from_millis(base),
                        multiplier,
                        Duration::from_millis(cap),
                    )
                    .with_jitter(jitter)
                    .with_jitter_seed(jitter_seed);
                policy.deadline = deadline.map(Duration::from_millis);
                policy
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedule_is_monotone_and_capped(policy in arb_policy()) {
        let schedule = policy.schedule();
        prop_assert!(schedule.len() < policy.max_attempts as usize,
            "at most one delay per retry");
        for pair in schedule.windows(2) {
            prop_assert!(pair[0] <= pair[1],
                "delays must not shrink: {pair:?}");
        }
        for delay in &schedule {
            prop_assert!(*delay <= policy.max_backoff,
                "delay {delay:?} above cap {:?}", policy.max_backoff);
        }
    }

    #[test]
    fn total_retry_time_respects_deadline(policy in arb_policy()) {
        let total: Duration = policy.schedule().iter().sum();
        if let Some(deadline) = policy.deadline {
            prop_assert!(total <= deadline,
                "summed delays {total:?} exceed deadline {deadline:?}");
        }
    }

    #[test]
    fn jitter_never_lengthens(policy in arb_policy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for delay in policy.schedule() {
            let jittered = policy.jittered(delay, &mut rng);
            prop_assert!(jittered <= delay,
                "jitter must only shorten: {jittered:?} > {delay:?}");
            // Full-jitter-down floor: (1 - jitter) of the delay.
            let floor = delay.as_secs_f64() * (1.0 - policy.jitter);
            prop_assert!(jittered.as_secs_f64() >= floor - 1e-9,
                "jitter below its floor");
        }
    }

    #[test]
    fn backoff_before_agrees_with_schedule_prefix(policy in arb_policy()) {
        // Without a deadline, schedule() is exactly backoff_before for
        // attempts 2..=max.
        let mut policy = policy;
        policy.deadline = None;
        let schedule = policy.schedule();
        for (i, delay) in schedule.iter().enumerate() {
            prop_assert_eq!(Some(*delay), policy.backoff_before(i as u32 + 2));
        }
    }
}

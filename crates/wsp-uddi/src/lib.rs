//! # wsp-uddi
//!
//! A UDDI-style registry: the discovery substrate of WSPeer's standard
//! HTTP implementation (paper Section IV.A). Provides the v2-flavoured
//! data model (business entities, services, binding templates, tModels),
//! a thread-safe [`Registry`] store, the two-step SOAP inquiry/publish
//! [`api`], a [`UddiClient`] over pluggable transports, and hosting glue
//! to run a registry on the lightweight HTTP server — real TCP or the
//! simulator.
//!
//! The registry is deliberately *centralised*: it is the client/server
//! discovery mechanism whose bottleneck and single-point-of-failure
//! behaviour experiments E1 and E3 measure against P2PS discovery.
//!
//! ```
//! use wsp_uddi::{Registry, UddiClient, ServiceQuery, BusinessService, BindingTemplate};
//!
//! let registry = Registry::new();
//! let client = UddiClient::direct(registry);
//! client.save_service(
//!     &BusinessService::new("", "biz", "EchoService")
//!         .with_binding(BindingTemplate::new("", "http://host/Echo")),
//! ).unwrap();
//! let hits = client.locate(&ServiceQuery::by_name("Echo%")).unwrap();
//! assert_eq!(hits[0].bindings[0].access_point, "http://host/Echo");
//! ```

pub mod api;
pub mod client;
pub mod model;
pub mod query;
pub mod registry;
pub mod server;

pub use api::{ServiceInfo, UddiApi};
pub use client::{direct_transport, http_transport, SoapTransport, UddiClient, UddiError};
pub use model::{
    BindingTemplate, BusinessEntity, BusinessService, KeyedReference, TModel, UDDI_NS,
};
pub use query::{wildcard_match, ServiceQuery};
pub use registry::Registry;
pub use server::{registry_handler, RegistryServer, REGISTRY_PATH};

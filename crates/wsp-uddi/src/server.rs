//! Hosting glue: a registry behind the lightweight HTTP server (real or
//! simulated).

use crate::api::UddiApi;
use crate::registry::Registry;
use std::sync::Arc;
use wsp_http::{HttpHandler, Request, Response, Router, TcpServer};
use wsp_soap::Envelope;

/// Conventional path of the registry service on its host.
pub const REGISTRY_PATH: &str = "uddi";

/// Build an HTTP handler exposing `registry` over SOAP.
///
/// SOAP faults are carried on HTTP 500 per the SOAP HTTP binding;
/// non-SOAP requests get 400.
pub fn registry_handler(registry: Registry) -> HttpHandler {
    let api = UddiApi::new(registry);
    Arc::new(move |request: &Request| {
        let Ok(envelope) = Envelope::from_xml(&request.body_str()) else {
            return Response::bad_request("body is not a SOAP envelope");
        };
        let response = api.process(&envelope);
        let is_fault = response.fault_body().is_some();
        let body = response.to_xml();
        let mut http = if is_fault {
            let mut r = Response::new(500, "Internal Server Error");
            r.body = body.into_bytes();
            r
        } else {
            Response::ok(wsp_soap::constants::CONTENT_TYPE, body)
        };
        http.headers
            .set("Content-Type", wsp_soap::constants::CONTENT_TYPE);
        http
    })
}

/// A registry running on its own lightweight TCP host.
pub struct RegistryServer {
    pub registry: Registry,
    server: TcpServer,
}

impl RegistryServer {
    /// Launch on `127.0.0.1:port` (0 = ephemeral).
    pub fn launch(port: u16) -> std::io::Result<RegistryServer> {
        let registry = Registry::new();
        let router = Router::new();
        router.deploy(REGISTRY_PATH, registry_handler(registry.clone()));
        let server = TcpServer::launch(port, router)?;
        Ok(RegistryServer { registry, server })
    }

    /// The URI clients point at.
    pub fn uri(&self) -> String {
        self.server.service_uri(REGISTRY_PATH)
    }

    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::UddiClient;
    use crate::model::{BindingTemplate, BusinessService};
    use crate::query::ServiceQuery;

    #[test]
    fn full_network_publish_and_locate() {
        let server = RegistryServer::launch(0).unwrap();
        let client = UddiClient::http(server.uri());

        let saved = client
            .save_service(
                &BusinessService::new("", "biz", "EchoService")
                    .with_binding(BindingTemplate::new("", "http://h:9/Echo")),
            )
            .unwrap();
        assert!(saved.key.starts_with("uuid:svc-"));

        let found = client.locate(&ServiceQuery::by_name("Echo%")).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].bindings[0].access_point, "http://h:9/Echo");
        server.shutdown();
    }

    #[test]
    fn fault_over_http_maps_to_500_and_back() {
        let server = RegistryServer::launch(0).unwrap();
        let client = UddiClient::http(server.uri());
        let err = client.get_tmodel("uuid:ghost").unwrap_err();
        assert!(matches!(err, crate::client::UddiError::Fault(_)), "{err:?}");
        server.shutdown();
    }

    #[test]
    fn non_soap_body_is_bad_request() {
        let server = RegistryServer::launch(0).unwrap();
        let uri = server.uri();
        let parsed = wsp_http::HttpUri::parse(&uri).unwrap();
        let response = wsp_http::http_call(
            &parsed.host,
            parsed.port,
            Request::post(parsed.target.clone(), "text/plain", "hello"),
        )
        .unwrap();
        assert_eq!(response.status, 400);
        server.shutdown();
    }

    #[test]
    fn registry_shared_with_host_process() {
        // The embedding application can use the registry object directly
        // while remote clients use HTTP — same store.
        let server = RegistryServer::launch(0).unwrap();
        server
            .registry
            .save_service(BusinessService::new("", "b", "Local"));
        let client = UddiClient::http(server.uri());
        assert_eq!(client.find_services(&ServiceQuery::all()).unwrap().len(), 1);
        server.shutdown();
    }
}

//! The registry proper: a thread-safe store with publish and inquiry
//! operations.

use crate::model::{BusinessEntity, BusinessService, TModel};
use crate::query::ServiceQuery;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An in-memory UDDI registry. Cloning shares the underlying store, so
/// one registry can sit behind a server loop while tests inspect it.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    businesses: RwLock<BTreeMap<String, BusinessEntity>>,
    services: RwLock<BTreeMap<String, BusinessService>>,
    tmodels: RwLock<BTreeMap<String, TModel>>,
    next_key: AtomicU64,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Mint a registry-unique key with the given prefix.
    pub fn generate_key(&self, prefix: &str) -> String {
        let n = self.inner.next_key.fetch_add(1, Ordering::Relaxed);
        format!("uuid:{prefix}-{n:08x}")
    }

    // --- publish API -----------------------------------------------------

    /// Save (insert or replace) a business entity. Empty key → minted.
    pub fn save_business(&self, mut business: BusinessEntity) -> BusinessEntity {
        if business.key.is_empty() {
            business.key = self.generate_key("biz");
        }
        self.inner
            .businesses
            .write()
            .insert(business.key.clone(), business.clone());
        business
    }

    /// Save (insert or replace) a service. Empty keys are minted.
    pub fn save_service(&self, mut service: BusinessService) -> BusinessService {
        if service.key.is_empty() {
            service.key = self.generate_key("svc");
        }
        for binding in &mut service.bindings {
            if binding.key.is_empty() {
                binding.key = self.generate_key("bind");
            }
        }
        self.inner
            .services
            .write()
            .insert(service.key.clone(), service.clone());
        service
    }

    /// Save (insert or replace) a tModel. Empty key → minted.
    pub fn save_tmodel(&self, mut tmodel: TModel) -> TModel {
        if tmodel.key.is_empty() {
            tmodel.key = self.generate_key("tm");
        }
        self.inner
            .tmodels
            .write()
            .insert(tmodel.key.clone(), tmodel.clone());
        tmodel
    }

    /// Remove a service. True if it existed.
    pub fn delete_service(&self, key: &str) -> bool {
        self.inner.services.write().remove(key).is_some()
    }

    // --- inquiry API -----------------------------------------------------

    /// Run a `find_service` query.
    pub fn find_services(&self, query: &ServiceQuery) -> Vec<BusinessService> {
        let services = self.inner.services.read();
        let mut out: Vec<BusinessService> = services
            .values()
            .filter(|s| query.matches(s))
            .cloned()
            .collect();
        if query.max_rows > 0 {
            out.truncate(query.max_rows);
        }
        out
    }

    pub fn get_service(&self, key: &str) -> Option<BusinessService> {
        self.inner.services.read().get(key).cloned()
    }

    pub fn get_business(&self, key: &str) -> Option<BusinessEntity> {
        self.inner.businesses.read().get(key).cloned()
    }

    /// Keys of all registered businesses (inquiry support).
    pub fn business_keys(&self) -> Vec<String> {
        self.inner.businesses.read().keys().cloned().collect()
    }

    pub fn get_tmodel(&self, key: &str) -> Option<TModel> {
        self.inner.tmodels.read().get(key).cloned()
    }

    pub fn service_count(&self) -> usize {
        self.inner.services.read().len()
    }

    pub fn business_count(&self) -> usize {
        self.inner.businesses.read().len()
    }

    pub fn tmodel_count(&self) -> usize {
        self.inner.tmodels.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BindingTemplate, KeyedReference};

    #[test]
    fn keys_minted_when_empty() {
        let r = Registry::new();
        let saved = r.save_service(BusinessService::new("", "b", "Echo"));
        assert!(saved.key.starts_with("uuid:svc-"));
        assert!(r.get_service(&saved.key).is_some());
    }

    #[test]
    fn binding_keys_minted_too() {
        let r = Registry::new();
        let svc = BusinessService::new("", "b", "Echo")
            .with_binding(BindingTemplate::new("", "http://h/Echo"));
        let saved = r.save_service(svc);
        assert!(saved.bindings[0].key.starts_with("uuid:bind-"));
    }

    #[test]
    fn save_replaces_by_key() {
        let r = Registry::new();
        r.save_service(BusinessService::new("svc-1", "b", "Old"));
        r.save_service(BusinessService::new("svc-1", "b", "New"));
        assert_eq!(r.service_count(), 1);
        assert_eq!(r.get_service("svc-1").unwrap().name, "New");
    }

    #[test]
    fn find_by_name_and_category() {
        let r = Registry::new();
        r.save_service(
            BusinessService::new("", "b", "EchoService").with_category(KeyedReference::new(
                "uddi:types",
                "",
                "wspeer",
            )),
        );
        r.save_service(BusinessService::new("", "b", "MathService"));
        let hits = r.find_services(&ServiceQuery::by_name("Echo%"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "EchoService");
        let by_cat = r.find_services(&ServiceQuery::all().with_category(KeyedReference::new(
            "uddi:types",
            "",
            "wspeer",
        )));
        assert_eq!(by_cat.len(), 1);
        assert_eq!(r.find_services(&ServiceQuery::all()).len(), 2);
    }

    #[test]
    fn max_rows_truncates() {
        let r = Registry::new();
        for i in 0..10 {
            r.save_service(BusinessService::new("", "b", format!("S{i}")));
        }
        assert_eq!(
            r.find_services(&ServiceQuery::all().with_max_rows(3)).len(),
            3
        );
    }

    #[test]
    fn delete_service() {
        let r = Registry::new();
        let saved = r.save_service(BusinessService::new("", "b", "Echo"));
        assert!(r.delete_service(&saved.key));
        assert!(!r.delete_service(&saved.key));
        assert_eq!(r.service_count(), 0);
    }

    #[test]
    fn business_and_tmodel_storage() {
        let r = Registry::new();
        let biz = r.save_business(BusinessEntity::new("", "Cardiff"));
        let tm = r.save_tmodel(TModel::new("", "Echo WSDL").with_overview("http://h/Echo?wsdl"));
        assert_eq!(r.get_business(&biz.key).unwrap().name, "Cardiff");
        assert_eq!(
            r.get_tmodel(&tm.key).unwrap().overview_url.as_deref(),
            Some("http://h/Echo?wsdl")
        );
        assert_eq!(r.business_count(), 1);
        assert_eq!(r.tmodel_count(), 1);
    }

    #[test]
    fn clones_share_state() {
        let r = Registry::new();
        let r2 = r.clone();
        r.save_service(BusinessService::new("", "b", "Echo"));
        assert_eq!(r2.service_count(), 1);
    }

    #[test]
    fn concurrent_publish_and_find() {
        let r = Registry::new();
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        r.save_service(BusinessService::new("", "b", format!("S{w}-{i}")));
                    }
                })
            })
            .collect();
        let reader = {
            let r = r.clone();
            std::thread::spawn(move || {
                for _ in 0..100 {
                    let _ = r.find_services(&ServiceQuery::all());
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(r.service_count(), 200);
    }
}

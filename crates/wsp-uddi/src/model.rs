//! UDDI data model: business entities, services, binding templates and
//! tModels, with XML (de)serialisation.
//!
//! Modelled on the UDDI v2 structures the paper's standard
//! implementation publishes to and searches: a service belongs to a
//! business, carries category references, and exposes binding templates
//! whose access points are endpoint URIs. A tModel with an overview URL
//! is the conventional way to point at the WSDL document.

use wsp_xml::{Element, QName};

/// Namespace of our UDDI messages and structures.
pub const UDDI_NS: &str = "urn:uddi-org:api_v2";

/// A keyed reference: categorisation metadata on services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedReference {
    pub tmodel_key: String,
    pub key_name: String,
    pub key_value: String,
}

impl KeyedReference {
    pub fn new(
        tmodel_key: impl Into<String>,
        key_name: impl Into<String>,
        key_value: impl Into<String>,
    ) -> Self {
        KeyedReference {
            tmodel_key: tmodel_key.into(),
            key_name: key_name.into(),
            key_value: key_value.into(),
        }
    }

    pub fn to_element(&self) -> Element {
        Element::build(UDDI_NS, "keyedReference")
            .attr_str("tModelKey", self.tmodel_key.clone())
            .attr_str("keyName", self.key_name.clone())
            .attr_str("keyValue", self.key_value.clone())
            .finish()
    }

    pub fn from_element(e: &Element) -> Option<KeyedReference> {
        Some(KeyedReference {
            tmodel_key: e.attribute_local("tModelKey")?.to_owned(),
            key_name: e.attribute_local("keyName").unwrap_or("").to_owned(),
            key_value: e.attribute_local("keyValue")?.to_owned(),
        })
    }
}

/// A concrete endpoint of a service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindingTemplate {
    pub key: String,
    /// The endpoint URI a client connects to.
    pub access_point: String,
    /// tModel keys describing the binding (e.g. the WSDL tModel).
    pub tmodel_keys: Vec<String>,
}

impl BindingTemplate {
    pub fn new(key: impl Into<String>, access_point: impl Into<String>) -> Self {
        BindingTemplate {
            key: key.into(),
            access_point: access_point.into(),
            tmodel_keys: Vec::new(),
        }
    }

    pub fn with_tmodel(mut self, key: impl Into<String>) -> Self {
        self.tmodel_keys.push(key.into());
        self
    }

    pub fn to_element(&self) -> Element {
        let mut e = Element::new(UDDI_NS, "bindingTemplate");
        e.set_attribute(QName::local("bindingKey"), self.key.clone());
        e.push_element(
            Element::build(UDDI_NS, "accessPoint")
                .attr_str("URLType", url_type(&self.access_point))
                .text(self.access_point.clone())
                .finish(),
        );
        if !self.tmodel_keys.is_empty() {
            let mut infos = Element::new(UDDI_NS, "tModelInstanceDetails");
            for key in &self.tmodel_keys {
                infos.push_element(
                    Element::build(UDDI_NS, "tModelInstanceInfo")
                        .attr_str("tModelKey", key.clone())
                        .finish(),
                );
            }
            e.push_element(infos);
        }
        e
    }

    pub fn from_element(e: &Element) -> Option<BindingTemplate> {
        let key = e.attribute_local("bindingKey")?.to_owned();
        let access_point = e.child_text(UDDI_NS, "accessPoint")?;
        let tmodel_keys = e
            .find(UDDI_NS, "tModelInstanceDetails")
            .map(|d| {
                d.find_all(UDDI_NS, "tModelInstanceInfo")
                    .filter_map(|i| i.attribute_local("tModelKey").map(str::to_owned))
                    .collect()
            })
            .unwrap_or_default();
        Some(BindingTemplate {
            key,
            access_point,
            tmodel_keys,
        })
    }
}

fn url_type(uri: &str) -> &'static str {
    if uri.starts_with("https") || uri.starts_with("httpg") {
        "other"
    } else if uri.starts_with("http") {
        "http"
    } else {
        "other"
    }
}

/// A published service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusinessService {
    pub key: String,
    pub business_key: String,
    pub name: String,
    pub description: Option<String>,
    pub categories: Vec<KeyedReference>,
    pub bindings: Vec<BindingTemplate>,
    /// Soft-state lease: how long this registration stays live without a
    /// refresh, in milliseconds. `None` means a classic permanent UDDI
    /// registration (and keeps the wire bytes of pre-lease documents
    /// unchanged — the attribute is only emitted when present).
    pub lease_ttl_ms: Option<u64>,
}

impl BusinessService {
    pub fn new(
        key: impl Into<String>,
        business_key: impl Into<String>,
        name: impl Into<String>,
    ) -> Self {
        BusinessService {
            key: key.into(),
            business_key: business_key.into(),
            name: name.into(),
            description: None,
            categories: Vec::new(),
            bindings: Vec::new(),
            lease_ttl_ms: None,
        }
    }

    pub fn with_description(mut self, d: impl Into<String>) -> Self {
        self.description = Some(d.into());
        self
    }

    pub fn with_lease_ttl_ms(mut self, ttl_ms: u64) -> Self {
        self.lease_ttl_ms = Some(ttl_ms);
        self
    }

    pub fn with_category(mut self, c: KeyedReference) -> Self {
        self.categories.push(c);
        self
    }

    pub fn with_binding(mut self, b: BindingTemplate) -> Self {
        self.bindings.push(b);
        self
    }

    pub fn to_element(&self) -> Element {
        let mut e = Element::new(UDDI_NS, "businessService");
        e.set_attribute(QName::local("serviceKey"), self.key.clone());
        e.set_attribute(QName::local("businessKey"), self.business_key.clone());
        if let Some(ttl) = self.lease_ttl_ms {
            e.set_attribute(QName::local("leaseTtlMs"), ttl.to_string());
        }
        e.push_element(
            Element::build(UDDI_NS, "name")
                .text(self.name.clone())
                .finish(),
        );
        if let Some(d) = &self.description {
            e.push_element(
                Element::build(UDDI_NS, "description")
                    .text(d.clone())
                    .finish(),
            );
        }
        if !self.bindings.is_empty() {
            let mut bts = Element::new(UDDI_NS, "bindingTemplates");
            for b in &self.bindings {
                bts.push_element(b.to_element());
            }
            e.push_element(bts);
        }
        if !self.categories.is_empty() {
            let mut bag = Element::new(UDDI_NS, "categoryBag");
            for c in &self.categories {
                bag.push_element(c.to_element());
            }
            e.push_element(bag);
        }
        e
    }

    pub fn from_element(e: &Element) -> Option<BusinessService> {
        let key = e.attribute_local("serviceKey")?.to_owned();
        let business_key = e.attribute_local("businessKey").unwrap_or("").to_owned();
        let name = e.child_text(UDDI_NS, "name")?;
        let description = e.child_text(UDDI_NS, "description");
        let bindings = e
            .find(UDDI_NS, "bindingTemplates")
            .map(|bts| {
                bts.find_all(UDDI_NS, "bindingTemplate")
                    .filter_map(BindingTemplate::from_element)
                    .collect()
            })
            .unwrap_or_default();
        let categories = e
            .find(UDDI_NS, "categoryBag")
            .map(|bag| {
                bag.find_all(UDDI_NS, "keyedReference")
                    .filter_map(KeyedReference::from_element)
                    .collect()
            })
            .unwrap_or_default();
        let lease_ttl_ms = e.attribute_local("leaseTtlMs").and_then(|v| v.parse().ok());
        Some(BusinessService {
            key,
            business_key,
            name,
            description,
            categories,
            bindings,
            lease_ttl_ms,
        })
    }
}

/// A publishing organisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusinessEntity {
    pub key: String,
    pub name: String,
    pub description: Option<String>,
}

impl BusinessEntity {
    pub fn new(key: impl Into<String>, name: impl Into<String>) -> Self {
        BusinessEntity {
            key: key.into(),
            name: name.into(),
            description: None,
        }
    }

    pub fn to_element(&self) -> Element {
        let mut e = Element::new(UDDI_NS, "businessEntity");
        e.set_attribute(QName::local("businessKey"), self.key.clone());
        e.push_element(
            Element::build(UDDI_NS, "name")
                .text(self.name.clone())
                .finish(),
        );
        if let Some(d) = &self.description {
            e.push_element(
                Element::build(UDDI_NS, "description")
                    .text(d.clone())
                    .finish(),
            );
        }
        e
    }

    pub fn from_element(e: &Element) -> Option<BusinessEntity> {
        Some(BusinessEntity {
            key: e.attribute_local("businessKey")?.to_owned(),
            name: e.child_text(UDDI_NS, "name")?,
            description: e.child_text(UDDI_NS, "description"),
        })
    }
}

/// A technical model — in WSPeer's usage, the pointer to a WSDL document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TModel {
    pub key: String,
    pub name: String,
    /// Conventionally the URL (or inline token) of the WSDL overview doc.
    pub overview_url: Option<String>,
}

impl TModel {
    pub fn new(key: impl Into<String>, name: impl Into<String>) -> Self {
        TModel {
            key: key.into(),
            name: name.into(),
            overview_url: None,
        }
    }

    pub fn with_overview(mut self, url: impl Into<String>) -> Self {
        self.overview_url = Some(url.into());
        self
    }

    pub fn to_element(&self) -> Element {
        let mut e = Element::new(UDDI_NS, "tModel");
        e.set_attribute(QName::local("tModelKey"), self.key.clone());
        e.push_element(
            Element::build(UDDI_NS, "name")
                .text(self.name.clone())
                .finish(),
        );
        if let Some(url) = &self.overview_url {
            e.push_element(
                Element::build(UDDI_NS, "overviewDoc")
                    .child(
                        Element::build(UDDI_NS, "overviewURL")
                            .text(url.clone())
                            .finish(),
                    )
                    .finish(),
            );
        }
        e
    }

    pub fn from_element(e: &Element) -> Option<TModel> {
        Some(TModel {
            key: e.attribute_local("tModelKey")?.to_owned(),
            name: e.child_text(UDDI_NS, "name")?,
            overview_url: e
                .find(UDDI_NS, "overviewDoc")
                .and_then(|d| d.child_text(UDDI_NS, "overviewURL")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_service() -> BusinessService {
        BusinessService::new("svc-1", "biz-1", "Echo")
            .with_description("echo service")
            .with_category(KeyedReference::new("uddi:categories", "type", "wspeer"))
            .with_binding(
                BindingTemplate::new("bind-1", "http://h:8080/Echo").with_tmodel("tm-wsdl-1"),
            )
    }

    #[test]
    fn service_round_trip() {
        let svc = sample_service();
        let xml = svc.to_element().to_xml();
        let parsed = BusinessService::from_element(&wsp_xml::parse(&xml).unwrap()).unwrap();
        assert_eq!(parsed, svc);
    }

    #[test]
    fn minimal_service_round_trip() {
        let svc = BusinessService::new("s", "b", "Name only");
        let parsed = BusinessService::from_element(&svc.to_element()).unwrap();
        assert_eq!(parsed, svc);
    }

    #[test]
    fn lease_ttl_round_trips_and_stays_off_the_wire_when_absent() {
        let leased = sample_service().with_lease_ttl_ms(30_000);
        let parsed = BusinessService::from_element(&leased.to_element()).unwrap();
        assert_eq!(parsed.lease_ttl_ms, Some(30_000));
        assert_eq!(parsed, leased);
        // Permanent registrations serialize exactly as before the lease
        // field existed — no attribute, identical bytes.
        let permanent = sample_service();
        assert!(!permanent.to_element().to_xml().contains("leaseTtlMs"));
    }

    #[test]
    fn entity_round_trip() {
        let mut biz = BusinessEntity::new("biz-1", "Cardiff");
        biz.description = Some("School of Computer Science".into());
        let parsed = BusinessEntity::from_element(&biz.to_element()).unwrap();
        assert_eq!(parsed, biz);
    }

    #[test]
    fn tmodel_round_trip() {
        let tm = TModel::new("tm-1", "Echo WSDL").with_overview("http://h/Echo?wsdl");
        let parsed = TModel::from_element(&tm.to_element()).unwrap();
        assert_eq!(parsed, tm);
        let bare = TModel::new("tm-2", "no url");
        assert_eq!(TModel::from_element(&bare.to_element()).unwrap(), bare);
    }

    #[test]
    fn binding_url_types() {
        let http = BindingTemplate::new("b", "http://h/x").to_element();
        assert_eq!(
            http.find(UDDI_NS, "accessPoint")
                .unwrap()
                .attribute_local("URLType"),
            Some("http")
        );
        let p2ps = BindingTemplate::new("b", "p2ps://peer/Svc").to_element();
        assert_eq!(
            p2ps.find(UDDI_NS, "accessPoint")
                .unwrap()
                .attribute_local("URLType"),
            Some("other")
        );
    }

    #[test]
    fn from_element_rejects_missing_fields() {
        let no_key = Element::new(UDDI_NS, "businessService");
        assert!(BusinessService::from_element(&no_key).is_none());
        let mut no_name = Element::new(UDDI_NS, "businessService");
        no_name.set_attribute(QName::local("serviceKey"), "k");
        assert!(BusinessService::from_element(&no_name).is_none());
    }
}

//! The registry's SOAP API: dispatching publish and inquiry envelopes.
//!
//! Like real UDDI, inquiry is two-step: `find_service` returns a light
//! `serviceList` of keys/names and `get_serviceDetail` returns full
//! records. The locate path therefore costs two round trips — a detail
//! the registry-bottleneck experiment (E1) faithfully inherits.

use crate::model::{BusinessEntity, BusinessService, TModel, UDDI_NS};
use crate::query::ServiceQuery;
use crate::registry::Registry;
use wsp_soap::{Envelope, Fault};
use wsp_xml::{Element, QName};

/// Summary entry returned by `find_service`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceInfo {
    pub key: String,
    pub name: String,
    pub business_key: String,
}

impl ServiceInfo {
    pub fn to_element(&self) -> Element {
        let mut e = Element::new(UDDI_NS, "serviceInfo");
        e.set_attribute(QName::local("serviceKey"), self.key.clone());
        e.set_attribute(QName::local("businessKey"), self.business_key.clone());
        e.push_element(
            Element::build(UDDI_NS, "name")
                .text(self.name.clone())
                .finish(),
        );
        e
    }

    pub fn from_element(e: &Element) -> Option<ServiceInfo> {
        Some(ServiceInfo {
            key: e.attribute_local("serviceKey")?.to_owned(),
            name: e.child_text(UDDI_NS, "name").unwrap_or_default(),
            business_key: e.attribute_local("businessKey").unwrap_or("").to_owned(),
        })
    }
}

/// The server side of the registry protocol.
#[derive(Clone)]
pub struct UddiApi {
    registry: Registry,
}

impl UddiApi {
    pub fn new(registry: Registry) -> Self {
        UddiApi { registry }
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Process one request envelope.
    pub fn process(&self, request: &Envelope) -> Envelope {
        let Some(payload) = request.payload() else {
            return Envelope::fault(Fault::sender("UDDI request carries no body"));
        };
        let result = match payload.name().local_name() {
            "find_service" => self.find_service(payload),
            "find_business" => self.find_business(payload),
            "get_serviceDetail" => self.get_service_detail(payload),
            "save_service" => self.save_service(payload),
            "save_business" => self.save_business(payload),
            "save_tModel" => self.save_tmodel(payload),
            "get_tModelDetail" => self.get_tmodel_detail(payload),
            "delete_service" => self.delete_service(payload),
            other => Err(Fault::sender(format!("unknown UDDI operation {other:?}"))),
        };
        match result {
            Ok(body) => Envelope::request(body),
            Err(fault) => Envelope::fault(fault),
        }
    }

    fn find_service(&self, payload: &Element) -> Result<Element, Fault> {
        let query = ServiceQuery::from_element(payload)
            .ok_or_else(|| Fault::sender("malformed find_service"))?;
        let hits = self.registry.find_services(&query);
        let mut infos = Element::new(UDDI_NS, "serviceInfos");
        for s in &hits {
            infos.push_element(
                ServiceInfo {
                    key: s.key.clone(),
                    name: s.name.clone(),
                    business_key: s.business_key.clone(),
                }
                .to_element(),
            );
        }
        Ok(Element::build(UDDI_NS, "serviceList").child(infos).finish())
    }

    fn find_business(&self, payload: &Element) -> Result<Element, Fault> {
        let pattern = payload
            .child_text(UDDI_NS, "name")
            .unwrap_or_else(|| "%".to_owned());
        let mut infos = Element::new(UDDI_NS, "businessInfos");
        for key in self.registry.business_keys() {
            if let Some(biz) = self.registry.get_business(&key) {
                if crate::query::wildcard_match(&pattern, &biz.name) {
                    let mut info = Element::new(UDDI_NS, "businessInfo");
                    info.set_attribute(wsp_xml::QName::local("businessKey"), biz.key.clone());
                    info.push_element(
                        Element::build(UDDI_NS, "name")
                            .text(biz.name.clone())
                            .finish(),
                    );
                    infos.push_element(info);
                }
            }
        }
        Ok(Element::build(UDDI_NS, "businessList")
            .child(infos)
            .finish())
    }

    fn get_service_detail(&self, payload: &Element) -> Result<Element, Fault> {
        let mut detail = Element::new(UDDI_NS, "serviceDetail");
        for key_elem in payload.find_all(UDDI_NS, "serviceKey") {
            let key = key_elem.text();
            let svc = self
                .registry
                .get_service(key.trim())
                .ok_or_else(|| Fault::sender(format!("no service with key {key:?}")))?;
            detail.push_element(svc.to_element());
        }
        Ok(detail)
    }

    fn save_service(&self, payload: &Element) -> Result<Element, Fault> {
        let mut detail = Element::new(UDDI_NS, "serviceDetail");
        for svc_elem in payload.find_all(UDDI_NS, "businessService") {
            let svc = BusinessService::from_element(svc_elem)
                .ok_or_else(|| Fault::sender("malformed businessService"))?;
            detail.push_element(self.registry.save_service(svc).to_element());
        }
        Ok(detail)
    }

    fn save_business(&self, payload: &Element) -> Result<Element, Fault> {
        let mut detail = Element::new(UDDI_NS, "businessDetail");
        for biz_elem in payload.find_all(UDDI_NS, "businessEntity") {
            let biz = BusinessEntity::from_element(biz_elem)
                .ok_or_else(|| Fault::sender("malformed businessEntity"))?;
            detail.push_element(self.registry.save_business(biz).to_element());
        }
        Ok(detail)
    }

    fn save_tmodel(&self, payload: &Element) -> Result<Element, Fault> {
        let mut detail = Element::new(UDDI_NS, "tModelDetail");
        for tm_elem in payload.find_all(UDDI_NS, "tModel") {
            let tm =
                TModel::from_element(tm_elem).ok_or_else(|| Fault::sender("malformed tModel"))?;
            detail.push_element(self.registry.save_tmodel(tm).to_element());
        }
        Ok(detail)
    }

    fn get_tmodel_detail(&self, payload: &Element) -> Result<Element, Fault> {
        let mut detail = Element::new(UDDI_NS, "tModelDetail");
        for key_elem in payload.find_all(UDDI_NS, "tModelKey") {
            let key = key_elem.text();
            let tm = self
                .registry
                .get_tmodel(key.trim())
                .ok_or_else(|| Fault::sender(format!("no tModel with key {key:?}")))?;
            detail.push_element(tm.to_element());
        }
        Ok(detail)
    }

    fn delete_service(&self, payload: &Element) -> Result<Element, Fault> {
        let mut deleted = 0usize;
        for key_elem in payload.find_all(UDDI_NS, "serviceKey") {
            if self.registry.delete_service(key_elem.text().trim()) {
                deleted += 1;
            }
        }
        Ok(Element::build(UDDI_NS, "dispositionReport")
            .attr_str("deleted", deleted.to_string())
            .finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BindingTemplate;

    fn api_with_service() -> (UddiApi, String) {
        let registry = Registry::new();
        let saved = registry.save_service(
            BusinessService::new("", "biz", "EchoService")
                .with_binding(BindingTemplate::new("", "http://h/Echo")),
        );
        (UddiApi::new(registry), saved.key)
    }

    fn request(payload: Element) -> Envelope {
        Envelope::request(payload)
    }

    #[test]
    fn find_then_detail_flow() {
        let (api, key) = api_with_service();
        let list = api.process(&request(ServiceQuery::by_name("Echo%").to_element()));
        let infos: Vec<ServiceInfo> = list
            .payload()
            .unwrap()
            .find(UDDI_NS, "serviceInfos")
            .unwrap()
            .find_all(UDDI_NS, "serviceInfo")
            .filter_map(ServiceInfo::from_element)
            .collect();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].key, key);

        let mut get = Element::new(UDDI_NS, "get_serviceDetail");
        get.push_element(
            Element::build(UDDI_NS, "serviceKey")
                .text(key.clone())
                .finish(),
        );
        let detail = api.process(&request(get));
        let svc = BusinessService::from_element(
            detail
                .payload()
                .unwrap()
                .find(UDDI_NS, "businessService")
                .unwrap(),
        )
        .unwrap();
        assert_eq!(svc.name, "EchoService");
        assert_eq!(svc.bindings[0].access_point, "http://h/Echo");
    }

    #[test]
    fn save_service_assigns_keys() {
        let api = UddiApi::new(Registry::new());
        let mut save = Element::new(UDDI_NS, "save_service");
        save.push_element(BusinessService::new("", "biz", "New").to_element());
        let response = api.process(&request(save));
        let svc = BusinessService::from_element(
            response
                .payload()
                .unwrap()
                .find(UDDI_NS, "businessService")
                .unwrap(),
        )
        .unwrap();
        assert!(svc.key.starts_with("uuid:svc-"));
        assert_eq!(api.registry().service_count(), 1);
    }

    #[test]
    fn unknown_service_key_faults() {
        let (api, _) = api_with_service();
        let mut get = Element::new(UDDI_NS, "get_serviceDetail");
        get.push_element(
            Element::build(UDDI_NS, "serviceKey")
                .text("uuid:nope")
                .finish(),
        );
        let response = api.process(&request(get));
        assert!(response.fault_body().unwrap().reason.contains("uuid:nope"));
    }

    #[test]
    fn unknown_operation_faults() {
        let (api, _) = api_with_service();
        let response = api.process(&request(Element::new(UDDI_NS, "discard_everything")));
        assert!(response.fault_body().is_some());
    }

    #[test]
    fn empty_body_faults() {
        let (api, _) = api_with_service();
        assert!(api.process(&Envelope::empty()).fault_body().is_some());
    }

    #[test]
    fn tmodel_save_and_get() {
        let api = UddiApi::new(Registry::new());
        let mut save = Element::new(UDDI_NS, "save_tModel");
        save.push_element(
            TModel::new("", "Echo WSDL")
                .with_overview("http://h/Echo?wsdl")
                .to_element(),
        );
        let saved = api.process(&request(save));
        let tm = TModel::from_element(saved.payload().unwrap().find(UDDI_NS, "tModel").unwrap())
            .unwrap();

        let mut get = Element::new(UDDI_NS, "get_tModelDetail");
        get.push_element(
            Element::build(UDDI_NS, "tModelKey")
                .text(tm.key.clone())
                .finish(),
        );
        let got = api.process(&request(get));
        let fetched =
            TModel::from_element(got.payload().unwrap().find(UDDI_NS, "tModel").unwrap()).unwrap();
        assert_eq!(fetched, tm);
    }

    #[test]
    fn delete_service_reports_count() {
        let (api, key) = api_with_service();
        let mut del = Element::new(UDDI_NS, "delete_service");
        del.push_element(Element::build(UDDI_NS, "serviceKey").text(key).finish());
        del.push_element(
            Element::build(UDDI_NS, "serviceKey")
                .text("uuid:ghost")
                .finish(),
        );
        let response = api.process(&request(del));
        let report = response.payload().unwrap();
        assert_eq!(report.attribute_local("deleted"), Some("1"));
        assert_eq!(api.registry().service_count(), 0);
    }
}

//! Registry client: the consumer side of the UDDI protocol, over a
//! pluggable SOAP transport.

use crate::api::ServiceInfo;
use crate::model::{BusinessService, TModel, UDDI_NS};
use crate::query::ServiceQuery;
use crate::registry::Registry;
use std::fmt;
use std::sync::Arc;
use wsp_soap::{Envelope, Fault};
use wsp_xml::Element;

/// A function that carries a SOAP request envelope to the registry and
/// returns the response envelope. Implementations exist for in-process
/// registries ([`direct_transport`]) and HTTP ([`http_transport`]);
/// wsp-core's simulation binding supplies its own.
pub type SoapTransport = Arc<dyn Fn(&Envelope) -> Result<Envelope, String> + Send + Sync>;

/// Errors from registry interactions.
#[derive(Debug, Clone, PartialEq)]
pub enum UddiError {
    Transport(String),
    Fault(Box<Fault>),
    Malformed(String),
}

impl fmt::Display for UddiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UddiError::Transport(e) => write!(f, "registry unreachable: {e}"),
            UddiError::Fault(fault) => write!(f, "registry fault: {fault}"),
            UddiError::Malformed(why) => write!(f, "malformed registry response: {why}"),
        }
    }
}

impl std::error::Error for UddiError {}

/// A UDDI registry client.
#[derive(Clone)]
pub struct UddiClient {
    transport: SoapTransport,
    /// Where this client's transport lands, for per-endpoint circuit
    /// breakers and telemetry labels. `None` for anonymous transports.
    endpoint: Option<String>,
}

impl UddiClient {
    pub fn new(transport: SoapTransport) -> Self {
        UddiClient {
            transport,
            endpoint: None,
        }
    }

    /// Client talking directly to an in-process registry (no wire).
    pub fn direct(registry: Registry) -> Self {
        UddiClient::new(direct_transport(registry)).with_endpoint_hint("uddi:direct")
    }

    /// Client talking to a registry over HTTP at `uri`.
    pub fn http(uri: impl Into<String>) -> Self {
        let uri = uri.into();
        UddiClient::new(http_transport(uri.clone())).with_endpoint_hint(uri)
    }

    /// Label the endpoint this client reaches, keying its circuit
    /// breaker and `/metrics` series in the hosting binding.
    pub fn with_endpoint_hint(mut self, endpoint: impl Into<String>) -> Self {
        self.endpoint = Some(endpoint.into());
        self
    }

    /// The endpoint label, if one was supplied.
    pub fn endpoint_hint(&self) -> Option<&str> {
        self.endpoint.as_deref()
    }

    fn call(&self, payload: Element) -> Result<Element, UddiError> {
        let request = Envelope::request(payload);
        let response = (self.transport)(&request).map_err(UddiError::Transport)?;
        if let Some(fault) = response.fault_body() {
            return Err(UddiError::Fault(Box::new(fault.clone())));
        }
        response
            .payload()
            .cloned()
            .ok_or_else(|| UddiError::Malformed("response body is empty".into()))
    }

    /// `find_service`: returns light summaries.
    pub fn find_services(&self, query: &ServiceQuery) -> Result<Vec<ServiceInfo>, UddiError> {
        let list = self.call(query.to_element())?;
        let infos = list
            .find(UDDI_NS, "serviceInfos")
            .ok_or_else(|| UddiError::Malformed("serviceList lacks serviceInfos".into()))?;
        Ok(infos
            .find_all(UDDI_NS, "serviceInfo")
            .filter_map(ServiceInfo::from_element)
            .collect())
    }

    /// `get_serviceDetail`: full records for the given keys.
    pub fn get_service_details(&self, keys: &[String]) -> Result<Vec<BusinessService>, UddiError> {
        let mut get = Element::new(UDDI_NS, "get_serviceDetail");
        for key in keys {
            get.push_element(
                Element::build(UDDI_NS, "serviceKey")
                    .text(key.clone())
                    .finish(),
            );
        }
        let detail = self.call(get)?;
        Ok(detail
            .find_all(UDDI_NS, "businessService")
            .filter_map(BusinessService::from_element)
            .collect())
    }

    /// Find and fetch details in one client call (two protocol round
    /// trips, like real UDDI tooling).
    pub fn locate(&self, query: &ServiceQuery) -> Result<Vec<BusinessService>, UddiError> {
        let infos = self.find_services(query)?;
        if infos.is_empty() {
            return Ok(Vec::new());
        }
        let keys: Vec<String> = infos.into_iter().map(|i| i.key).collect();
        self.get_service_details(&keys)
    }

    /// `save_business`: register a publishing organisation.
    pub fn save_business(
        &self,
        business: &crate::model::BusinessEntity,
    ) -> Result<crate::model::BusinessEntity, UddiError> {
        let mut save = Element::new(UDDI_NS, "save_business");
        save.push_element(business.to_element());
        let detail = self.call(save)?;
        detail
            .find(UDDI_NS, "businessEntity")
            .and_then(crate::model::BusinessEntity::from_element)
            .ok_or_else(|| UddiError::Malformed("businessDetail lacks businessEntity".into()))
    }

    /// `find_business`: `(key, name)` summaries of businesses whose name
    /// matches `pattern` (`%` wildcards).
    pub fn find_businesses(&self, pattern: &str) -> Result<Vec<(String, String)>, UddiError> {
        let mut find = Element::new(UDDI_NS, "find_business");
        find.push_element(
            Element::build(UDDI_NS, "name")
                .text(pattern.to_owned())
                .finish(),
        );
        let list = self.call(find)?;
        let infos = list
            .find(UDDI_NS, "businessInfos")
            .ok_or_else(|| UddiError::Malformed("businessList lacks businessInfos".into()))?;
        Ok(infos
            .find_all(UDDI_NS, "businessInfo")
            .filter_map(|i| {
                let key = i.attribute_local("businessKey")?.to_owned();
                let name = i.child_text(UDDI_NS, "name")?;
                Some((key, name))
            })
            .collect())
    }

    /// `save_service`: publish a record; returns it with assigned keys.
    pub fn save_service(&self, service: &BusinessService) -> Result<BusinessService, UddiError> {
        let mut save = Element::new(UDDI_NS, "save_service");
        save.push_element(service.to_element());
        let detail = self.call(save)?;
        detail
            .find(UDDI_NS, "businessService")
            .and_then(BusinessService::from_element)
            .ok_or_else(|| UddiError::Malformed("serviceDetail lacks businessService".into()))
    }

    /// `save_tModel`: publish a tModel (e.g. the WSDL pointer).
    pub fn save_tmodel(&self, tmodel: &TModel) -> Result<TModel, UddiError> {
        let mut save = Element::new(UDDI_NS, "save_tModel");
        save.push_element(tmodel.to_element());
        let detail = self.call(save)?;
        detail
            .find(UDDI_NS, "tModel")
            .and_then(TModel::from_element)
            .ok_or_else(|| UddiError::Malformed("tModelDetail lacks tModel".into()))
    }

    /// `get_tModelDetail` for a single key.
    pub fn get_tmodel(&self, key: &str) -> Result<TModel, UddiError> {
        let mut get = Element::new(UDDI_NS, "get_tModelDetail");
        get.push_element(
            Element::build(UDDI_NS, "tModelKey")
                .text(key.to_owned())
                .finish(),
        );
        let detail = self.call(get)?;
        detail
            .find(UDDI_NS, "tModel")
            .and_then(TModel::from_element)
            .ok_or_else(|| UddiError::Malformed("tModelDetail lacks tModel".into()))
    }

    /// `delete_service` for a single key. Returns whether it existed.
    pub fn delete_service(&self, key: &str) -> Result<bool, UddiError> {
        let mut del = Element::new(UDDI_NS, "delete_service");
        del.push_element(
            Element::build(UDDI_NS, "serviceKey")
                .text(key.to_owned())
                .finish(),
        );
        let report = self.call(del)?;
        Ok(report.attribute_local("deleted") == Some("1"))
    }
}

/// Transport that hands envelopes straight to an in-process registry.
pub fn direct_transport(registry: Registry) -> SoapTransport {
    let api = crate::api::UddiApi::new(registry);
    Arc::new(move |request: &Envelope| Ok(api.process(request)))
}

/// Transport that POSTs envelopes to a registry URI, serialising through
/// the full SOAP + HTTP codecs.
pub fn http_transport(uri: String) -> SoapTransport {
    Arc::new(move |request: &Envelope| {
        let body = request.to_xml();
        let http_request =
            wsp_http::Request::post("/", wsp_soap::constants::CONTENT_TYPE, body.into_bytes());
        let response = wsp_http::http_call_uri(&uri, http_request).map_err(|e| e.to_string())?;
        if !response.is_success() && response.status != 500 {
            // 500 carries SOAP faults; anything else is transport-level.
            return Err(format!("registry answered HTTP {}", response.status));
        }
        Envelope::from_xml(&response.body_str()).map_err(|e| e.to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BindingTemplate, KeyedReference};

    fn client_with_data() -> (UddiClient, Registry) {
        let registry = Registry::new();
        registry.save_service(
            BusinessService::new("", "biz", "EchoService")
                .with_category(KeyedReference::new("uddi:types", "", "wspeer"))
                .with_binding(BindingTemplate::new("", "http://h/Echo")),
        );
        (UddiClient::direct(registry.clone()), registry)
    }

    #[test]
    fn locate_round_trip() {
        let (client, _) = client_with_data();
        let found = client.locate(&ServiceQuery::by_name("Echo%")).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].bindings[0].access_point, "http://h/Echo");
    }

    #[test]
    fn locate_no_match_is_empty() {
        let (client, _) = client_with_data();
        assert!(client
            .locate(&ServiceQuery::by_name("Nope%"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn publish_flow() {
        let (client, registry) = client_with_data();
        let saved = client
            .save_service(&BusinessService::new("", "biz", "MathService"))
            .unwrap();
        assert!(saved.key.starts_with("uuid:svc-"));
        assert_eq!(registry.service_count(), 2);
    }

    #[test]
    fn tmodel_flow() {
        let (client, _) = client_with_data();
        let tm = client
            .save_tmodel(&TModel::new("", "Echo WSDL").with_overview("http://h/Echo?wsdl"))
            .unwrap();
        let fetched = client.get_tmodel(&tm.key).unwrap();
        assert_eq!(fetched, tm);
    }

    #[test]
    fn delete_flow() {
        let (client, _) = client_with_data();
        let found = client.find_services(&ServiceQuery::all()).unwrap();
        assert!(client.delete_service(&found[0].key).unwrap());
        assert!(!client.delete_service(&found[0].key).unwrap());
    }

    #[test]
    fn fault_surfaces_as_error() {
        let (client, _) = client_with_data();
        let err = client.get_tmodel("uuid:ghost").unwrap_err();
        assert!(matches!(err, UddiError::Fault(_)));
    }

    #[test]
    fn transport_error_surfaces() {
        let client = UddiClient::new(Arc::new(|_e: &Envelope| Err("cable cut".to_string())));
        let err = client.find_services(&ServiceQuery::all()).unwrap_err();
        assert_eq!(err, UddiError::Transport("cable cut".into()));
    }
}

#[cfg(test)]
mod business_tests {
    use super::*;
    use crate::model::BusinessEntity;

    #[test]
    fn business_publish_and_find_flow() {
        let client = UddiClient::direct(Registry::new());
        let mut cardiff = BusinessEntity::new("", "Cardiff University");
        cardiff.description = Some("School of Computer Science".into());
        let saved = client.save_business(&cardiff).unwrap();
        assert!(saved.key.starts_with("uuid:biz-"));
        client
            .save_business(&BusinessEntity::new("", "LSU CCT"))
            .unwrap();

        let all = client.find_businesses("%").unwrap();
        assert_eq!(all.len(), 2);
        let cardiff_only = client.find_businesses("Cardiff%").unwrap();
        assert_eq!(cardiff_only.len(), 1);
        assert_eq!(cardiff_only[0].0, saved.key);
        assert!(client.find_businesses("Oxford%").unwrap().is_empty());
    }

    #[test]
    fn business_flow_over_http() {
        let server = crate::server::RegistryServer::launch(0).unwrap();
        let client = UddiClient::http(server.uri());
        client
            .save_business(&BusinessEntity::new("", "Cardiff University"))
            .unwrap();
        let found = client.find_businesses("cardiff%").unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].1, "Cardiff University");
        server.shutdown();
    }
}

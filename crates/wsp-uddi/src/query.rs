//! Service queries: the UDDI flavour of WSPeer's `ServiceQuery`
//! abstraction.

use crate::model::{BusinessService, KeyedReference, UDDI_NS};
use wsp_xml::Element;

/// A `find_service` query: name pattern plus category constraints.
///
/// The name pattern supports the UDDI `%` wildcard (match any run of
/// characters) and is case-insensitive, per `approximateMatch`
/// semantics. All listed categories must be present on a matching
/// service.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceQuery {
    pub name_pattern: Option<String>,
    pub categories: Vec<KeyedReference>,
    /// Cap on returned results (UDDI `maxRows`); 0 = unlimited.
    pub max_rows: usize,
}

impl ServiceQuery {
    /// Match services whose name matches `pattern` (`%` wildcards).
    pub fn by_name(pattern: impl Into<String>) -> Self {
        ServiceQuery {
            name_pattern: Some(pattern.into()),
            ..ServiceQuery::default()
        }
    }

    /// Match every service.
    pub fn all() -> Self {
        ServiceQuery::default()
    }

    pub fn with_category(mut self, c: KeyedReference) -> Self {
        self.categories.push(c);
        self
    }

    pub fn with_max_rows(mut self, n: usize) -> Self {
        self.max_rows = n;
        self
    }

    /// Does `service` satisfy this query?
    pub fn matches(&self, service: &BusinessService) -> bool {
        if let Some(pattern) = &self.name_pattern {
            if !wildcard_match(pattern, &service.name) {
                return false;
            }
        }
        self.categories.iter().all(|wanted| {
            service
                .categories
                .iter()
                .any(|c| c.tmodel_key == wanted.tmodel_key && c.key_value == wanted.key_value)
        })
    }

    /// Serialise as a `find_service` element.
    pub fn to_element(&self) -> Element {
        let mut e = Element::new(UDDI_NS, "find_service");
        if self.max_rows > 0 {
            e.set_attribute(wsp_xml::QName::local("maxRows"), self.max_rows.to_string());
        }
        if let Some(p) = &self.name_pattern {
            e.push_element(Element::build(UDDI_NS, "name").text(p.clone()).finish());
        }
        if !self.categories.is_empty() {
            let mut bag = Element::new(UDDI_NS, "categoryBag");
            for c in &self.categories {
                bag.push_element(c.to_element());
            }
            e.push_element(bag);
        }
        e
    }

    /// Parse a `find_service` element.
    pub fn from_element(e: &Element) -> Option<ServiceQuery> {
        if !e.name().is(UDDI_NS, "find_service") {
            return None;
        }
        Some(ServiceQuery {
            name_pattern: e.child_text(UDDI_NS, "name"),
            categories: e
                .find(UDDI_NS, "categoryBag")
                .map(|bag| {
                    bag.find_all(UDDI_NS, "keyedReference")
                        .filter_map(KeyedReference::from_element)
                        .collect()
                })
                .unwrap_or_default(),
            max_rows: e
                .attribute_local("maxRows")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
        })
    }
}

/// Case-insensitive match of `pattern` (with `%` wildcards) against
/// `text`. Classic two-pointer wildcard algorithm, no backtracking blowup.
pub fn wildcard_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().flat_map(|c| c.to_lowercase()).collect();
    let t: Vec<char> = text.chars().flat_map(|c| c.to_lowercase()).collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BindingTemplate;

    fn svc(name: &str, categories: &[(&str, &str)]) -> BusinessService {
        let mut s = BusinessService::new("k", "b", name)
            .with_binding(BindingTemplate::new("bk", "http://h/x"));
        for (tm, val) in categories {
            s = s.with_category(KeyedReference::new(*tm, "", *val));
        }
        s
    }

    #[test]
    fn wildcard_semantics() {
        assert!(wildcard_match("Echo", "echo"));
        assert!(wildcard_match("%", "anything"));
        assert!(wildcard_match("Echo%", "EchoService"));
        assert!(wildcard_match("%Service", "EchoService"));
        assert!(wildcard_match(
            "E%o%e",
            "EchoService".trim_end_matches("rvic")
        ));
        assert!(!wildcard_match("Echo", "EchoService"));
        assert!(!wildcard_match("Echo%X", "EchoService"));
        assert!(wildcard_match("", ""));
        assert!(!wildcard_match("", "x"));
        assert!(wildcard_match("%%", "x"));
    }

    #[test]
    fn name_query_matching() {
        let q = ServiceQuery::by_name("Echo%");
        assert!(q.matches(&svc("EchoService", &[])));
        assert!(!q.matches(&svc("MathService", &[])));
        assert!(ServiceQuery::all().matches(&svc("Whatever", &[])));
    }

    #[test]
    fn category_query_matching() {
        let q = ServiceQuery::all().with_category(KeyedReference::new("uddi:types", "", "wspeer"));
        assert!(q.matches(&svc("S", &[("uddi:types", "wspeer")])));
        assert!(!q.matches(&svc("S", &[("uddi:types", "other")])));
        assert!(!q.matches(&svc("S", &[])));
        // All categories required.
        let q2 = q.with_category(KeyedReference::new("uddi:region", "", "eu"));
        assert!(!q2.matches(&svc("S", &[("uddi:types", "wspeer")])));
        assert!(q2.matches(&svc(
            "S",
            &[("uddi:types", "wspeer"), ("uddi:region", "eu")]
        )));
    }

    #[test]
    fn query_round_trip() {
        let q = ServiceQuery::by_name("Ech%")
            .with_category(KeyedReference::new("uddi:types", "kind", "wspeer"))
            .with_max_rows(5);
        let xml = q.to_element().to_xml();
        let parsed = ServiceQuery::from_element(&wsp_xml::parse(&xml).unwrap()).unwrap();
        assert_eq!(parsed, q);
    }

    #[test]
    fn from_element_rejects_other_elements() {
        assert!(ServiceQuery::from_element(&Element::new(UDDI_NS, "find_business")).is_none());
    }
}

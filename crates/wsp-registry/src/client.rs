//! [`ShardedUddiClient`]: the consumer side of the replicated
//! discovery plane.
//!
//! The client caches the version-stamped [`ShardMap`], routes every
//! publish to the owning shard's primary and stamps the epoch it
//! believes in on the request. Three things can go wrong, and each has
//! a recovery path that needs no operator:
//!
//! * **stale map** — the node answers `wsp:staleShardMap` with the
//!   fresh map in the fault detail; the client swaps its cache and
//!   retries (`ShardMapChanged` invalidation);
//! * **wrong primary** — `wsp:notPrimary` carries the same detail;
//!   refresh and retry against the real primary;
//! * **dead primary** — the transport errors; the per-endpoint circuit
//!   breaker records the failure and the client fails over to the
//!   shard's backups in preference order, whose write path runs the
//!   view change server-side.
//!
//! Retry counts come from the session [`ResiliencePolicy`]; every
//! publish/locate lands in the `registry.publish` / `registry.locate`
//! telemetry series the `/metrics` endpoint exports.

use crate::shard::{ShardMap, REGISTRY_NS};
use parking_lot::RwLock;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;
use wsp_core::{telemetry, Admission, BreakerConfig, EndpointHealth, ResiliencePolicy};
use wsp_soap::{Envelope, Fault};
use wsp_uddi::{BusinessService, ServiceInfo, SoapTransport, UddiError, UDDI_NS};
use wsp_xml::Element;

/// Errors from the sharded discovery plane.
#[derive(Debug)]
pub enum RegistryError {
    /// No quorum / no reachable replica for the shard after failover.
    Unavailable(String),
    /// The registry answered, but with a non-recoverable error.
    Uddi(UddiError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Unavailable(why) => write!(f, "discovery plane unavailable: {why}"),
            RegistryError::Uddi(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<UddiError> for RegistryError {
    fn from(e: UddiError) -> Self {
        RegistryError::Uddi(e)
    }
}

/// Snapshot of the plane's per-shard data versions, stamped with the
/// map epoch it was read at. A shard whose version is unchanged since
/// the last snapshot has committed no save, delete, or lease expiry —
/// cached locate results for it are still exact. This is what the
/// mediation gateway polls on its revalidation interval instead of
/// waiting out cache TTLs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataVersions {
    pub epoch: u64,
    /// Indexed by shard id.
    pub versions: Vec<u64>,
}

fn parse_data_versions(body: &Element) -> Option<DataVersions> {
    if body.name().local_name() != "dataVersions" {
        return None;
    }
    let epoch = body.attribute_local("epoch")?.parse().ok()?;
    let mut versions = Vec::new();
    for shard in body.find_all(REGISTRY_NS, "shard") {
        let id = shard.attribute_local("id")?.parse::<usize>().ok()?;
        let version = shard.attribute_local("version")?.parse::<u64>().ok()?;
        if versions.len() <= id {
            versions.resize(id + 1, 0);
        }
        versions[id] = version;
    }
    Some(DataVersions { epoch, versions })
}

/// What a routed call's fault told us to do next.
enum Recovery {
    /// Fresh map adopted; re-route and retry.
    Rerouted,
    /// Transport-level failure; try the next replica.
    NextReplica,
}

enum CallError {
    Recover(Recovery),
    Fatal(RegistryError),
}

/// A UDDI client that speaks to the whole discovery plane.
pub struct ShardedUddiClient {
    transports: Vec<SoapTransport>,
    endpoints: Vec<String>,
    map: RwLock<Arc<ShardMap>>,
    policy: ResiliencePolicy,
    health: EndpointHealth,
}

impl ShardedUddiClient {
    /// Connect over per-node transports, bootstrapping the shard map
    /// from the first node that answers `get_shardMap`.
    pub fn connect(transports: Vec<SoapTransport>) -> Result<ShardedUddiClient, RegistryError> {
        assert!(!transports.is_empty(), "need at least one node transport");
        let mut bootstrap = None;
        for transport in &transports {
            let request = Envelope::request(crate::cluster::get_shard_map_request());
            if let Ok(response) = transport(&request) {
                if let Some(map) = response.payload().and_then(ShardMap::from_element) {
                    bootstrap = Some(map);
                    break;
                }
            }
        }
        let map = bootstrap.ok_or_else(|| {
            RegistryError::Unavailable("no node answered get_shardMap".to_owned())
        })?;
        let endpoints = map.nodes().to_vec();
        Ok(ShardedUddiClient {
            transports,
            endpoints,
            map: RwLock::new(Arc::new(map)),
            policy: ResiliencePolicy::retrying(3),
            health: EndpointHealth::new(BreakerConfig::default()),
        })
    }

    /// Convenience: a client wired straight onto an in-process cluster.
    pub fn for_cluster(
        cluster: &crate::cluster::RegistryCluster,
    ) -> Result<ShardedUddiClient, RegistryError> {
        let transports = (0..cluster.endpoints().len())
            .map(|n| cluster.node_transport(n))
            .collect();
        ShardedUddiClient::connect(transports)
    }

    pub fn with_policy(mut self, policy: ResiliencePolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn with_breaker_config(self, config: BreakerConfig) -> Self {
        self.health.set_config(config);
        self
    }

    /// The epoch of the currently cached map.
    pub fn cached_epoch(&self) -> u64 {
        self.map.read().epoch()
    }

    pub fn cached_map(&self) -> Arc<ShardMap> {
        self.map.read().clone()
    }

    pub fn health(&self) -> &EndpointHealth {
        &self.health
    }

    /// Fetch a fresh map from any answering node.
    pub fn refresh_map(&self) -> Result<Arc<ShardMap>, RegistryError> {
        for transport in &self.transports {
            let request = Envelope::request(crate::cluster::get_shard_map_request());
            if let Ok(response) = transport(&request) {
                if let Some(map) = response.payload().and_then(ShardMap::from_element) {
                    return Ok(self.adopt(map));
                }
            }
        }
        Err(RegistryError::Unavailable(
            "no node answered get_shardMap".to_owned(),
        ))
    }

    /// The shard the cached map places `name` on.
    pub fn shard_of(&self, name: &str) -> u32 {
        self.map.read().shard_of(name)
    }

    /// Fetch the per-shard data versions from any answering node — the
    /// cheap revalidation probe caching consumers run between TTLs.
    pub fn data_versions(&self) -> Result<DataVersions, RegistryError> {
        for transport in &self.transports {
            let request = Envelope::request(crate::cluster::get_data_versions_request());
            if let Ok(response) = transport(&request) {
                if let Some(parsed) = response.payload().and_then(parse_data_versions) {
                    return Ok(parsed);
                }
            }
        }
        Err(RegistryError::Unavailable(
            "no node answered get_dataVersions".to_owned(),
        ))
    }

    fn adopt(&self, map: ShardMap) -> Arc<ShardMap> {
        let mut cached = self.map.write();
        if map.epoch() >= cached.epoch() {
            *cached = Arc::new(map);
        }
        cached.clone()
    }

    /// Publish (or lease-refresh: same record, same key) a service.
    /// Routes to the owning shard's primary, failing over to backups on
    /// transport errors and re-routing on versioned redirects.
    pub fn publish(&self, service: &BusinessService) -> Result<BusinessService, RegistryError> {
        if service.name.is_empty() {
            return Err(RegistryError::Uddi(UddiError::Malformed(
                "service needs a name to shard on".into(),
            )));
        }
        let t = telemetry::global();
        let started = Instant::now();
        let result = self.routed_write(&service.name, |epoch| {
            let mut save = Element::new(UDDI_NS, "save_service");
            crate::cluster::stamp_epoch(&mut save, epoch);
            save.push_element(service.to_element());
            save
        });
        match &result {
            Ok(_) => {
                t.counter("registry.publish").incr();
                t.histogram("registry.publish.rtt_us")
                    .record_micros(started.elapsed());
            }
            Err(_) => t.counter("registry.publish.errors").incr(),
        }
        let detail = result?;
        detail
            .find(UDDI_NS, "businessService")
            .and_then(BusinessService::from_element)
            .ok_or_else(|| {
                RegistryError::Uddi(UddiError::Malformed(
                    "serviceDetail lacks businessService".into(),
                ))
            })
    }

    /// Unregister by key (cluster-minted keys embed their shard).
    pub fn delete(&self, key: &str) -> Result<bool, RegistryError> {
        let Some(shard) = crate::cluster::shard_of_key(key) else {
            return Ok(false);
        };
        let key = key.to_owned();
        let report = self.routed_write_to_shard(shard, move |epoch| {
            let mut del = Element::new(UDDI_NS, "delete_service");
            crate::cluster::stamp_epoch(&mut del, epoch);
            del.push_element(
                Element::build(UDDI_NS, "serviceKey")
                    .text(key.clone())
                    .finish(),
            );
            del
        })?;
        Ok(report.attribute_local("deleted") == Some("1"))
    }

    fn routed_write(
        &self,
        name: &str,
        build: impl Fn(u64) -> Element,
    ) -> Result<Element, RegistryError> {
        let shard = self.map.read().shard_of(name);
        self.routed_write_to_shard(shard, build)
    }

    /// The failover write loop: primary first, then backups; versioned
    /// redirects refresh the cached map and restart the route.
    fn routed_write_to_shard(
        &self,
        shard: u32,
        build: impl Fn(u64) -> Element,
    ) -> Result<Element, RegistryError> {
        let t = telemetry::global();
        let attempts = self.policy.schedule().len().max(1) + 1;
        let mut last_err = "no replica reachable".to_owned();
        for _ in 0..attempts {
            let map = self.cached_map();
            let order = map.shard(shard).failover_order();
            let mut rerouted = false;
            for (hop, node) in order.iter().copied().enumerate() {
                if hop > 0 {
                    t.counter("registry.publish.failovers").incr();
                }
                match self.call_node(node, build(map.epoch())) {
                    Ok(body) => return Ok(body),
                    Err(CallError::Recover(Recovery::Rerouted)) => {
                        t.counter("registry.publish.redirects").incr();
                        rerouted = true;
                        break;
                    }
                    Err(CallError::Recover(Recovery::NextReplica)) => {
                        last_err = format!("node {node} unreachable");
                        continue;
                    }
                    Err(CallError::Fatal(e)) => return Err(e),
                }
            }
            if !rerouted {
                // Every replica refused at this epoch; one map refresh
                // may reveal a new view before we give up.
                if self.refresh_map().is_err() {
                    break;
                }
            }
        }
        Err(RegistryError::Unavailable(last_err))
    }

    /// One SOAP call to `node`, classified for the failover loop.
    fn call_node(&self, node: usize, payload: Element) -> Result<Element, CallError> {
        let endpoint = &self.endpoints[node];
        let breaker = self.health.breaker(endpoint);
        let now = Instant::now();
        if matches!(breaker.try_acquire(now), Admission::Rejected) {
            return Err(CallError::Recover(Recovery::NextReplica));
        }
        let request = Envelope::request(payload);
        match (self.transports[node])(&request) {
            Err(_) => {
                breaker.on_failure(Instant::now());
                Err(CallError::Recover(Recovery::NextReplica))
            }
            Ok(response) => {
                breaker.on_success(Instant::now());
                if let Some(fault) = response.fault_body() {
                    return Err(self.classify_fault(fault));
                }
                response.payload().cloned().ok_or_else(|| {
                    CallError::Fatal(RegistryError::Uddi(UddiError::Malformed(
                        "response body is empty".into(),
                    )))
                })
            }
        }
    }

    /// Versioned redirects carry the fresh map in the fault detail;
    /// adopt it and re-route. Quorum loss is terminal for this call.
    fn classify_fault(&self, fault: &Fault) -> CallError {
        let redirect = fault.reason.contains("wsp:staleShardMap")
            || fault.reason.contains("wsp:notPrimary")
            || fault.reason.contains("wsp:notMember");
        if redirect {
            if let Some(map) = fault.detail.as_deref().and_then(ShardMap::from_element) {
                self.adopt(map);
            } else {
                let _ = self.refresh_map();
            }
            return CallError::Recover(Recovery::Rerouted);
        }
        if fault.reason.contains("wsp:unavailable") {
            return CallError::Fatal(RegistryError::Unavailable(fault.reason.clone()));
        }
        CallError::Fatal(RegistryError::Uddi(UddiError::Fault(Box::new(
            fault.clone(),
        ))))
    }

    /// Locate services matching `query` across the whole plane: a
    /// scatter over a minimal live cover of the shards, results merged
    /// by key.
    pub fn locate(
        &self,
        query: &wsp_uddi::ServiceQuery,
    ) -> Result<Vec<BusinessService>, RegistryError> {
        let t = telemetry::global();
        let started = Instant::now();
        let result = self.locate_inner(query);
        match &result {
            Ok(_) => {
                t.counter("registry.locate").incr();
                t.histogram("registry.locate.rtt_us")
                    .record_micros(started.elapsed());
            }
            Err(_) => t.counter("registry.locate.errors").incr(),
        }
        result
    }

    fn locate_inner(
        &self,
        query: &wsp_uddi::ServiceQuery,
    ) -> Result<Vec<BusinessService>, RegistryError> {
        for _ in 0..2 {
            let map = self.cached_map();
            // Greedy cover: one reachable node per shard, deduplicated —
            // a node serves every shard it hosts from its local store.
            let mut cover: Vec<usize> = Vec::new();
            for s in 0..map.shard_count() {
                let members = &map.shard(s).members;
                if members.iter().any(|m| cover.contains(m)) {
                    continue;
                }
                cover.push(map.shard(s).primary());
            }
            match self.scatter(query, &cover) {
                Ok(found) => return Ok(found),
                Err(CallError::Recover(_)) => {
                    // A shard's cover node died or redirected: refresh
                    // the map (new views move primaries) and rescatter.
                    let _ = self.refresh_map();
                }
                Err(CallError::Fatal(e)) => return Err(e),
            }
        }
        // Final attempt: walk every member per shard before giving up.
        let map = self.cached_map();
        let mut results: Vec<BusinessService> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for s in 0..map.shard_count() {
            let mut shard_ok = false;
            for &node in &map.shard(s).failover_order() {
                match self.find_and_fetch(query, node) {
                    Ok(found) => {
                        for svc in found {
                            if seen.insert(svc.key.clone()) {
                                results.push(svc);
                            }
                        }
                        shard_ok = true;
                        break;
                    }
                    Err(CallError::Recover(_)) => continue,
                    Err(CallError::Fatal(e)) => return Err(e),
                }
            }
            if !shard_ok {
                return Err(RegistryError::Unavailable(format!(
                    "no live replica for shard {s}"
                )));
            }
        }
        Ok(results)
    }

    fn scatter(
        &self,
        query: &wsp_uddi::ServiceQuery,
        cover: &[usize],
    ) -> Result<Vec<BusinessService>, CallError> {
        let mut results: Vec<BusinessService> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &node in cover {
            for svc in self.find_and_fetch(query, node)? {
                if seen.insert(svc.key.clone()) {
                    results.push(svc);
                }
            }
        }
        Ok(results)
    }

    /// The classic two-step UDDI inquiry (find, then detail) against
    /// one node.
    fn find_and_fetch(
        &self,
        query: &wsp_uddi::ServiceQuery,
        node: usize,
    ) -> Result<Vec<BusinessService>, CallError> {
        let epoch = self.cached_epoch();
        let mut find = query.to_element();
        crate::cluster::stamp_epoch(&mut find, epoch);
        let list = self.call_node(node, find)?;
        let infos: Vec<ServiceInfo> = list
            .find(UDDI_NS, "serviceInfos")
            .map(|i| {
                i.find_all(UDDI_NS, "serviceInfo")
                    .filter_map(ServiceInfo::from_element)
                    .collect()
            })
            .unwrap_or_default();
        if infos.is_empty() {
            return Ok(Vec::new());
        }
        let mut get = Element::new(UDDI_NS, "get_serviceDetail");
        crate::cluster::stamp_epoch(&mut get, epoch);
        for info in &infos {
            get.push_element(
                Element::build(UDDI_NS, "serviceKey")
                    .text(info.key.clone())
                    .finish(),
            );
        }
        let detail = self.call_node(node, get)?;
        Ok(detail
            .find_all(UDDI_NS, "businessService")
            .filter_map(BusinessService::from_element)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, RegistryCluster};
    use wsp_uddi::{BindingTemplate, ServiceQuery};

    fn plane() -> (RegistryCluster, ShardedUddiClient) {
        let cluster = RegistryCluster::new(ClusterConfig {
            nodes: 3,
            shard_count: 4,
            replication: 3,
            default_ttl: None,
        });
        let client = ShardedUddiClient::for_cluster(&cluster).unwrap();
        (cluster, client)
    }

    fn svc(name: &str) -> BusinessService {
        BusinessService::new("", "biz", name)
            .with_binding(BindingTemplate::new("", format!("http://h/{name}")))
    }

    #[test]
    fn publish_then_locate_round_trip() {
        let (_cluster, client) = plane();
        let saved = client.publish(&svc("EchoService")).unwrap();
        assert!(saved.key.starts_with("uuid:svc-s"));
        let found = client
            .locate(&ServiceQuery::by_name("EchoService"))
            .unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key, saved.key);
    }

    #[test]
    fn scatter_locate_merges_across_shards() {
        let (_cluster, client) = plane();
        for i in 0..16 {
            client.publish(&svc(&format!("Svc{i}"))).unwrap();
        }
        let found = client.locate(&ServiceQuery::by_name("Svc%")).unwrap();
        assert_eq!(found.len(), 16, "every shard's records must merge");
    }

    #[test]
    fn publish_fails_over_when_primary_dies() {
        let (cluster, client) = plane();
        let name = "FailoverService";
        let saved = client.publish(&svc(name)).unwrap();
        let route = cluster.shard_map().route(name);
        let epoch_before = client.cached_epoch();

        cluster.crash(route.primary);
        // The client retries against backups; the server-side view
        // change elects a new primary; the republish commits.
        let refreshed = client.publish(&svc(name)).unwrap();
        assert!(refreshed.key.starts_with("uuid:svc-s"));
        assert!(
            client.cached_epoch() > epoch_before,
            "failover must teach the client a newer map"
        );
        // The original committed record survived on the survivors.
        for &m in &route.backups {
            assert!(cluster.node_registry(m).get_service(&saved.key).is_some());
        }
    }

    #[test]
    fn locate_survives_one_node_down() {
        let (cluster, client) = plane();
        for i in 0..8 {
            client.publish(&svc(&format!("Wide{i}"))).unwrap();
        }
        cluster.crash(0);
        let found = client.locate(&ServiceQuery::by_name("Wide%")).unwrap();
        assert_eq!(found.len(), 8, "replication must cover the dead node");
    }

    #[test]
    fn stale_client_is_rerouted_transparently() {
        let (cluster, client) = plane();
        let name = "StaleService";
        let saved = client.publish(&svc(name)).unwrap();
        // A second client with its own (soon stale) cache.
        let other = ShardedUddiClient::for_cluster(&cluster).unwrap();
        let route = cluster.shard_map().route(name);
        cluster.crash(route.primary);
        // First client fails over (refreshing its own lease: same key),
        // bumping the server-side epoch.
        client.publish(&saved).unwrap();
        // The other client still quotes the old epoch: the versioned
        // redirect must refresh it mid-call, without surfacing an error.
        let found = other.locate(&ServiceQuery::by_name(name)).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(other.cached_epoch(), cluster.shard_map().epoch());
    }

    #[test]
    fn delete_routes_by_key_embedded_shard() {
        let (_cluster, client) = plane();
        let saved = client.publish(&svc("Doomed")).unwrap();
        assert!(client.delete(&saved.key).unwrap());
        assert!(client
            .locate(&ServiceQuery::by_name("Doomed"))
            .unwrap()
            .is_empty());
        assert!(!client.delete(&saved.key).unwrap());
    }

    #[test]
    fn unavailable_when_quorum_lost() {
        let (cluster, client) = plane();
        cluster.crash(1);
        cluster.crash(2);
        let err = client.publish(&svc("NoQuorum")).unwrap_err();
        assert!(matches!(err, RegistryError::Unavailable(_)), "{err}");
    }

    #[test]
    fn data_versions_track_commits_and_lease_expiry() {
        let (cluster, client) = plane();
        let before = client.data_versions().unwrap();
        assert!(before.versions.iter().all(|&v| v == 0));

        let name = "VersionedService";
        let shard = client.shard_of(name) as usize;
        let saved = client.publish(&svc(name)).unwrap();
        let after_save = client.data_versions().unwrap();
        assert!(
            after_save.versions[shard] > before.versions[shard],
            "a committed save must bump its shard's data version"
        );
        let untouched: Vec<usize> = (0..after_save.versions.len())
            .filter(|&s| s != shard)
            .collect();
        for s in untouched {
            assert_eq!(
                after_save.versions[s], before.versions[s],
                "other shards' versions must not move"
            );
        }

        client.delete(&saved.key).unwrap();
        let after_delete = client.data_versions().unwrap();
        assert!(after_delete.versions[shard] > after_save.versions[shard]);

        // Lease expiry is a data change too: cached consumers must
        // learn the record vanished.
        let leased = BusinessService::new("", "biz", name).with_lease_ttl_ms(500);
        client.publish(&leased).unwrap();
        let at_grant = client.data_versions().unwrap();
        cluster.advance_to(wsp_simnet::Time::millis(600));
        let after_expiry = client.data_versions().unwrap();
        assert!(
            after_expiry.versions[shard] > at_grant.versions[shard],
            "lease expiry must bump the shard's data version"
        );
    }

    /// Regression for the redirect/refresh race: many writers receiving
    /// `wsp:staleShardMap` faults (each carrying a fresh map) while
    /// another thread hammers `refresh_map`. The cached epoch must be
    /// monotone non-decreasing under the interleaving (an older map
    /// adopted after a newer one would re-route writes to dead
    /// primaries) and must settle at the newest epoch any node served.
    #[test]
    fn concurrent_redirects_racing_refresh_never_regress_the_epoch() {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::Arc;

        let endpoints = vec!["wsp://registry/0".to_owned()];
        let server_epoch = Arc::new(AtomicU64::new(0));
        let max_served = Arc::new(AtomicU64::new(0));

        let transport: SoapTransport = {
            let server_epoch = server_epoch.clone();
            let max_served = max_served.clone();
            let endpoints = endpoints.clone();
            Arc::new(move |request: &Envelope| {
                let map_at = |epoch: u64| ShardMap::build(endpoints.clone(), 2, 1, epoch);
                let payload = request.payload().expect("request has a body");
                match payload.name().local_name() {
                    "get_shardMap" => {
                        // Each refresh observes a (possibly) newer map.
                        let e = server_epoch.fetch_add(1, Ordering::SeqCst) + 1;
                        max_served.fetch_max(e, Ordering::SeqCst);
                        Ok(Envelope::request(map_at(e).to_element()))
                    }
                    "get_dataVersions" => Ok(Envelope::request(wsp_xml::Element::new(
                        REGISTRY_NS,
                        "dataVersions",
                    ))),
                    _ => {
                        // Every write is refused with a stale-map
                        // redirect quoting a bumped epoch in the detail.
                        let e = server_epoch.fetch_add(1, Ordering::SeqCst) + 1;
                        max_served.fetch_max(e, Ordering::SeqCst);
                        Ok(Envelope::fault(
                            Fault::sender(format!("wsp:staleShardMap epoch={e}"))
                                .with_detail(map_at(e).to_element()),
                        ))
                    }
                }
            })
        };
        // Bootstrap consumed epoch 1; reset the odometer's floor.
        let client = Arc::new(ShardedUddiClient::connect(vec![transport]).unwrap());
        assert_eq!(client.cached_epoch(), 1);

        let stop = Arc::new(AtomicBool::new(false));
        let monotone = {
            let client = client.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut last = 0u64;
                let mut ok = true;
                while !stop.load(Ordering::SeqCst) {
                    let seen = client.cached_epoch();
                    ok &= seen >= last;
                    last = seen;
                    std::thread::yield_now();
                }
                ok
            })
        };
        let mut workers = Vec::new();
        for w in 0..4 {
            let client = client.clone();
            workers.push(std::thread::spawn(move || {
                for i in 0..40 {
                    // Writers chase redirects; refreshers race them.
                    let _ = client.publish(&svc(&format!("Race{w}x{i}")));
                    let _ = client.refresh_map();
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::SeqCst);
        assert!(
            monotone.join().unwrap(),
            "cached epoch regressed under concurrent redirect/refresh"
        );
        // One final refresh: the cache must land on the newest map any
        // response carried — no adopted epoch bump may be dropped.
        client.refresh_map().unwrap();
        assert_eq!(client.cached_epoch(), max_served.load(Ordering::SeqCst));
    }

    #[test]
    fn telemetry_counters_move() {
        let t = telemetry::global();
        let published = t.counter("registry.publish").get();
        let located = t.counter("registry.locate").get();
        let (_cluster, client) = plane();
        client.publish(&svc("Counted")).unwrap();
        client.locate(&ServiceQuery::by_name("Counted")).unwrap();
        assert!(t.counter("registry.publish").get() > published);
        assert!(t.counter("registry.locate").get() > located);
    }
}

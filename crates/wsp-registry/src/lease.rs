//! Soft-state leases over the discrete-event wheel.
//!
//! Every replicated publish carries a TTL stamped by the shard primary
//! at grant time. [`LeaseTable`] is the runtime sweep: one
//! [`EventWheel`] of expiry events per replication group, driven
//! exclusively by *logical* ticks (`advance_to`), never wall-clock, so
//! that seeded runs shed the same leases at the same virtual instants
//! and stay digest-pinned. Refreshes cancel the outstanding expiry
//! exactly (the wheel's keys never misfire) and re-arm.
//!
//! [`LeaseMachine`] is the pure transition function `wsp-check`
//! explores: it carries a generation counter so the invariant "an
//! expired lease is never resurrected by a stale refresh" is checkable
//! on every reachable edge.

use std::collections::HashMap;
use wsp_simnet::{Dur, EventKey, EventWheel, Machine, Time};

/// What happened to a lease, as recorded in the deterministic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseAction {
    Granted,
    Renewed,
    Expired,
    Cancelled,
}

/// One line of the lease trace: `(virtual time, key, action)`. Two runs
/// under the same seed must produce identical traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseTrace {
    pub at: Time,
    pub key: String,
    pub action: LeaseAction,
}

/// The wheel-driven lease sweep for one replication group.
#[derive(Default)]
pub struct LeaseTable {
    wheel: EventWheel<String>,
    armed: HashMap<String, EventKey>,
    trace: Vec<LeaseTrace>,
}

impl LeaseTable {
    pub fn new() -> LeaseTable {
        LeaseTable::default()
    }

    pub fn now(&self) -> Time {
        self.wheel.now()
    }

    /// Advance the logical clock to `now`, returning every key whose
    /// lease expired on the way (in deterministic wheel order).
    pub fn advance_to(&mut self, now: Time) -> Vec<String> {
        let mut expired = Vec::new();
        while self.wheel.next_time().is_some_and(|t| t <= now) {
            let (at, key) = self.wheel.pop().expect("next_time said so");
            // Only still-armed keys count: a cancelled entry never pops
            // (exact cancellation), so anything popped is live.
            if self.armed.remove(&key).is_some() {
                self.trace.push(LeaseTrace {
                    at,
                    key: key.clone(),
                    action: LeaseAction::Expired,
                });
                expired.push(key);
            }
        }
        self.wheel.advance_to(now);
        expired
    }

    /// Grant or refresh the lease on `key` for `ttl` from the current
    /// wheel time. Returns [`LeaseAction::Renewed`] when an outstanding
    /// lease was extended, [`LeaseAction::Granted`] for a fresh one.
    pub fn grant(&mut self, key: &str, ttl: Dur) -> LeaseAction {
        let action = match self.armed.remove(key) {
            Some(prior) => {
                self.wheel.cancel(prior);
                LeaseAction::Renewed
            }
            None => LeaseAction::Granted,
        };
        let armed = self.wheel.schedule_after(ttl, key.to_owned());
        self.armed.insert(key.to_owned(), armed);
        self.trace.push(LeaseTrace {
            at: self.wheel.now(),
            key: key.to_owned(),
            action,
        });
        action
    }

    /// Drop the lease on `key` (explicit unregister). No-op if absent.
    pub fn cancel(&mut self, key: &str) {
        if let Some(prior) = self.armed.remove(key) {
            self.wheel.cancel(prior);
            self.trace.push(LeaseTrace {
                at: self.wheel.now(),
                key: key.to_owned(),
                action: LeaseAction::Cancelled,
            });
        }
    }

    pub fn is_active(&self, key: &str) -> bool {
        self.armed.contains_key(key)
    }

    pub fn active_count(&self) -> usize {
        self.armed.len()
    }

    /// The full deterministic trace so far.
    pub fn trace(&self) -> &[LeaseTrace] {
        &self.trace
    }
}

// ---------------------------------------------------------------------------
// The pure machine wsp-check explores
// ---------------------------------------------------------------------------

/// Lifecycle of one checked lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LeaseStatus {
    Idle,
    Active,
    Expired,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeaseState {
    pub status: LeaseStatus,
    /// Bumped on every grant; refreshes must quote it.
    pub generation: u8,
    pub clock: u64,
    pub expires_at: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseEvent {
    Tick,
    Grant,
    /// A provider refresh quoting the generation it believes it holds.
    Refresh {
        generation: u8,
    },
    Cancel,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseEffect {
    Granted {
        generation: u8,
    },
    Renewed {
        generation: u8,
    },
    Expired {
        generation: u8,
    },
    Cancelled,
    /// A refresh that quoted a stale generation or arrived after
    /// expiry: rejected, never re-arms.
    RefreshRejected,
}

/// Pure lease lifecycle with logical ticks.
#[derive(Debug, Clone, Copy)]
pub struct LeaseMachine {
    pub ttl: u64,
}

impl Machine for LeaseMachine {
    type State = LeaseState;
    type Event = LeaseEvent;
    type Effect = LeaseEffect;

    fn initial(&self) -> LeaseState {
        LeaseState {
            status: LeaseStatus::Idle,
            generation: 0,
            clock: 0,
            expires_at: 0,
        }
    }

    fn step(&self, state: &LeaseState, event: &LeaseEvent) -> (LeaseState, Vec<LeaseEffect>) {
        let mut next = *state;
        let effects = match event {
            LeaseEvent::Tick => {
                next.clock += 1;
                if next.status == LeaseStatus::Active && next.clock >= next.expires_at {
                    next.status = LeaseStatus::Expired;
                    vec![LeaseEffect::Expired {
                        generation: next.generation,
                    }]
                } else {
                    vec![]
                }
            }
            LeaseEvent::Grant => {
                next.generation += 1;
                next.status = LeaseStatus::Active;
                next.expires_at = next.clock + self.ttl;
                vec![LeaseEffect::Granted {
                    generation: next.generation,
                }]
            }
            LeaseEvent::Refresh { generation } => {
                if next.status == LeaseStatus::Active && *generation == next.generation {
                    next.expires_at = next.clock + self.ttl;
                    vec![LeaseEffect::Renewed {
                        generation: next.generation,
                    }]
                } else {
                    // Stale generation, or the lease already expired:
                    // a refresh never resurrects it.
                    vec![LeaseEffect::RefreshRejected]
                }
            }
            LeaseEvent::Cancel => {
                if next.status == LeaseStatus::Active {
                    next.status = LeaseStatus::Idle;
                    vec![LeaseEffect::Cancelled]
                } else {
                    vec![]
                }
            }
        };
        (next, effects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_refresh_expire_cycle() {
        let mut leases = LeaseTable::new();
        assert_eq!(
            leases.grant("svc-a", Dur::millis(100)),
            LeaseAction::Granted
        );
        assert!(leases.advance_to(Time::millis(60)).is_empty());
        assert_eq!(
            leases.grant("svc-a", Dur::millis(100)),
            LeaseAction::Renewed
        );
        // The old expiry at t=100 was cancelled exactly; the new one is
        // at t=160.
        assert!(leases.advance_to(Time::millis(120)).is_empty());
        assert_eq!(leases.advance_to(Time::millis(200)), vec!["svc-a"]);
        assert!(!leases.is_active("svc-a"));
    }

    #[test]
    fn expiry_order_is_deterministic() {
        let run = || {
            let mut leases = LeaseTable::new();
            leases.grant("a", Dur::millis(50));
            leases.grant("b", Dur::millis(50));
            leases.grant("c", Dur::millis(10));
            leases.advance_to(Time::millis(30));
            leases.grant("b", Dur::millis(50));
            leases.advance_to(Time::millis(500));
            leases.trace().to_vec()
        };
        let first = run();
        assert_eq!(first, run(), "same schedule, same trace");
        let expiries: Vec<&str> = first
            .iter()
            .filter(|t| t.action == LeaseAction::Expired)
            .map(|t| t.key.as_str())
            .collect();
        assert_eq!(expiries, vec!["c", "a", "b"]);
    }

    #[test]
    fn cancel_prevents_expiry() {
        let mut leases = LeaseTable::new();
        leases.grant("gone", Dur::millis(10));
        leases.cancel("gone");
        assert!(leases.advance_to(Time::millis(100)).is_empty());
    }

    #[test]
    fn machine_refresh_after_expiry_is_rejected() {
        let m = LeaseMachine { ttl: 2 };
        let s0 = m.initial();
        let (s1, _) = m.step(&s0, &LeaseEvent::Grant);
        let (s2, _) = m.step(&s1, &LeaseEvent::Tick);
        let (s3, fx) = m.step(&s2, &LeaseEvent::Tick);
        assert_eq!(fx, vec![LeaseEffect::Expired { generation: 1 }]);
        let (s4, fx) = m.step(&s3, &LeaseEvent::Refresh { generation: 1 });
        assert_eq!(fx, vec![LeaseEffect::RefreshRejected]);
        assert_eq!(s4.status, LeaseStatus::Expired);
    }
}

//! `wsp-registry` — the sharded, replicated discovery plane.
//!
//! The paper's critique C5 is that a single UDDI registry is both the
//! bottleneck and the single point of failure of service discovery.
//! This crate turns the one-node `wsp_uddi::Registry` into a discovery
//! *plane*:
//!
//! * [`shard`] — consistent-hash placement of service names across N
//!   registry nodes, published to clients as a version-stamped
//!   [`ShardMap`] (stale copies earn a versioned redirect fault and an
//!   epoch-bumped refresh);
//! * [`lease`] — soft-state registrations: every publish carries a TTL,
//!   providers refresh, and a wheel-driven sweep retires what is not
//!   refreshed — crashed providers vanish without an unregister;
//! * [`replication`] — VR-lite primary/backup replication per shard as
//!   a *pure* [`wsp_simnet::Machine`] transition function (view
//!   numbers, op log, prepare/prepare-ok/commit, view change on primary
//!   timeout), exhaustively explored by `wsp-check`;
//! * [`cluster`] — the thin runtime shell: N in-process registry nodes,
//!   a synchronous message pump executing the pure machine's effects,
//!   SOAP fronts per node for the HTTP and P2PS bindings;
//! * [`client`] — [`ShardedUddiClient`]: shard-map routing, scatter
//!   locate, primary→backup failover through `ResiliencePolicy` and the
//!   per-endpoint circuit breakers, map refresh on redirect.

pub mod client;
pub mod cluster;
pub mod lease;
pub mod replication;
pub mod shard;

pub use client::{DataVersions, RegistryError, ShardedUddiClient};
pub use cluster::{
    get_data_versions_request, get_shard_map_request, shard_of_key, stamp_epoch, ClusterConfig,
    ClusterOp, RegistryCluster,
};
pub use lease::{
    LeaseAction, LeaseEffect, LeaseEvent, LeaseMachine, LeaseState, LeaseStatus, LeaseTable,
    LeaseTrace,
};
pub use replication::{
    GroupEffect, GroupEvent, GroupMachine, GroupState, ReplEffect, ReplEvent, ReplMsg,
    ReplicaMachine, ReplicaState, SkipLogCatchup, Status,
};
pub use shard::{Route, ShardInfo, ShardMap, REGISTRY_NS};

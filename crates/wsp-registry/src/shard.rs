//! The consistent-hash shard map.
//!
//! Service names hash onto a fixed set of shards; each shard is placed
//! on a replica set of nodes by walking a consistent-hash ring of
//! virtual node tokens, so adding or removing a node only remaps the
//! shards whose ring walk touches it. The whole map is version-stamped
//! with an `epoch`: clients cache it, send the epoch they believe in
//! with every routed request, and a node that sees a stale epoch
//! answers with a versioned redirect fault instead of serving the
//! misrouted request. View changes inside one shard's replica group
//! also bump the epoch so cached primaries are invalidated the same
//! way (`ShardMapChanged`).

use wsp_xml::{Element, QName};

/// Namespace of the registry-plane control messages (`get_shardMap`,
/// the map document, redirect fault details).
pub const REGISTRY_NS: &str = "urn:wsp:registry";

/// Virtual tokens per node on the placement ring. Plenty for the node
/// counts we shard across while keeping map construction trivial.
const VNODES: u64 = 32;

/// 64-bit FNV-1a, the same fingerprint family the sim digests use.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 avalanche finalizer. Ring tokens share long common
/// prefixes (`wsp://registry/3#17`), and raw FNV-1a over strings that
/// differ only in their tail clusters badly — badly enough that every
/// shard's ring walk can land on the same three nodes, which turns
/// "crash two nodes" into "every shard loses quorum". One avalanche
/// pass decorrelates the tokens so placement actually spreads.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// One shard's placement: the replica set (node indices, preference
/// order) and the replication group's current view number. The view's
/// primary is `members[view % members.len()]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    pub members: Vec<usize>,
    pub view: u32,
}

impl ShardInfo {
    pub fn primary(&self) -> usize {
        self.members[self.view as usize % self.members.len()]
    }

    /// Members in failover order: the view's primary first, then the
    /// rest of the replica set.
    pub fn failover_order(&self) -> Vec<usize> {
        let mut order = vec![self.primary()];
        order.extend(
            self.members
                .iter()
                .copied()
                .filter(|&m| m != self.primary()),
        );
        order
    }
}

/// Where a routed request should go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    pub shard: u32,
    pub primary: usize,
    pub backups: Vec<usize>,
}

/// The version-stamped shard map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    epoch: u64,
    /// Endpoint label per node (index = node id).
    nodes: Vec<String>,
    shards: Vec<ShardInfo>,
}

impl ShardMap {
    /// Place `shard_count` shards across `nodes` with `replication`-way
    /// replica sets, chosen by a consistent-hash ring walk.
    pub fn build(nodes: Vec<String>, shard_count: u32, replication: usize, epoch: u64) -> ShardMap {
        assert!(!nodes.is_empty(), "a shard map needs at least one node");
        let replication = replication.min(nodes.len()).max(1);
        // The ring: VNODES tokens per node, sorted by hash.
        let mut ring: Vec<(u64, usize)> = Vec::with_capacity(nodes.len() * VNODES as usize);
        for (id, endpoint) in nodes.iter().enumerate() {
            for v in 0..VNODES {
                ring.push((mix(fnv1a(format!("{endpoint}#{v}").as_bytes())), id));
            }
        }
        ring.sort_unstable();
        let shards = (0..shard_count)
            .map(|s| {
                let start = mix(fnv1a(format!("shard/{s}").as_bytes()));
                // Walk clockwise from the shard's token collecting
                // distinct nodes until the replica set is full.
                let from = ring.partition_point(|&(h, _)| h < start);
                let mut members = Vec::with_capacity(replication);
                for i in 0..ring.len() {
                    let (_, node) = ring[(from + i) % ring.len()];
                    if !members.contains(&node) {
                        members.push(node);
                        if members.len() == replication {
                            break;
                        }
                    }
                }
                ShardInfo { members, view: 0 }
            })
            .collect();
        ShardMap {
            epoch,
            nodes,
            shards,
        }
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    pub fn shard(&self, s: u32) -> &ShardInfo {
        &self.shards[s as usize]
    }

    /// Which shard a service name lives on.
    pub fn shard_of(&self, name: &str) -> u32 {
        (fnv1a(name.as_bytes()) % self.shards.len() as u64) as u32
    }

    /// Full route for a service name.
    pub fn route(&self, name: &str) -> Route {
        let shard = self.shard_of(name);
        let info = self.shard(shard);
        let primary = info.primary();
        Route {
            shard,
            primary,
            backups: info
                .members
                .iter()
                .copied()
                .filter(|&m| m != primary)
                .collect(),
        }
    }

    /// A copy with shard `s` moved to `view`, stamped as a new epoch.
    /// This is the `ShardMapChanged` bump clients invalidate on.
    pub fn with_view(&self, s: u32, view: u32) -> ShardMap {
        let mut next = self.clone();
        next.shards[s as usize].view = view;
        next.epoch += 1;
        next
    }

    /// Serialize for the `get_shardMap` response.
    pub fn to_element(&self) -> Element {
        let mut e = Element::new(REGISTRY_NS, "shardMap");
        e.set_attribute(QName::local("epoch"), self.epoch.to_string());
        for (id, endpoint) in self.nodes.iter().enumerate() {
            e.push_element(
                Element::build(REGISTRY_NS, "node")
                    .attr_str("id", id.to_string())
                    .attr_str("endpoint", endpoint.clone())
                    .finish(),
            );
        }
        for (id, shard) in self.shards.iter().enumerate() {
            let members = shard
                .members
                .iter()
                .map(|m| m.to_string())
                .collect::<Vec<_>>()
                .join(",");
            e.push_element(
                Element::build(REGISTRY_NS, "shard")
                    .attr_str("id", id.to_string())
                    .attr_str("view", shard.view.to_string())
                    .attr_str("members", members)
                    .finish(),
            );
        }
        e
    }

    pub fn from_element(e: &Element) -> Option<ShardMap> {
        let epoch = e.attribute_local("epoch")?.parse().ok()?;
        let mut nodes: Vec<(usize, String)> = e
            .find_all(REGISTRY_NS, "node")
            .filter_map(|n| {
                Some((
                    n.attribute_local("id")?.parse().ok()?,
                    n.attribute_local("endpoint")?.to_owned(),
                ))
            })
            .collect();
        nodes.sort_by_key(|(id, _)| *id);
        let mut shards: Vec<(usize, ShardInfo)> = e
            .find_all(REGISTRY_NS, "shard")
            .filter_map(|s| {
                let id = s.attribute_local("id")?.parse().ok()?;
                let view = s.attribute_local("view")?.parse().ok()?;
                let members = s
                    .attribute_local("members")?
                    .split(',')
                    .map(|m| m.parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .ok()?;
                Some((id, ShardInfo { members, view }))
            })
            .collect();
        shards.sort_by_key(|(id, _)| *id);
        if nodes.is_empty() || shards.is_empty() {
            return None;
        }
        Some(ShardMap {
            epoch,
            nodes: nodes.into_iter().map(|(_, ep)| ep).collect(),
            shards: shards.into_iter().map(|(_, s)| s).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoints(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("node-{i}")).collect()
    }

    #[test]
    fn replica_sets_are_distinct_and_full() {
        let map = ShardMap::build(endpoints(5), 8, 3, 0);
        for s in 0..8 {
            let info = map.shard(s);
            assert_eq!(info.members.len(), 3);
            let mut sorted = info.members.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "members must be distinct");
        }
    }

    #[test]
    fn placement_spreads_shards_across_the_cluster() {
        // Regression: raw FNV tokens once put all four shards on the
        // identical three nodes of a six-node cluster, so two crashes
        // took out every shard's quorum at once. Placement must spread:
        // distinct replica sets, more than `replication` distinct nodes
        // carrying load, and no single node belonging to every shard's
        // failure domain.
        let map = ShardMap::build(endpoints(6), 4, 3, 0);
        let sets: Vec<Vec<usize>> = (0..4).map(|s| map.shard(s).members.clone()).collect();
        assert!(
            sets.iter().any(|m| m != &sets[0]),
            "all shards on one replica set: {sets:?}"
        );
        let mut load = vec![0usize; 6];
        for set in &sets {
            for &m in set {
                load[m] += 1;
            }
        }
        let carriers = load.iter().filter(|&&c| c > 0).count();
        assert!(
            carriers > 3,
            "only {carriers} of 6 nodes carry shards: {load:?}"
        );
        assert!(
            load.iter().all(|&c| c < 4),
            "one node is in every shard's replica set: {load:?}"
        );
    }

    #[test]
    fn routing_is_stable_and_covers_all_shards() {
        let map = ShardMap::build(endpoints(4), 8, 3, 0);
        let mut seen = [false; 8];
        for i in 0..256 {
            let name = format!("Service{i}");
            let a = map.route(&name);
            let b = map.route(&name);
            assert_eq!(a, b);
            seen[a.shard as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "256 names should hit all 8 shards");
    }

    #[test]
    fn removing_a_node_only_remaps_its_own_shards() {
        let five = ShardMap::build(endpoints(5), 16, 3, 0);
        // Drop node 4 by rebuilding with the same labels minus one.
        let four = ShardMap::build(endpoints(4), 16, 3, 1);
        let mut moved = 0;
        for s in 0..16 {
            let before = &five.shard(s).members;
            let after = &four.shard(s).members;
            if before.contains(&4) {
                // Its replacement set must keep the surviving members.
                for m in before.iter().filter(|&&m| m != 4) {
                    assert!(after.contains(m), "shard {s} lost survivor {m}");
                }
                moved += 1;
            } else {
                assert_eq!(before, after, "shard {s} moved without cause");
            }
        }
        assert!(moved > 0, "node 4 should have owned something");
    }

    #[test]
    fn view_bump_changes_primary_and_epoch() {
        let map = ShardMap::build(endpoints(3), 4, 3, 7);
        let info = map.shard(1);
        let old_primary = info.primary();
        let bumped = map.with_view(1, info.view + 1);
        assert_eq!(bumped.epoch(), 8);
        assert_ne!(bumped.shard(1).primary(), old_primary);
        assert_eq!(bumped.shard(0), map.shard(0));
    }

    #[test]
    fn xml_round_trip() {
        let map = ShardMap::build(endpoints(3), 4, 2, 42).with_view(2, 1);
        let parsed = ShardMap::from_element(&map.to_element()).unwrap();
        assert_eq!(parsed, map);
    }

    #[test]
    fn failover_order_leads_with_primary() {
        let map = ShardMap::build(endpoints(3), 4, 3, 0);
        let info = map.shard(0);
        let order = info.failover_order();
        assert_eq!(order[0], info.primary());
        assert_eq!(order.len(), 3);
    }
}

//! VR-lite primary/backup replication as a pure transition function.
//!
//! One [`ReplicaMachine`] per group member, in the exact mould of the
//! viewstamped-replication simulator the roadmap points at: a view
//! number names the primary (`view % n`), the primary appends client
//! ops to its log and streams `Prepare`s, backups acknowledge with
//! `PrepareOk`, and the primary commits a slot once a majority of the
//! group (itself plus `f` backups, `f = (n-1)/2`) holds it. When
//! backups suspect the primary they start a view change
//! (`StartViewChange` → quorum → `DoViewChange` to the new primary →
//! `StartView`), and the new primary adopts the *best* log offered —
//! the log catch-up that makes a committed registration survive the
//! crash. Skipping that catch-up is exactly the seeded mutation
//! ([`SkipLogCatchup`]) `wsp-check` condemns.
//!
//! The machine is pure: no clocks, no sockets, no randomness. Time
//! enters as [`ReplEvent::PrimaryTimeout`] (the shell's watchdog) and
//! I/O leaves as [`ReplEffect`]s the shell executes. That is what lets
//! `wsp-check` explore every interleaving of a bounded configuration
//! via [`GroupMachine`], and lets the runtime shell in [`crate::cluster`]
//! and the E16 simulation drive the *same* transitions.

use std::fmt::Debug;
use std::hash::Hash;
use wsp_simnet::Machine;

pub type ReplicaId = u8;

/// Where a replica is in the view-change protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    Normal,
    ViewChange,
}

/// Protocol messages between group members.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ReplMsg<Op> {
    Prepare {
        view: u32,
        op_num: u32,
        op: Op,
        commit_num: u32,
    },
    PrepareOk {
        view: u32,
        op_num: u32,
        from: ReplicaId,
    },
    Commit {
        view: u32,
        commit_num: u32,
    },
    StartViewChange {
        view: u32,
        from: ReplicaId,
    },
    DoViewChange {
        view: u32,
        log: Vec<Op>,
        last_normal: u32,
        commit_num: u32,
        from: ReplicaId,
    },
    StartView {
        view: u32,
        log: Vec<Op>,
        commit_num: u32,
    },
    /// A backup noticed a log gap (a `Prepare` beyond its next slot):
    /// ask the view's primary for a full state transfer (VR §5.2). The
    /// primary answers with `StartView`, the same catch-up message an
    /// election ends with.
    NeedState {
        view: u32,
        from: ReplicaId,
    },
}

/// One member's complete protocol state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReplicaState<Op> {
    pub id: ReplicaId,
    pub status: Status,
    pub view: u32,
    /// The last view in which this replica was `Normal` — the
    /// tiebreaker that picks the freshest log during view change.
    pub last_normal: u32,
    pub log: Vec<Op>,
    /// How many leading log slots are committed (and applied).
    pub commit_num: u32,
    /// Primary-side `PrepareOk` tally: `(op_num, from)`, sorted.
    pub acks: Vec<(u32, ReplicaId)>,
    /// `StartViewChange` voters for `view` (self included), sorted.
    pub svc_votes: Vec<ReplicaId>,
    /// `DoViewChange` records collected by a would-be primary:
    /// `(from, last_normal, commit_num, log)`, sorted by sender.
    pub dvc: Vec<(ReplicaId, u32, u32, Vec<Op>)>,
}

/// Events the shell can feed a replica.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ReplEvent<Op> {
    /// A client op arriving at this replica.
    Client(Op),
    /// A protocol message from a peer.
    Recv { from: ReplicaId, msg: ReplMsg<Op> },
    /// The shell's watchdog suspects the current primary.
    PrimaryTimeout,
}

/// Effects the shell executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplEffect<Op> {
    Send {
        to: ReplicaId,
        msg: ReplMsg<Op>,
    },
    /// Apply committed slot `op_num` (1-based) to the local store.
    Apply {
        op_num: u32,
        op: Op,
    },
    /// Primary: the op at `op_num` is durable; answer the client.
    ClientAck {
        op_num: u32,
    },
    /// Not the primary: point the client at the view's primary.
    Redirect {
        view: u32,
        primary: ReplicaId,
    },
    BecamePrimary {
        view: u32,
    },
    AdoptedView {
        view: u32,
    },
}

/// The pure per-replica machine. `n` is the group size; `id` this
/// member's index within it.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaMachine {
    pub n: u8,
    pub id: ReplicaId,
}

impl ReplicaMachine {
    pub fn primary_of(&self, view: u32) -> ReplicaId {
        (view % self.n as u32) as ReplicaId
    }

    /// Majority including self: `f + 1`.
    pub fn quorum(&self) -> usize {
        self.n as usize / 2 + 1
    }

    fn others(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        (0..self.n).filter(move |&r| r != self.id)
    }

    fn broadcast<Op: Clone>(&self, effects: &mut Vec<ReplEffect<Op>>, msg: &ReplMsg<Op>) {
        for to in self.others() {
            effects.push(ReplEffect::Send {
                to,
                msg: msg.clone(),
            });
        }
    }

    /// Advance `commit_num` to `target`, emitting `Apply` per new slot.
    fn apply_up_to<Op: Clone>(
        state: &mut ReplicaState<Op>,
        target: u32,
        effects: &mut Vec<ReplEffect<Op>>,
    ) {
        let target = target.min(state.log.len() as u32);
        while state.commit_num < target {
            state.commit_num += 1;
            effects.push(ReplEffect::Apply {
                op_num: state.commit_num,
                op: state.log[state.commit_num as usize - 1].clone(),
            });
        }
    }

    /// Start (or join) a view change towards `view`.
    fn enter_view_change<Op: Clone + Eq>(
        &self,
        state: &mut ReplicaState<Op>,
        view: u32,
        also_from: Option<ReplicaId>,
        effects: &mut Vec<ReplEffect<Op>>,
    ) {
        state.status = Status::ViewChange;
        state.view = view;
        state.acks.clear();
        state.dvc.clear();
        state.svc_votes = vec![self.id];
        if let Some(from) = also_from {
            if !state.svc_votes.contains(&from) {
                state.svc_votes.push(from);
            }
        }
        state.svc_votes.sort_unstable();
        self.broadcast(
            effects,
            &ReplMsg::StartViewChange {
                view,
                from: self.id,
            },
        );
        self.maybe_do_view_change(state, effects);
    }

    /// On reaching the `StartViewChange` quorum, offer our log to the
    /// new primary (or, if that is us, collect our own offer).
    fn maybe_do_view_change<Op: Clone + Eq>(
        &self,
        state: &mut ReplicaState<Op>,
        effects: &mut Vec<ReplEffect<Op>>,
    ) {
        if state.status != Status::ViewChange || state.svc_votes.len() < self.quorum() {
            return;
        }
        // Only offer once per view change: the dvc/send happens exactly
        // when the quorum is first reached (votes only grow).
        if state.svc_votes.len() > self.quorum() {
            return;
        }
        let offer = (
            self.id,
            state.last_normal,
            state.commit_num,
            state.log.clone(),
        );
        let new_primary = self.primary_of(state.view);
        if new_primary == self.id {
            Self::record_dvc(state, offer);
            self.maybe_start_view(state, effects);
        } else {
            effects.push(ReplEffect::Send {
                to: new_primary,
                msg: ReplMsg::DoViewChange {
                    view: state.view,
                    log: offer.3,
                    last_normal: offer.1,
                    commit_num: offer.2,
                    from: self.id,
                },
            });
        }
    }

    fn record_dvc<Op: Eq>(state: &mut ReplicaState<Op>, offer: (ReplicaId, u32, u32, Vec<Op>)) {
        if !state.dvc.iter().any(|(from, ..)| *from == offer.0) {
            state.dvc.push(offer);
            state.dvc.sort_by_key(|(from, ..)| *from);
        }
    }

    /// With a `DoViewChange` quorum, adopt the best offered log and
    /// start the new view.
    fn maybe_start_view<Op: Clone + Eq>(
        &self,
        state: &mut ReplicaState<Op>,
        effects: &mut Vec<ReplEffect<Op>>,
    ) {
        if state.status != Status::ViewChange || state.dvc.len() < self.quorum() {
            return;
        }
        // The freshest log wins: highest last-normal view, longest log
        // as tiebreaker — any log containing a committed op is in a
        // majority, and a DoViewChange quorum intersects it.
        let (_, _, _, best_log) = state
            .dvc
            .iter()
            .max_by_key(|(from, last_normal, _, log)| (*last_normal, log.len(), *from))
            .expect("quorum is non-empty")
            .clone();
        let max_commit = state.dvc.iter().map(|(_, _, c, _)| *c).max().unwrap_or(0);
        state.log = best_log;
        state.status = Status::Normal;
        state.last_normal = state.view;
        state.dvc.clear();
        state.svc_votes.clear();
        state.acks.clear();
        effects.push(ReplEffect::BecamePrimary { view: state.view });
        Self::apply_up_to(state, max_commit, effects);
        self.broadcast(
            effects,
            &ReplMsg::StartView {
                view: state.view,
                log: state.log.clone(),
                commit_num: state.commit_num,
            },
        );
    }

    /// Primary-side: count `PrepareOk`s and advance the commit point.
    fn advance_commits<Op: Clone + Eq>(
        &self,
        state: &mut ReplicaState<Op>,
        effects: &mut Vec<ReplEffect<Op>>,
    ) {
        let mut advanced = false;
        while state.commit_num < state.log.len() as u32 {
            let slot = state.commit_num + 1;
            let backers = state.acks.iter().filter(|(s, _)| *s == slot).count();
            // Self plus `backers` distinct backups must reach quorum.
            if backers + 1 < self.quorum() {
                break;
            }
            Self::apply_up_to(state, slot, effects);
            effects.push(ReplEffect::ClientAck { op_num: slot });
            advanced = true;
        }
        if advanced {
            self.broadcast(
                effects,
                &ReplMsg::Commit {
                    view: state.view,
                    commit_num: state.commit_num,
                },
            );
        }
    }
}

impl Machine for ReplicaMachine {
    type State = ReplicaState<u64>;
    type Event = ReplEvent<u64>;
    type Effect = ReplEffect<u64>;

    fn initial(&self) -> ReplicaState<u64> {
        initial_replica(self.id)
    }

    fn step(
        &self,
        state: &ReplicaState<u64>,
        event: &ReplEvent<u64>,
    ) -> (ReplicaState<u64>, Vec<ReplEffect<u64>>) {
        step_replica(self, state, event)
    }
}

/// Initial state for member `id` (generic in `Op`; `Machine::initial`
/// instantiates it at `u64`, the shell at [`crate::cluster::ClusterOp`]).
pub fn initial_replica<Op>(id: ReplicaId) -> ReplicaState<Op> {
    ReplicaState {
        id,
        status: Status::Normal,
        view: 0,
        last_normal: 0,
        log: Vec::new(),
        commit_num: 0,
        acks: Vec::new(),
        svc_votes: Vec::new(),
        dvc: Vec::new(),
    }
}

/// The transition function itself, generic over the op payload so the
/// checker (compact `u64` ops) and the runtime shell (real registry
/// ops) drive identical logic.
pub fn step_replica<Op: Clone + Eq + Hash + Debug>(
    m: &ReplicaMachine,
    state: &ReplicaState<Op>,
    event: &ReplEvent<Op>,
) -> (ReplicaState<Op>, Vec<ReplEffect<Op>>) {
    let mut next = state.clone();
    let mut effects = Vec::new();
    match event {
        ReplEvent::Client(op) => {
            if next.status == Status::Normal && m.primary_of(next.view) == m.id {
                next.log.push(op.clone());
                let op_num = next.log.len() as u32;
                if m.n == 1 {
                    // Degenerate single-node group: commit immediately.
                    ReplicaMachine::apply_up_to(&mut next, op_num, &mut effects);
                    effects.push(ReplEffect::ClientAck { op_num });
                } else {
                    m.broadcast(
                        &mut effects,
                        &ReplMsg::Prepare {
                            view: next.view,
                            op_num,
                            op: op.clone(),
                            commit_num: next.commit_num,
                        },
                    );
                }
            } else {
                effects.push(ReplEffect::Redirect {
                    view: next.view,
                    primary: m.primary_of(next.view),
                });
            }
        }
        ReplEvent::PrimaryTimeout => {
            // Can't suspect ourselves while we are the Normal primary.
            let acting_primary = next.status == Status::Normal && m.primary_of(next.view) == m.id;
            if !acting_primary {
                let view = next.view + 1;
                m.enter_view_change(&mut next, view, None, &mut effects);
            }
        }
        ReplEvent::Recv { from, msg } => match msg {
            ReplMsg::Prepare {
                view,
                op_num,
                op,
                commit_num,
            } => {
                let is_backup = next.status == Status::Normal
                    && *view == next.view
                    && m.primary_of(next.view) != m.id;
                if is_backup {
                    let expected = next.log.len() as u32 + 1;
                    if *op_num == expected {
                        next.log.push(op.clone());
                    }
                    if *op_num <= next.log.len() as u32 {
                        // Appended now or already held (retransmit):
                        // acknowledge idempotently.
                        effects.push(ReplEffect::Send {
                            to: *from,
                            msg: ReplMsg::PrepareOk {
                                view: *view,
                                op_num: *op_num,
                                from: m.id,
                            },
                        });
                    } else {
                        // A gap: this backup slept through earlier
                        // Prepares (down, messages dropped) and can
                        // never ack again without the missing slots —
                        // with one other member down that silence
                        // starves the commit quorum for good. Ask the
                        // primary for a state transfer.
                        effects.push(ReplEffect::Send {
                            to: *from,
                            msg: ReplMsg::NeedState {
                                view: *view,
                                from: m.id,
                            },
                        });
                    }
                    ReplicaMachine::apply_up_to(&mut next, *commit_num, &mut effects);
                }
            }
            ReplMsg::PrepareOk { view, op_num, from } => {
                let is_primary = next.status == Status::Normal
                    && *view == next.view
                    && m.primary_of(next.view) == m.id;
                if is_primary {
                    let ack = (*op_num, *from);
                    if !next.acks.contains(&ack) {
                        next.acks.push(ack);
                        next.acks.sort_unstable();
                    }
                    let before = next.commit_num;
                    m.advance_commits(&mut next, &mut effects);
                    if next.commit_num == before && *op_num <= next.commit_num {
                        // Stale ack for an already-committed slot: the
                        // backup's Prepare outran the Commit broadcast
                        // (reordering). Refresh its commit point so a
                        // lone straggler still converges.
                        effects.push(ReplEffect::Send {
                            to: *from,
                            msg: ReplMsg::Commit {
                                view: next.view,
                                commit_num: next.commit_num,
                            },
                        });
                    }
                }
            }
            ReplMsg::Commit { view, commit_num } => {
                if next.status == Status::Normal && *view == next.view {
                    ReplicaMachine::apply_up_to(&mut next, *commit_num, &mut effects);
                }
            }
            ReplMsg::StartViewChange { view, from } => {
                if *view > next.view {
                    m.enter_view_change(&mut next, *view, Some(*from), &mut effects);
                } else if *view == next.view && next.status == Status::ViewChange {
                    let before = next.svc_votes.len();
                    if !next.svc_votes.contains(from) {
                        next.svc_votes.push(*from);
                        next.svc_votes.sort_unstable();
                    }
                    if before < m.quorum() {
                        m.maybe_do_view_change(&mut next, &mut effects);
                    }
                }
            }
            ReplMsg::DoViewChange {
                view,
                log,
                last_normal,
                commit_num,
                from,
            } => {
                if m.primary_of(*view) == m.id {
                    if *view > next.view {
                        // Others are ahead of us: join the view change
                        // we are supposed to lead.
                        m.enter_view_change(&mut next, *view, None, &mut effects);
                    }
                    if *view == next.view && next.status == Status::ViewChange {
                        ReplicaMachine::record_dvc(
                            &mut next,
                            (*from, *last_normal, *commit_num, log.clone()),
                        );
                        m.maybe_start_view(&mut next, &mut effects);
                    }
                }
            }
            ReplMsg::StartView {
                view,
                log,
                commit_num,
            } => {
                // Same-view Normal backups adopt too: that is the
                // state-transfer reply. The primary's log for its own
                // view is authoritative (backups hold only what it
                // prepared), so adoption can only extend, never lose.
                let adopt = *view > next.view
                    || (*view == next.view
                        && (next.status == Status::ViewChange || m.primary_of(next.view) != m.id));
                if adopt {
                    next.status = Status::Normal;
                    next.view = *view;
                    next.last_normal = *view;
                    next.log = log.clone();
                    next.acks.clear();
                    next.svc_votes.clear();
                    next.dvc.clear();
                    effects.push(ReplEffect::AdoptedView { view: *view });
                    ReplicaMachine::apply_up_to(&mut next, *commit_num, &mut effects);
                    // Per VR: acknowledge every op the adopted log holds
                    // beyond the commit point. The new primary cleared
                    // its ack table when the view started, so ops
                    // prepared under the old view would otherwise never
                    // gather a quorum again and the commit point would
                    // stall at the gap forever.
                    for op_num in next.commit_num + 1..=next.log.len() as u32 {
                        effects.push(ReplEffect::Send {
                            to: *from,
                            msg: ReplMsg::PrepareOk {
                                view: *view,
                                op_num,
                                from: m.id,
                            },
                        });
                    }
                }
            }
            ReplMsg::NeedState { view, from } => {
                // State-transfer request from a gapped backup: answer
                // with the same full-log StartView an election ends
                // with. Only the Normal primary of that view may serve
                // it — anyone else's log is not authoritative.
                let is_primary = next.status == Status::Normal
                    && *view == next.view
                    && m.primary_of(next.view) == m.id;
                if is_primary {
                    effects.push(ReplEffect::Send {
                        to: *from,
                        msg: ReplMsg::StartView {
                            view: next.view,
                            log: next.log.clone(),
                            commit_num: next.commit_num,
                        },
                    });
                }
            }
        },
    }
    (next, effects)
}

// ---------------------------------------------------------------------------
// The group: replicas × lossy network, explored by wsp-check
// ---------------------------------------------------------------------------

/// The whole replication group plus its in-flight network, as one
/// machine: this is the configuration `wsp-check` exhausts. Ghost
/// state (the globally committed op sequence, and which replica claimed
/// each view) makes the safety invariants checkable per state/edge.
#[derive(Debug, Clone)]
pub struct GroupMachine<R> {
    pub n: u8,
    /// One (possibly sabotaged) machine per member.
    pub members: Vec<R>,
    /// Fixed op sequence submitted during exploration.
    pub ops: Vec<u64>,
    pub max_crashes: u8,
    pub max_view: u32,
}

impl GroupMachine<ReplicaMachine> {
    /// The genuine bounded configuration: 3 replicas, the given ops,
    /// one crash, one full view change.
    pub fn genuine(n: u8, ops: Vec<u64>) -> Self {
        GroupMachine {
            n,
            members: (0..n).map(|id| ReplicaMachine { n, id }).collect(),
            ops,
            max_crashes: 1,
            max_view: 1,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupState<Op> {
    pub replicas: Vec<ReplicaState<Op>>,
    /// In-flight messages `(dst, src, msg)`, kept sorted so states
    /// that differ only in arrival bookkeeping hash identically.
    pub net: Vec<(ReplicaId, ReplicaId, ReplMsg<Op>)>,
    pub crashed: Vec<bool>,
    /// Ghost: the committed op sequence, in commit order.
    pub committed: Vec<Op>,
    /// Ghost: which replica claimed each view `(view, replica)`.
    pub primaries: Vec<(u32, ReplicaId)>,
    pub ops_submitted: u8,
    pub crashes: u8,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupEvent {
    /// Submit the next scripted op to replica `to`.
    Submit {
        to: ReplicaId,
    },
    /// Deliver in-flight message `net[index]`.
    Deliver {
        index: u8,
    },
    Crash {
        replica: ReplicaId,
    },
    /// Replica `replica`'s watchdog suspects its primary.
    Timeout {
        replica: ReplicaId,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupEffect {
    At {
        replica: ReplicaId,
        effect: ReplEffect<u64>,
    },
    /// A committed slot disagreed with (or skipped past) the ghost
    /// committed sequence — the no-lost-commit invariant trips on this.
    CommitDiverged { replica: ReplicaId, op_num: u32 },
    /// Two distinct replicas claimed the same view.
    DuplicatePrimary { view: u32 },
}

impl<R> GroupMachine<R>
where
    R: Machine<State = ReplicaState<u64>, Event = ReplEvent<u64>, Effect = ReplEffect<u64>>,
{
    fn dispatch(
        &self,
        state: &mut GroupState<u64>,
        replica: ReplicaId,
        event: &ReplEvent<u64>,
        out: &mut Vec<GroupEffect>,
    ) {
        let (next, effects) =
            self.members[replica as usize].step(&state.replicas[replica as usize], event);
        state.replicas[replica as usize] = next;
        for effect in effects {
            match &effect {
                // Messages to crashed members are pruned eagerly: they
                // could never be delivered anyway, and keeping them out
                // of `net` keeps the state space tight.
                ReplEffect::Send { to, msg } if !state.crashed[*to as usize] => {
                    state.net.push((*to, replica, msg.clone()));
                }
                ReplEffect::Apply { op_num, op } => {
                    let slot = *op_num as usize;
                    if slot == state.committed.len() + 1 {
                        state.committed.push(*op);
                    } else if slot <= state.committed.len() {
                        if state.committed[slot - 1] != *op {
                            out.push(GroupEffect::CommitDiverged {
                                replica,
                                op_num: *op_num,
                            });
                        }
                    } else {
                        out.push(GroupEffect::CommitDiverged {
                            replica,
                            op_num: *op_num,
                        });
                    }
                }
                ReplEffect::BecamePrimary { view } => {
                    match state.primaries.iter().find(|(v, _)| v == view) {
                        Some((_, claimed)) if *claimed != replica => {
                            out.push(GroupEffect::DuplicatePrimary { view: *view });
                        }
                        Some(_) => {}
                        None => state.primaries.push((*view, replica)),
                    }
                }
                _ => {}
            }
            out.push(GroupEffect::At { replica, effect });
        }
    }

    /// Events enabled in `state` — the alphabet `wsp-check` explores.
    pub fn enabled(&self, state: &GroupState<u64>) -> Vec<GroupEvent> {
        let mut events = Vec::new();
        for index in 0..state.net.len().min(u8::MAX as usize) {
            events.push(GroupEvent::Deliver { index: index as u8 });
        }
        for r in 0..self.n {
            if state.crashed[r as usize] {
                continue;
            }
            if (state.ops_submitted as usize) < self.ops.len() {
                events.push(GroupEvent::Submit { to: r });
            }
            if state.crashes < self.max_crashes {
                events.push(GroupEvent::Crash { replica: r });
            }
            // The watchdog only fires against a genuinely dead primary
            // (the shell's heartbeat machinery vouches for live ones),
            // and the view bound keeps the graph finite.
            let rs = &state.replicas[r as usize];
            let primary_dead = state.crashed[(rs.view % self.n as u32) as usize];
            if primary_dead && rs.view < self.max_view {
                events.push(GroupEvent::Timeout { replica: r });
            }
        }
        events
    }
}

impl<R> Machine for GroupMachine<R>
where
    R: Machine<State = ReplicaState<u64>, Event = ReplEvent<u64>, Effect = ReplEffect<u64>>,
{
    type State = GroupState<u64>;
    type Event = GroupEvent;
    type Effect = GroupEffect;

    fn initial(&self) -> GroupState<u64> {
        GroupState {
            replicas: (0..self.n).map(initial_replica).collect(),
            net: Vec::new(),
            crashed: vec![false; self.n as usize],
            committed: Vec::new(),
            primaries: vec![(0, 0)],
            ops_submitted: 0,
            crashes: 0,
        }
    }

    fn step(
        &self,
        state: &GroupState<u64>,
        event: &GroupEvent,
    ) -> (GroupState<u64>, Vec<GroupEffect>) {
        let mut next = state.clone();
        let mut out = Vec::new();
        match event {
            GroupEvent::Submit { to } => {
                if !next.crashed[*to as usize] && (next.ops_submitted as usize) < self.ops.len() {
                    let op = self.ops[next.ops_submitted as usize];
                    next.ops_submitted += 1;
                    self.dispatch(&mut next, *to, &ReplEvent::Client(op), &mut out);
                }
            }
            GroupEvent::Deliver { index } => {
                let index = *index as usize;
                if index < next.net.len() {
                    let (dst, src, msg) = next.net.remove(index);
                    if !next.crashed[dst as usize] {
                        self.dispatch(
                            &mut next,
                            dst,
                            &ReplEvent::Recv { from: src, msg },
                            &mut out,
                        );
                    }
                }
            }
            GroupEvent::Crash { replica } => {
                if !next.crashed[*replica as usize] && next.crashes < self.max_crashes {
                    next.crashed[*replica as usize] = true;
                    next.crashes += 1;
                    next.net.retain(|(dst, _, _)| dst != replica);
                }
            }
            GroupEvent::Timeout { replica } => {
                if !next.crashed[*replica as usize] {
                    self.dispatch(&mut next, *replica, &ReplEvent::PrimaryTimeout, &mut out);
                }
            }
        }
        next.net
            .sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        (next, out)
    }
}

// ---------------------------------------------------------------------------
// The seeded mutation: a new primary that skips log catch-up
// ---------------------------------------------------------------------------

/// Sabotage: on winning a view change, keep our *own* log instead of
/// adopting the best offered one — i.e. skip the catch-up that carries
/// committed-but-not-locally-held ops across the view change. The
/// no-lost-commit invariant must condemn this with a trace.
#[derive(Debug, Clone, Copy)]
pub struct SkipLogCatchup(pub ReplicaMachine);

impl Machine for SkipLogCatchup {
    type State = ReplicaState<u64>;
    type Event = ReplEvent<u64>;
    type Effect = ReplEffect<u64>;

    fn initial(&self) -> ReplicaState<u64> {
        self.0.initial()
    }

    fn step(
        &self,
        state: &ReplicaState<u64>,
        event: &ReplEvent<u64>,
    ) -> (ReplicaState<u64>, Vec<ReplEffect<u64>>) {
        let (mut next, mut effects) = self.0.step(state, event);
        let won = effects
            .iter()
            .any(|e| matches!(e, ReplEffect::BecamePrimary { .. }));
        if won {
            // Pretend our own log was the best offer: drop the adopted
            // log and re-announce the view with ours.
            next.log = state.log.clone();
            next.commit_num = state.commit_num;
            for effect in &mut effects {
                if let ReplEffect::Send {
                    msg:
                        ReplMsg::StartView {
                            log, commit_num, ..
                        },
                    ..
                } = effect
                {
                    *log = next.log.clone();
                    *commit_num = next.commit_num;
                }
            }
            // The catch-up Applies never happen either.
            effects.retain(|e| !matches!(e, ReplEffect::Apply { .. }));
        }
        (next, effects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_simnet::Machine;

    fn group() -> GroupMachine<ReplicaMachine> {
        GroupMachine::genuine(3, vec![101, 202])
    }

    /// Drive the group synchronously: deliver every message until the
    /// network drains (depth-first on index 0 is fine for tests).
    fn pump(g: &GroupMachine<ReplicaMachine>, state: &mut GroupState<u64>) -> Vec<GroupEffect> {
        let mut all = Vec::new();
        loop {
            if state.net.is_empty() {
                return all;
            }
            let (next, fx) = g.step(state, &GroupEvent::Deliver { index: 0 });
            *state = next;
            all.extend(fx);
        }
    }

    fn acked(effects: &[GroupEffect]) -> bool {
        effects.iter().any(|e| {
            matches!(
                e,
                GroupEffect::At {
                    effect: ReplEffect::ClientAck { .. },
                    ..
                }
            )
        })
    }

    #[test]
    fn happy_path_commits_on_all_three() {
        let g = group();
        let mut s = g.initial();
        let (next, _) = g.step(&s, &GroupEvent::Submit { to: 0 });
        s = next;
        let fx = pump(&g, &mut s);
        assert!(acked(&fx), "primary should ack after quorum");
        assert_eq!(s.committed, vec![101]);
        for r in &s.replicas {
            assert_eq!(r.log, vec![101]);
            assert_eq!(r.commit_num, 1, "replica {} commit", r.id);
        }
    }

    #[test]
    fn committed_op_survives_primary_crash_and_view_change() {
        let g = group();
        let mut s = g.initial();
        let (next, _) = g.step(&s, &GroupEvent::Submit { to: 0 });
        s = next;
        let fx = pump(&g, &mut s);
        assert!(acked(&fx));
        // Kill the primary, let a backup's watchdog fire.
        let (next, _) = g.step(&s, &GroupEvent::Crash { replica: 0 });
        s = next;
        let (next, _) = g.step(&s, &GroupEvent::Timeout { replica: 1 });
        s = next;
        pump(&g, &mut s);
        let new_primary = &s.replicas[1];
        assert_eq!(new_primary.status, Status::Normal);
        assert_eq!(new_primary.view, 1);
        assert_eq!(new_primary.log, vec![101], "committed op survived");
        // The new primary accepts new ops.
        let (next, _) = g.step(&s, &GroupEvent::Submit { to: 1 });
        s = next;
        let fx = pump(&g, &mut s);
        assert!(acked(&fx), "new primary commits with the one live backup");
        assert_eq!(s.committed, vec![101, 202]);
    }

    #[test]
    fn non_primary_redirects_clients() {
        let g = group();
        let s = g.initial();
        let (_, fx) = g.step(&s, &GroupEvent::Submit { to: 2 });
        assert!(fx.iter().any(|e| matches!(
            e,
            GroupEffect::At {
                effect: ReplEffect::Redirect { primary: 0, .. },
                ..
            }
        )));
    }

    #[test]
    fn skip_log_catchup_mutant_loses_a_committed_op() {
        // Commit op 101 with only backup 2 holding it (the Prepare to
        // replica 1 stays in flight), crash the primary, and let the
        // *mutant* replica 1 — whose log is empty — win view 1 while
        // refusing to adopt replica 2's fuller log.
        let n = 3;
        let members: Vec<SkipLogCatchup> = (0..n)
            .map(|id| SkipLogCatchup(ReplicaMachine { n, id }))
            .collect();
        let g = GroupMachine {
            n,
            members,
            ops: vec![101, 202],
            max_crashes: 1,
            max_view: 1,
        };
        let mut s = g.initial();
        let (next, _) = g.step(&s, &GroupEvent::Submit { to: 0 });
        s = next;
        // Deliver everything except messages addressed to replica 1:
        // replica 2 appends + acks, the primary commits op 101.
        while let Some(idx) = s.net.iter().position(|(dst, _, _)| *dst != 1) {
            let (next, _) = g.step(&s, &GroupEvent::Deliver { index: idx as u8 });
            s = next;
        }
        assert_eq!(s.committed, vec![101]);
        assert_eq!(s.replicas[1].log.len(), 0, "replica 1 never saw op 101");
        let (next, _) = g.step(&s, &GroupEvent::Crash { replica: 0 });
        s = next;
        // Drop the stale in-flight Prepare to replica 1 from view 0 by
        // delivering it *after* the view change starts (it is ignored
        // on view mismatch). Watchdog fires at replica 1.
        let (next, _) = g.step(&s, &GroupEvent::Timeout { replica: 1 });
        s = next;
        let mut diverged = false;
        while let Some(idx) = s
            .net
            .iter()
            .position(|(_, _, msg)| !matches!(msg, ReplMsg::Prepare { .. }))
        {
            let (next, fx) = g.step(&s, &GroupEvent::Deliver { index: idx as u8 });
            s = next;
            diverged |= fx
                .iter()
                .any(|e| matches!(e, GroupEffect::CommitDiverged { .. }));
        }
        // Replica 1 is now primary of view 1 with an empty log: the
        // committed registration is gone. Submitting the next op makes
        // the divergence observable on the commit edge.
        let winner = &s.replicas[1];
        assert_eq!(winner.status, Status::Normal);
        assert_eq!(winner.view, 1);
        assert_eq!(winner.log.len(), 0, "mutant kept its own empty log");
        let (next, _) = g.step(&s, &GroupEvent::Submit { to: 1 });
        s = next;
        while let Some(idx) = s
            .net
            .iter()
            .position(|(_, _, msg)| !matches!(msg, ReplMsg::Prepare { view: 0, .. }))
        {
            let (next, fx) = g.step(&s, &GroupEvent::Deliver { index: idx as u8 });
            s = next;
            diverged |= fx
                .iter()
                .any(|e| matches!(e, GroupEffect::CommitDiverged { .. }));
        }
        assert!(diverged, "op 202 committed into slot 1 over ghost op 101");
    }
}

//! The runtime shell: N in-process registry nodes, one replication
//! group per shard, a synchronous message pump executing the pure
//! [`crate::replication`] machine's effects against real
//! `wsp_uddi::Registry` stores.
//!
//! The shell owns everything the pure machine refuses to: clocks (a
//! logical clock in virtual time drives the lease sweeps), sockets
//! (per-node [`SoapTransport`]s and an HTTP handler), and crash faults
//! (a node marked down drops every message addressed to it, exactly
//! like the checker's `Crash` event prunes the net). Because the same
//! `step_replica` transition runs here and under `wsp-check`'s
//! exhaustive exploration, the failover behaviour the checker proves is
//! the failover behaviour the cluster executes.

use crate::lease::{LeaseTable, LeaseTrace};
use crate::replication::{
    initial_replica, step_replica, ReplEffect, ReplEvent, ReplMsg, ReplicaId, ReplicaMachine,
    ReplicaState, Status,
};
use crate::shard::{ShardMap, REGISTRY_NS};
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wsp_http::{HttpHandler, Request, Response};
use wsp_simnet::{Dur, Time};
use wsp_soap::{Envelope, Fault};
use wsp_uddi::{
    BusinessEntity, BusinessService, Registry, SoapTransport, TModel, UddiApi, UDDI_NS,
};
use wsp_xml::{Element, QName};

/// The replicated op, generic payload of [`step_replica`]. Service
/// records travel as their canonical XML so the op stays `Eq + Hash`
/// (the checker's requirement) while carrying the full record,
/// lease TTL attribute included.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ClusterOp {
    Save {
        /// `businessService` element, key already minted.
        service_xml: String,
        /// Virtual-time stamp (µs) the shard primary granted the lease
        /// at; keeps expiry deterministic across replicas and runs.
        granted_at_us: u64,
    },
    Delete {
        key: String,
    },
}

/// Shape of the discovery plane.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub nodes: usize,
    pub shard_count: u32,
    pub replication: usize,
    /// TTL applied to publishes that carry no `leaseTtlMs` of their
    /// own. `None` = permanent registrations unless the publisher asks.
    pub default_ttl: Option<Dur>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 3,
            shard_count: 4,
            replication: 3,
            default_ttl: None,
        }
    }
}

/// One registry node: the store plus its liveness flag.
struct NodeSlot {
    registry: Registry,
    api: UddiApi,
    up: AtomicBool,
}

/// One shard's replication group runtime.
struct Group {
    shard: u32,
    /// Node ids, preference order (mirrors the shard map).
    members: Vec<usize>,
    machines: Vec<ReplicaMachine>,
    states: Vec<ReplicaState<ClusterOp>>,
    leases: LeaseTable,
    /// How many log slots have had their group-level (once-per-op)
    /// side effects executed: lease grants/cancels.
    group_applied: u32,
}

/// What one synchronous pump of the group produced.
#[derive(Default)]
struct PumpOut {
    acks: Vec<u32>,
    redirected: bool,
    new_view: Option<u32>,
}

struct Inner {
    cfg: ClusterConfig,
    nodes: Vec<NodeSlot>,
    map: RwLock<Arc<ShardMap>>,
    groups: Vec<Mutex<Group>>,
    /// Logical clock, µs of virtual time. Drives lease grant stamps.
    clock_us: AtomicU64,
    /// Per-shard key mint for deterministic service keys.
    key_seqs: Vec<AtomicU64>,
    /// Mint for globally replicated records (tModels, businesses).
    global_seq: AtomicU64,
    /// Per-shard *data* version: bumped once per committed Save/Delete
    /// and per lease expiry sweep that dropped something. Orthogonal to
    /// the map epoch (which versions *placement*): caching consumers
    /// (the mediation gateway) poll these to learn that a shard's
    /// records changed without waiting out their TTLs, while epoch
    /// redirects keep handling placement changes.
    data_versions: Vec<AtomicU64>,
}

/// The replicated discovery plane: `cfg.nodes` in-process registry
/// nodes, each service name placed on a shard, each shard replicated
/// across `cfg.replication` nodes by the VR-lite machine.
#[derive(Clone)]
pub struct RegistryCluster {
    inner: Arc<Inner>,
}

impl RegistryCluster {
    pub fn new(cfg: ClusterConfig) -> RegistryCluster {
        assert!(cfg.nodes >= 1, "a cluster needs at least one node");
        let endpoints: Vec<String> = (0..cfg.nodes)
            .map(|i| format!("wsp://registry/{i}"))
            .collect();
        let map = ShardMap::build(endpoints, cfg.shard_count, cfg.replication, 0);
        let nodes: Vec<NodeSlot> = (0..cfg.nodes)
            .map(|_| {
                let registry = Registry::new();
                NodeSlot {
                    api: UddiApi::new(registry.clone()),
                    registry,
                    up: AtomicBool::new(true),
                }
            })
            .collect();
        let groups = (0..cfg.shard_count)
            .map(|s| {
                let members = map.shard(s).members.clone();
                let n = members.len() as u8;
                Mutex::new(Group {
                    shard: s,
                    machines: (0..n).map(|id| ReplicaMachine { n, id }).collect(),
                    states: (0..n).map(initial_replica).collect(),
                    members,
                    leases: LeaseTable::new(),
                    group_applied: 0,
                })
            })
            .collect();
        let key_seqs = (0..cfg.shard_count).map(|_| AtomicU64::new(0)).collect();
        let data_versions = (0..cfg.shard_count).map(|_| AtomicU64::new(0)).collect();
        RegistryCluster {
            inner: Arc::new(Inner {
                nodes,
                map: RwLock::new(Arc::new(map)),
                groups,
                clock_us: AtomicU64::new(0),
                key_seqs,
                global_seq: AtomicU64::new(0),
                data_versions,
                cfg,
            }),
        }
    }

    // -- plumbing ----------------------------------------------------------

    pub fn config(&self) -> &ClusterConfig {
        &self.inner.cfg
    }

    pub fn shard_map(&self) -> Arc<ShardMap> {
        self.inner.map.read().clone()
    }

    pub fn endpoints(&self) -> Vec<String> {
        self.shard_map().nodes().to_vec()
    }

    /// Direct handle on one node's store, for assertions and embedding.
    pub fn node_registry(&self, node: usize) -> &Registry {
        &self.inner.nodes[node].registry
    }

    pub fn is_up(&self, node: usize) -> bool {
        self.inner.nodes[node].up.load(Ordering::SeqCst)
    }

    /// Fail-stop the node: requests to it error at the transport and
    /// replication messages addressed to it are dropped.
    pub fn crash(&self, node: usize) {
        self.inner.nodes[node].up.store(false, Ordering::SeqCst);
    }

    /// Bring a crashed node back (it catches up on the next view it
    /// adopts; its store keeps whatever it held before the crash).
    pub fn restart(&self, node: usize) {
        self.inner.nodes[node].up.store(true, Ordering::SeqCst);
    }

    /// The deterministic lease trace of one shard's group.
    pub fn lease_trace(&self, shard: u32) -> Vec<LeaseTrace> {
        self.inner.groups[shard as usize]
            .lock()
            .leases
            .trace()
            .to_vec()
    }

    /// Advance the logical clock, sweeping every shard's lease wheel.
    /// Expired registrations are deleted from all replica stores —
    /// deterministically, in wheel order.
    pub fn advance_to(&self, t: Time) {
        self.inner
            .clock_us
            .fetch_max(t.as_micros(), Ordering::SeqCst);
        for group in &self.inner.groups {
            let mut g = group.lock();
            let expired = g.leases.advance_to(t);
            if !expired.is_empty() {
                self.bump_data_version(g.shard);
            }
            for key in &expired {
                for &m in &g.members {
                    self.inner.nodes[m].registry.delete_service(key);
                }
            }
        }
    }

    pub fn now(&self) -> Time {
        Time(self.inner.clock_us.load(Ordering::SeqCst))
    }

    /// The current data version of one shard. Any committed write to
    /// the shard (save, delete, lease expiry) makes this strictly
    /// larger, so `version unchanged` ⇒ `cached locate results for the
    /// shard are still exact` — the cheap revalidation handshake the
    /// mediation gateway runs instead of waiting out its TTLs.
    pub fn data_version(&self, shard: u32) -> u64 {
        self.inner.data_versions[shard as usize].load(Ordering::SeqCst)
    }

    /// All shards' data versions, indexed by shard id.
    pub fn data_versions(&self) -> Vec<u64> {
        self.inner
            .data_versions
            .iter()
            .map(|v| v.load(Ordering::SeqCst))
            .collect()
    }

    fn bump_data_version(&self, shard: u32) {
        self.inner.data_versions[shard as usize].fetch_add(1, Ordering::SeqCst);
    }

    // -- the SOAP front ----------------------------------------------------

    /// A [`SoapTransport`] landing on `node`, for `UddiClient` and the
    /// sharded client. Errors like a dead socket while the node is down.
    pub fn node_transport(&self, node: usize) -> SoapTransport {
        let cluster = self.clone();
        Arc::new(move |request: &Envelope| {
            if !cluster.is_up(node) {
                return Err(format!("connection refused: registry node {node} is down"));
            }
            Ok(cluster.process(node, request))
        })
    }

    /// An HTTP handler fronting `node`, SOAP-over-HTTP like
    /// `wsp_uddi::registry_handler` (faults ride HTTP 500).
    pub fn node_http_handler(&self, node: usize) -> HttpHandler {
        let cluster = self.clone();
        Arc::new(move |request: &Request| {
            if !cluster.is_up(node) {
                return Response::new(503, "Service Unavailable");
            }
            let Ok(envelope) = Envelope::from_xml(&request.body_str()) else {
                return Response::bad_request("body is not a SOAP envelope");
            };
            let response = cluster.process(node, &envelope);
            let is_fault = response.fault_body().is_some();
            let body = response.to_xml();
            let mut http = if is_fault {
                let mut r = Response::new(500, "Internal Server Error");
                r.body = body.into_bytes();
                r
            } else {
                Response::ok(wsp_soap::constants::CONTENT_TYPE, body)
            };
            http.headers
                .set("Content-Type", wsp_soap::constants::CONTENT_TYPE);
            http
        })
    }

    /// Process one request envelope arriving at `node`.
    pub fn process(&self, node: usize, request: &Envelope) -> Envelope {
        let Some(payload) = request.payload() else {
            return Envelope::fault(Fault::sender("UDDI request carries no body"));
        };
        let result = match payload.name().local_name() {
            "get_shardMap" => Ok(self.shard_map().to_element()),
            "get_dataVersions" => Ok(self.data_versions_element()),
            "save_service" => self
                .epoch_guard(payload)
                .and_then(|()| self.save_service(node, payload)),
            "delete_service" => self
                .epoch_guard(payload)
                .and_then(|()| self.delete_service(node, payload)),
            "save_tModel" => self.save_global_tmodels(payload),
            "save_business" => self.save_global_businesses(payload),
            // Inquiry is served from the local replica: reads tolerate
            // bounded staleness, that is the soft-state bargain.
            _ => {
                if let Err(fault) = self.epoch_guard(payload) {
                    Err(fault)
                } else {
                    return self.inner.nodes[node].api.process(request);
                }
            }
        };
        match result {
            Ok(body) => Envelope::request(body),
            Err(fault) => Envelope::fault(fault),
        }
    }

    /// `get_dataVersions` response body: the map epoch plus one
    /// `<shard id=… version=…/>` child per shard.
    fn data_versions_element(&self) -> Element {
        let mut root = Element::build(REGISTRY_NS, "dataVersions")
            .attr_str("epoch", self.shard_map().epoch().to_string())
            .finish();
        for (shard, version) in self.data_versions().into_iter().enumerate() {
            root.push_element(
                Element::build(REGISTRY_NS, "shard")
                    .attr_str("id", shard.to_string())
                    .attr_str("version", version.to_string())
                    .finish(),
            );
        }
        root
    }

    /// The versioned redirect: a request quoting a stale map epoch is
    /// refused with the fresh map in the fault detail.
    fn epoch_guard(&self, payload: &Element) -> Result<(), Fault> {
        let Some(quoted) = payload.attribute_local("mapEpoch") else {
            return Ok(());
        };
        let map = self.shard_map();
        match quoted.parse::<u64>() {
            Ok(epoch) if epoch == map.epoch() => Ok(()),
            _ => Err(
                Fault::sender(format!("wsp:staleShardMap epoch={}", map.epoch()))
                    .with_detail(map.to_element()),
            ),
        }
    }

    fn save_service(&self, node: usize, payload: &Element) -> Result<Element, Fault> {
        let mut detail = Element::new(UDDI_NS, "serviceDetail");
        for svc_elem in payload.find_all(UDDI_NS, "businessService") {
            let mut svc = BusinessService::from_element(svc_elem)
                .ok_or_else(|| Fault::sender("malformed businessService"))?;
            if svc.name.is_empty() {
                return Err(Fault::sender("businessService needs a name to shard on"));
            }
            let shard = self.shard_map().shard_of(&svc.name);
            if svc.key.is_empty() {
                svc.key = self.mint_service_key(shard);
            }
            if svc.lease_ttl_ms.is_none() {
                svc.lease_ttl_ms = self.inner.cfg.default_ttl.map(|d| d.as_micros() / 1_000);
            }
            let op = ClusterOp::Save {
                service_xml: svc.to_element().to_xml(),
                granted_at_us: self.inner.clock_us.load(Ordering::SeqCst),
            };
            self.submit(shard, node, op)?;
            detail.push_element(svc.to_element());
        }
        Ok(detail)
    }

    fn delete_service(&self, node: usize, payload: &Element) -> Result<Element, Fault> {
        let mut deleted = 0usize;
        for key_elem in payload.find_all(UDDI_NS, "serviceKey") {
            let key = key_elem.text().trim().to_owned();
            let Some(shard) = shard_of_key(&key) else {
                continue; // not a cluster-minted key: nothing to delete
            };
            if self.inner.nodes[node].registry.get_service(&key).is_none() {
                continue;
            }
            self.submit(shard, node, ClusterOp::Delete { key })?;
            deleted += 1;
        }
        Ok(Element::build(UDDI_NS, "dispositionReport")
            .attr_str("deleted", deleted.to_string())
            .finish())
    }

    /// tModels (WSDL pointers) are tiny global metadata: replicated to
    /// every live node outside the sharded log.
    fn save_global_tmodels(&self, payload: &Element) -> Result<Element, Fault> {
        let mut detail = Element::new(UDDI_NS, "tModelDetail");
        for tm_elem in payload.find_all(UDDI_NS, "tModel") {
            let mut tm =
                TModel::from_element(tm_elem).ok_or_else(|| Fault::sender("malformed tModel"))?;
            if tm.key.is_empty() {
                let seq = self.inner.global_seq.fetch_add(1, Ordering::SeqCst);
                tm.key = format!("uuid:tm-c{seq:06x}");
            }
            for slot in self.live_nodes() {
                self.inner.nodes[slot].registry.save_tmodel(tm.clone());
            }
            detail.push_element(tm.to_element());
        }
        Ok(detail)
    }

    fn save_global_businesses(&self, payload: &Element) -> Result<Element, Fault> {
        let mut detail = Element::new(UDDI_NS, "businessDetail");
        for biz_elem in payload.find_all(UDDI_NS, "businessEntity") {
            let mut biz = BusinessEntity::from_element(biz_elem)
                .ok_or_else(|| Fault::sender("malformed businessEntity"))?;
            if biz.key.is_empty() {
                let seq = self.inner.global_seq.fetch_add(1, Ordering::SeqCst);
                biz.key = format!("uuid:biz-c{seq:06x}");
            }
            for slot in self.live_nodes() {
                self.inner.nodes[slot].registry.save_business(biz.clone());
            }
            detail.push_element(biz.to_element());
        }
        Ok(detail)
    }

    fn live_nodes(&self) -> Vec<usize> {
        (0..self.inner.nodes.len())
            .filter(|&n| self.is_up(n))
            .collect()
    }

    fn mint_service_key(&self, shard: u32) -> String {
        let seq = self.inner.key_seqs[shard as usize].fetch_add(1, Ordering::SeqCst);
        format!("uuid:svc-s{shard:02x}-{seq:06x}")
    }

    // -- replication plumbing ----------------------------------------------

    /// Submit `op` to `shard`'s group via the replica hosted on
    /// `entry_node`. Runs the synchronous pump to completion: either
    /// the op commits (quorum of live replicas) or a fault explains
    /// where the client should go instead.
    fn submit(&self, shard: u32, entry_node: usize, op: ClusterOp) -> Result<u32, Fault> {
        let mut group = self.inner.groups[shard as usize].lock();
        let Some(member) = group.members.iter().position(|&n| n == entry_node) else {
            return Err(self.redirect_fault(shard, "wsp:notMember"));
        };
        self.ensure_live_primary(&mut group)?;
        let view = group.states[member].view;
        let primary = group.machines[member].primary_of(view) as usize;
        if group.members[primary] != entry_node {
            drop(group);
            return Err(self.redirect_fault(shard, "wsp:notPrimary"));
        }
        let out = self.pump(&mut group, member, ReplEvent::Client(op));
        if let Some(view) = out.new_view {
            self.bump_view(shard, view);
        }
        if out.redirected {
            drop(group);
            return Err(self.redirect_fault(shard, "wsp:notPrimary"));
        }
        out.acks.into_iter().max().ok_or_else(|| {
            Fault::receiver(format!(
                "wsp:unavailable shard={shard} lost its replication quorum"
            ))
        })
    }

    /// Drive view changes until the shard's primary is a live node (or
    /// fail if no quorum of live members remains).
    fn ensure_live_primary(&self, group: &mut Group) -> Result<(), Fault> {
        let shard = group.shard;
        let live: Vec<usize> = (0..group.members.len())
            .filter(|&m| self.is_up(group.members[m]))
            .collect();
        if live.len() < group.machines[0].quorum() {
            return Err(Fault::receiver(format!(
                "wsp:unavailable shard={shard} lost its replication quorum"
            )));
        }
        for _ in 0..group.members.len() * 2 {
            let view = live
                .iter()
                .map(|&m| group.states[m].view)
                .max()
                .unwrap_or(0);
            let primary = group.machines[0].primary_of(view) as usize;
            // A live primary is not enough: after a crash mid-election
            // the survivors can sit in ViewChange at view v+1 while the
            // revived suspect still believes view v — its DoViewChange
            // quorum was dropped while it was down, and nothing in the
            // message flow ever completes that election. The primary
            // must be up AND actually serving (Normal at the group's
            // max view); anything else gets the watchdog.
            if self.is_up(group.members[primary])
                && group.states[primary].status == Status::Normal
                && group.states[primary].view == view
            {
                // State transfer for stragglers: a backup that slept
                // through the election still holds an older view and
                // silently ignores the new primary's higher-view
                // Prepares — two such stragglers starve the commit
                // quorum forever. Re-delivering the primary's StartView
                // (the same message a live election ends with) catches
                // them up; retransmission is shell policy, exactly like
                // the watchdog that starts elections.
                let log = group.states[primary].log.clone();
                let commit_num = group.states[primary].commit_num;
                for &b in &live {
                    let lagging =
                        group.states[b].view < view || group.states[b].status != Status::Normal;
                    if b != primary && lagging {
                        self.pump(
                            group,
                            b,
                            ReplEvent::Recv {
                                from: primary as ReplicaId,
                                msg: ReplMsg::StartView {
                                    view,
                                    log: log.clone(),
                                    commit_num,
                                },
                            },
                        );
                    }
                }
                return Ok(());
            }
            // The watchdog fires on every live backup: each joins the
            // view change, the pump runs it to quorum.
            let mut adopted = None;
            for &m in &live {
                let out = self.pump(group, m, ReplEvent::PrimaryTimeout);
                if out.new_view.is_some() {
                    adopted = out.new_view;
                }
            }
            if let Some(view) = adopted {
                self.bump_view(shard, view);
            }
        }
        Err(Fault::receiver(format!(
            "wsp:unavailable shard={shard} could not elect a live primary"
        )))
    }

    /// Publish a view change into the shard map: the `ShardMapChanged`
    /// epoch bump every cached client invalidates on.
    fn bump_view(&self, shard: u32, view: u32) {
        let mut map = self.inner.map.write();
        if map.shard(shard).view < view {
            *map = Arc::new(map.with_view(shard, view));
        }
    }

    fn redirect_fault(&self, shard: u32, why: &str) -> Fault {
        let map = self.shard_map();
        let info = map.shard(shard);
        let primary = info.primary();
        Fault::sender(format!(
            "{why} shard={shard} primary={} epoch={}",
            map.nodes()[primary],
            map.epoch()
        ))
        .with_detail(map.to_element())
    }

    /// The synchronous message pump: feed `event` to `member`'s
    /// replica, then execute effects (deliveries to live members, store
    /// applies, acks) until the group quiesces.
    fn pump(&self, group: &mut Group, member: usize, event: ReplEvent<ClusterOp>) -> PumpOut {
        let mut out = PumpOut::default();
        let mut inbox: VecDeque<(usize, ReplEvent<ClusterOp>)> = VecDeque::new();
        inbox.push_back((member, event));
        while let Some((at, event)) = inbox.pop_front() {
            if !self.is_up(group.members[at]) {
                continue;
            }
            let (next, effects) = step_replica(&group.machines[at], &group.states[at], &event);
            group.states[at] = next;
            for effect in effects {
                match effect {
                    ReplEffect::Send { to, msg } => {
                        let to = to as usize;
                        // Down nodes drop the message on the floor —
                        // the same pruning the checker's Crash does.
                        if self.is_up(group.members[to]) {
                            inbox.push_back((
                                to,
                                ReplEvent::Recv {
                                    from: at as ReplicaId,
                                    msg,
                                },
                            ));
                        }
                    }
                    ReplEffect::Apply { op_num, op } => {
                        self.apply_op(group, at, op_num, &op);
                    }
                    ReplEffect::ClientAck { op_num } => out.acks.push(op_num),
                    ReplEffect::Redirect { .. } => out.redirected = true,
                    ReplEffect::BecamePrimary { view } => out.new_view = Some(view),
                    ReplEffect::AdoptedView { .. } => {}
                }
            }
        }
        out
    }

    /// Execute one committed op against `member`'s store; the first
    /// applier of each slot also runs the group-level lease side
    /// effects (exactly once per slot).
    fn apply_op(&self, group: &mut Group, member: usize, op_num: u32, op: &ClusterOp) {
        let registry = &self.inner.nodes[group.members[member]].registry;
        let first_applier = op_num > group.group_applied;
        if first_applier {
            group.group_applied = op_num;
            self.bump_data_version(group.shard);
        }
        match op {
            ClusterOp::Save {
                service_xml,
                granted_at_us,
            } => {
                let Some(svc) = wsp_xml::parse(service_xml)
                    .ok()
                    .as_ref()
                    .and_then(BusinessService::from_element)
                else {
                    return; // unreachable: ops are minted by this shell
                };
                registry.save_service(svc.clone());
                if first_applier {
                    if let Some(ttl_ms) = svc.lease_ttl_ms {
                        // Shed anything due strictly before the grant,
                        // then arm at the primary's stamped instant.
                        let granted_at = Time(*granted_at_us);
                        let expired = group.leases.advance_to(granted_at);
                        for key in &expired {
                            for &m in &group.members {
                                self.inner.nodes[m].registry.delete_service(key);
                            }
                        }
                        group.leases.grant(&svc.key, Dur(ttl_ms * 1_000));
                    }
                }
            }
            ClusterOp::Delete { key } => {
                registry.delete_service(key);
                if first_applier {
                    group.leases.cancel(key);
                }
            }
        }
    }
}

/// Parse the shard id out of a cluster-minted service key
/// (`uuid:svc-s{shard:02x}-{seq:06x}`), so deletes route without a
/// lookup.
pub fn shard_of_key(key: &str) -> Option<u32> {
    let rest = key.strip_prefix("uuid:svc-s")?;
    let (shard_hex, _) = rest.split_once('-')?;
    u32::from_str_radix(shard_hex, 16).ok()
}

/// `get_shardMap` request body, understood by [`RegistryCluster::process`].
pub fn get_shard_map_request() -> Element {
    Element::new(REGISTRY_NS, "get_shardMap")
}

/// `get_dataVersions` request body: asks a node for the per-shard data
/// versions (plus the map epoch), the gateway's revalidation probe.
pub fn get_data_versions_request() -> Element {
    Element::new(REGISTRY_NS, "get_dataVersions")
}

/// Stamp a routed request with the epoch the client believes in.
pub fn stamp_epoch(payload: &mut Element, epoch: u64) {
    payload.set_attribute(QName::local("mapEpoch"), epoch.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_uddi::{BindingTemplate, ServiceQuery, UddiClient};

    fn cluster() -> RegistryCluster {
        RegistryCluster::new(ClusterConfig {
            nodes: 3,
            shard_count: 4,
            replication: 3,
            default_ttl: None,
        })
    }

    fn publish(c: &RegistryCluster, node: usize, name: &str) -> Result<BusinessService, Fault> {
        let svc = BusinessService::new("", "biz", name)
            .with_binding(BindingTemplate::new("", format!("http://h/{name}")));
        let mut save = Element::new(UDDI_NS, "save_service");
        stamp_epoch(&mut save, c.shard_map().epoch());
        save.push_element(svc.to_element());
        let response = c.process(node, &Envelope::request(save));
        if let Some(fault) = response.fault_body() {
            return Err(fault.clone());
        }
        Ok(BusinessService::from_element(
            response
                .payload()
                .unwrap()
                .find(UDDI_NS, "businessService")
                .unwrap(),
        )
        .unwrap())
    }

    fn primary_node(c: &RegistryCluster, name: &str) -> usize {
        c.shard_map().route(name).primary
    }

    #[test]
    fn publish_replicates_to_every_member() {
        let c = cluster();
        let node = primary_node(&c, "EchoService");
        let saved = publish(&c, node, "EchoService").unwrap();
        assert!(saved.key.starts_with("uuid:svc-s"));
        let shard = c.shard_map().shard_of("EchoService");
        for &m in &c.shard_map().shard(shard).members {
            assert!(
                c.node_registry(m).get_service(&saved.key).is_some(),
                "member {m} must hold the committed record"
            );
        }
    }

    #[test]
    fn non_primary_entry_gets_redirect_fault() {
        let c = cluster();
        let name = "EchoService";
        let route = c.shard_map().route(name);
        let backup = route.backups[0];
        let fault = publish(&c, backup, name).unwrap_err();
        assert!(fault.reason.contains("wsp:notPrimary"), "{}", fault.reason);
        // The fresh map rides in the fault detail.
        let detail = fault.detail.as_deref().unwrap();
        assert!(ShardMap::from_element(detail).is_some());
    }

    #[test]
    fn stale_epoch_gets_versioned_redirect() {
        let c = cluster();
        let mut save = Element::new(UDDI_NS, "save_service");
        stamp_epoch(&mut save, 999);
        save.push_element(BusinessService::new("", "biz", "X").to_element());
        let response = c.process(0, &Envelope::request(save));
        let fault = response.fault_body().unwrap();
        assert!(
            fault.reason.contains("wsp:staleShardMap epoch=0"),
            "{}",
            fault.reason
        );
        let map = ShardMap::from_element(fault.detail.as_deref().unwrap()).unwrap();
        assert_eq!(map.epoch(), 0);
    }

    #[test]
    fn committed_publish_survives_primary_crash() {
        let c = cluster();
        let name = "SurvivorService";
        let route = c.shard_map().route(name);
        let saved = publish(&c, route.primary, name).unwrap();
        let epoch_before = c.shard_map().epoch();

        c.crash(route.primary);
        // Writing through a backup triggers the view change; a backup
        // that is not the new primary redirects, the new primary
        // commits.
        let mut found = None;
        for &node in &route.backups {
            match publish(&c, node, name) {
                Ok(svc) => {
                    found = Some(svc);
                    break;
                }
                Err(fault) => {
                    assert!(fault.reason.contains("wsp:notPrimary"), "{}", fault.reason);
                }
            }
        }
        let republished = found.expect("one backup is the new primary");
        assert!(c.shard_map().epoch() > epoch_before, "epoch must bump");
        // Both the old committed record and the new one live on every
        // surviving member.
        for &m in &route.backups {
            assert!(c.node_registry(m).get_service(&saved.key).is_some());
            assert!(c.node_registry(m).get_service(&republished.key).is_some());
        }
    }

    #[test]
    fn quorum_loss_is_unavailable() {
        let c = cluster();
        let name = "DoomedService";
        let route = c.shard_map().route(name);
        c.crash(route.backups[0]);
        c.crash(route.backups[1]);
        let fault = publish(&c, route.primary, name).unwrap_err();
        assert!(fault.reason.contains("wsp:unavailable"), "{}", fault.reason);
    }

    #[test]
    fn leases_expire_on_the_logical_clock() {
        let c = cluster();
        let name = "LeasedService";
        let route = c.shard_map().route(name);
        let svc = BusinessService::new("", "biz", name).with_lease_ttl_ms(500);
        let mut save = Element::new(UDDI_NS, "save_service");
        save.push_element(svc.to_element());
        let response = c.process(route.primary, &Envelope::request(save));
        assert!(response.fault_body().is_none());
        let saved = BusinessService::from_element(
            response
                .payload()
                .unwrap()
                .find(UDDI_NS, "businessService")
                .unwrap(),
        )
        .unwrap();

        c.advance_to(Time::millis(400));
        assert!(c
            .node_registry(route.primary)
            .get_service(&saved.key)
            .is_some());
        c.advance_to(Time::millis(600));
        for &m in [route.primary].iter().chain(&route.backups) {
            assert!(
                c.node_registry(m).get_service(&saved.key).is_none(),
                "member {m} must shed the expired lease"
            );
        }
    }

    #[test]
    fn refresh_extends_the_lease() {
        let c = cluster();
        let name = "RefreshedService";
        let route = c.shard_map().route(name);
        let svc = BusinessService::new("", "biz", name).with_lease_ttl_ms(500);
        let mut save = Element::new(UDDI_NS, "save_service");
        save.push_element(svc.to_element());
        let saved = BusinessService::from_element(
            c.process(route.primary, &Envelope::request(save))
                .payload()
                .unwrap()
                .find(UDDI_NS, "businessService")
                .unwrap(),
        )
        .unwrap();

        // Refresh at t=300 by republishing the same record (same key).
        c.advance_to(Time::millis(300));
        let mut refresh = Element::new(UDDI_NS, "save_service");
        refresh.push_element(saved.to_element());
        assert!(c
            .process(route.primary, &Envelope::request(refresh))
            .fault_body()
            .is_none());
        c.advance_to(Time::millis(600));
        assert!(
            c.node_registry(route.primary)
                .get_service(&saved.key)
                .is_some(),
            "refreshed lease must outlive the original TTL"
        );
        c.advance_to(Time::millis(900));
        assert!(c
            .node_registry(route.primary)
            .get_service(&saved.key)
            .is_none());
    }

    #[test]
    fn uddi_client_works_through_node_transport() {
        let c = cluster();
        let name = "TransportService";
        let node = primary_node(&c, name);
        let client = UddiClient::new(c.node_transport(node));
        let saved = client
            .save_service(&BusinessService::new("", "biz", name))
            .unwrap();
        assert!(saved.key.starts_with("uuid:svc-s"));
        let found = client.locate(&ServiceQuery::by_name(name)).unwrap();
        assert_eq!(found.len(), 1);
        c.crash(node);
        let err = client
            .save_service(&BusinessService::new("", "biz", name))
            .unwrap_err();
        assert!(matches!(err, wsp_uddi::UddiError::Transport(_)));
    }

    #[test]
    fn tmodels_replicate_to_all_live_nodes() {
        let c = cluster();
        let client = UddiClient::new(c.node_transport(0));
        let tm = client
            .save_tmodel(&TModel::new("", "Echo WSDL").with_overview("http://h/Echo?wsdl"))
            .unwrap();
        for n in 0..3 {
            assert!(c.node_registry(n).get_tmodel(&tm.key).is_some());
        }
    }

    #[test]
    fn shard_of_key_round_trips() {
        let c = cluster();
        let name = "KeyedService";
        let saved = publish(&c, primary_node(&c, name), name).unwrap();
        assert_eq!(shard_of_key(&saved.key), Some(c.shard_map().shard_of(name)));
        assert_eq!(shard_of_key("uuid:svc-12345"), None);
    }
}

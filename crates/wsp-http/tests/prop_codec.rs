//! Property tests for the HTTP codec: encode→parse is the identity for
//! any message the API can build, parsing is incremental-safe, and the
//! parser never panics.

use proptest::prelude::*;
use wsp_http::{
    encode_request, encode_response, parse_request, parse_response, Method, Request, Response,
};

fn token() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,12}"
}

fn header_value() -> impl Strategy<Value = String> {
    // No CR/LF or leading/trailing blanks (normalised by parsing).
    "[ -~]{0,24}".prop_map(|s| s.trim().replace(['\r', '\n'], " ").trim().to_owned())
}

fn method() -> impl Strategy<Value = Method> {
    prop_oneof![
        Just(Method::Get),
        Just(Method::Post),
        Just(Method::Head),
        Just(Method::Put),
        Just(Method::Delete),
    ]
}

fn request() -> impl Strategy<Value = Request> {
    (
        method(),
        "[A-Za-z0-9/_.?=-]{1,24}",
        proptest::collection::vec((token(), header_value()), 0..5),
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(method, path, headers, body)| {
            let mut r = Request::new(method, format!("/{path}"));
            for (i, (name, value)) in headers.into_iter().enumerate() {
                // Unique names: duplicate header *names* are legal HTTP but
                // the round-trip comparison would need multimap semantics.
                r.headers.append(format!("{name}-{i}"), value);
            }
            r.body = body;
            r
        })
}

fn response() -> impl Strategy<Value = Response> {
    (
        100u16..600,
        "[A-Za-z ]{0,16}",
        proptest::collection::vec((token(), header_value()), 0..5),
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(status, reason, headers, body)| {
            let mut r = Response::new(status, reason.trim().to_owned());
            for (i, (name, value)) in headers.into_iter().enumerate() {
                r.headers.append(format!("{name}-{i}"), value);
            }
            r.body = body;
            r
        })
}

/// What a request looks like after one parse round (Content-Length
/// materialised).
fn normalise_request(mut r: Request) -> Request {
    r.headers.set("Content-Length", r.body.len().to_string());
    r
}

fn normalise_response(mut r: Response) -> Response {
    r.headers.set("Content-Length", r.body.len().to_string());
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_round_trip(r in request()) {
        let bytes = encode_request(&r);
        let (parsed, used) = parse_request(&bytes).expect("must parse");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(parsed, normalise_request(r));
    }

    #[test]
    fn response_round_trip(r in response()) {
        let bytes = encode_response(&r);
        let (parsed, used) = parse_response(&bytes).expect("must parse");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(parsed, normalise_response(r));
    }

    #[test]
    fn any_prefix_is_incomplete_or_equal(r in request(), cut_frac in 0.0f64..1.0) {
        let bytes = encode_request(&r);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        match parse_request(&bytes[..cut]) {
            Err(wsp_http::HttpError::Incomplete) => {}
            Ok((parsed, used)) => {
                // A prefix can only parse if it contains the whole message.
                prop_assert_eq!(used, bytes.len());
                prop_assert_eq!(parsed, normalise_request(r));
            }
            Err(other) => prop_assert!(false, "prefix must not be malformed: {other}"),
        }
    }

    #[test]
    fn parser_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = parse_request(&junk);
        let _ = parse_response(&junk);
    }

    #[test]
    fn pipelined_messages_split_correctly(a in request(), b in request()) {
        let mut bytes = encode_request(&a);
        bytes.extend_from_slice(&encode_request(&b));
        let (first, used) = parse_request(&bytes).expect("first parses");
        prop_assert_eq!(first, normalise_request(a));
        let (second, used2) = parse_request(&bytes[used..]).expect("second parses");
        prop_assert_eq!(second, normalise_request(b));
        prop_assert_eq!(used + used2, bytes.len());
    }
}

//! Real-TCP driver: the container-less HTTP server and a blocking
//! client, over `std::net`.
//!
//! Per the paper, the server "is only launched once the application has
//! deployed a service" — [`TcpServer::launch`] is called lazily by the
//! WSPeer `Server` node on first deployment, binds an ephemeral port and
//! serves the shared [`Router`]. One thread per connection,
//! close-delimited exchanges: deliberately simple, matching the paper's
//! minimal-host philosophy.

use crate::codec::{encode_request, encode_response, parse_request, parse_response, HttpError};
use crate::message::{Request, Response};
use crate::router::Router;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running lightweight HTTP server.
pub struct TcpServer {
    addr: SocketAddr,
    router: Router,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Bind `127.0.0.1:port` (0 = ephemeral) and start accepting.
    pub fn launch(port: u16, router: Router) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let accept_router = router.clone();
        let accept_thread = std::thread::Builder::new()
            .name(format!("wsp-http-{}", addr.port()))
            .spawn(move || accept_loop(listener, accept_router, accept_stop))
            .expect("spawn accept thread");
        Ok(TcpServer {
            addr,
            router,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Base URI of a service deployed at `/name`.
    pub fn service_uri(&self, name: &str) -> String {
        format!("http://127.0.0.1:{}/{}", self.addr.port(), name)
    }

    /// Stop accepting and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop_now();
    }
}

fn accept_loop(listener: TcpListener, router: Router, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_router = router.clone();
                let conn_stop = stop.clone();
                // Connection threads are detached but observe the stop
                // flag, so server shutdown closes live connections.
                // Thread-per-connection is fine at the scales WSPeer
                // hosts (the paper's host is not a web farm).
                let _ = std::thread::Builder::new()
                    .name("wsp-http-conn".into())
                    .spawn(move || serve_connection(stream, conn_router, conn_stop));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn serve_connection(mut stream: TcpStream, router: Router, stop: Arc<AtomicBool>) {
    // Short read timeout so the loop can observe the stop flag between
    // reads; idle keep-alive connections die with the server.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    // Keep-alive loop: serve requests on this connection until the
    // client asks to close (or goes away / times out).
    loop {
        let (request, used) = loop {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            match parse_request(&buf) {
                Ok(parsed) => break parsed,
                Err(HttpError::Incomplete) => {
                    let mut chunk = [0u8; 4096];
                    match stream.read(&mut chunk) {
                        Ok(0) => return, // peer went away
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            continue; // idle: re-check the stop flag
                        }
                        Err(_) => return,
                    }
                }
                Err(_) => {
                    let _ = stream.write_all(&encode_response(&Response::bad_request(
                        "unparseable request",
                    )));
                    return;
                }
            }
        };
        buf.drain(..used);
        let close = request
            .headers
            .get("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false);
        let mut response = router.handle(&request);
        response
            .headers
            .set("Connection", if close { "close" } else { "keep-alive" });
        if stream.write_all(&encode_response(&response)).is_err() {
            return;
        }
        let _ = stream.flush();
        if close {
            return;
        }
    }
}

/// Issue one blocking request to `host:port`. Opens a fresh connection
/// per call (`Connection: close` semantics).
pub fn http_call(host: &str, port: u16, mut request: Request) -> Result<Response, HttpError> {
    request.headers.set("Host", format!("{host}:{port}"));
    request.headers.set("Connection", "close");
    let mut stream =
        TcpStream::connect((host, port)).map_err(|e| HttpError::Connect(e.to_string()))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| HttpError::Io(e.to_string()))?;
    stream
        .write_all(&encode_request(&request))
        .map_err(|e| HttpError::Io(e.to_string()))?;
    let mut buf = Vec::with_capacity(4096);
    loop {
        match parse_response(&buf) {
            Ok((response, _)) => return Ok(response),
            Err(HttpError::Incomplete) => {
                let mut chunk = [0u8; 4096];
                match stream.read(&mut chunk) {
                    Ok(0) => return Err(HttpError::Incomplete),
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(e) => return Err(HttpError::Io(e.to_string())),
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Issue one request to an absolute `http://` URI.
pub fn http_call_uri(uri: &str, mut request: Request) -> Result<Response, HttpError> {
    let parsed = crate::uri::HttpUri::parse(uri).map_err(|e| HttpError::Connect(e.to_string()))?;
    if request.target == "/" || request.target.is_empty() {
        request.target = parsed.target.clone();
    }
    http_call(&parsed.host, parsed.port, request)
}

/// Counter snapshot of a [`ConnectionPool`] (see
/// [`ConnectionPool::stats`]). All counts are since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Calls served over a reused pooled connection.
    pub hits: u64,
    /// Calls that had to open a fresh connection.
    pub misses: u64,
    /// Pooled connections found dead (or answered `Connection: close`)
    /// and dropped instead of being reused.
    pub retired: u64,
    /// Calls retried once on a fresh connection after a pooled one
    /// failed mid-exchange.
    pub retries: u64,
}

/// A keep-alive connection pool: reuses TCP connections per authority,
/// falling back to a fresh connection when a pooled one has gone stale.
///
/// A connection is never reused after the server replied
/// `Connection: close`, and a pooled socket that died while idle (the
/// peer closed or reset it) is detected by a non-blocking peek and
/// retired before any request bytes are written to it. A pooled
/// connection that fails *mid-exchange* gets exactly one retry on a
/// fresh connection.
///
/// This is the transport ablation of experiment E7: per-call connection
/// setup dominates small-payload HTTP round trips, and pooling removes
/// it.
#[derive(Default)]
pub struct ConnectionPool {
    idle: parking_lot::Mutex<std::collections::HashMap<String, Vec<TcpStream>>>,
    max_idle_per_host: usize,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    retired: std::sync::atomic::AtomicU64,
    retries: std::sync::atomic::AtomicU64,
}

/// Has an idle pooled connection died behind our back? A healthy idle
/// keep-alive connection has nothing to read (`WouldBlock`); EOF, an
/// error, or unsolicited bytes all mean the stream cannot carry the
/// next request/response exchange.
fn idle_connection_is_dead(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let dead = !matches!(
        stream.peek(&mut probe),
        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock
    );
    if stream.set_nonblocking(false).is_err() {
        return true;
    }
    dead
}

impl ConnectionPool {
    pub fn new() -> Self {
        ConnectionPool {
            max_idle_per_host: 4,
            ..Default::default()
        }
    }

    /// Number of idle pooled connections (all hosts).
    pub fn idle_count(&self) -> usize {
        self.idle.lock().values().map(Vec::len).sum()
    }

    /// Hit/miss/retire/retry counters.
    pub fn stats(&self) -> PoolStats {
        use std::sync::atomic::Ordering::Relaxed;
        PoolStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            retired: self.retired.load(Relaxed),
            retries: self.retries.load(Relaxed),
        }
    }

    /// Pop pooled connections until one passes the liveness probe;
    /// sockets that died while idle are retired, not returned.
    fn take(&self, authority: &str) -> Option<TcpStream> {
        use std::sync::atomic::Ordering::Relaxed;
        loop {
            let candidate = self.idle.lock().get_mut(authority).and_then(Vec::pop)?;
            if idle_connection_is_dead(&candidate) {
                self.retired.fetch_add(1, Relaxed);
                continue;
            }
            return Some(candidate);
        }
    }

    fn put(&self, authority: &str, stream: TcpStream) {
        let mut idle = self.idle.lock();
        let conns = idle.entry(authority.to_owned()).or_default();
        if conns.len() < self.max_idle_per_host {
            conns.push(stream);
        }
    }

    /// Issue a request over a pooled (or fresh) keep-alive connection.
    pub fn call(&self, host: &str, port: u16, mut request: Request) -> Result<Response, HttpError> {
        use std::sync::atomic::Ordering::Relaxed;
        request.headers.set("Host", format!("{host}:{port}"));
        request.headers.set("Connection", "keep-alive");
        let authority = format!("{host}:{port}");
        // A pooled connection may die between the liveness probe and
        // the exchange (the race is unavoidable); retry exactly once on
        // a fresh connection.
        if let Some(stream) = self.take(&authority) {
            match self.exchange(stream, &authority, &request) {
                Ok(response) => {
                    self.hits.fetch_add(1, Relaxed);
                    return Ok(response);
                }
                Err(_) => {
                    self.retired.fetch_add(1, Relaxed);
                    self.retries.fetch_add(1, Relaxed);
                }
            }
        }
        self.misses.fetch_add(1, Relaxed);
        let stream =
            TcpStream::connect((host, port)).map_err(|e| HttpError::Connect(e.to_string()))?;
        self.exchange(stream, &authority, &request)
    }

    fn exchange(
        &self,
        mut stream: TcpStream,
        authority: &str,
        request: &Request,
    ) -> Result<Response, HttpError> {
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(|e| HttpError::Io(e.to_string()))?;
        stream
            .write_all(&encode_request(request))
            .map_err(|e| HttpError::Io(e.to_string()))?;
        let mut buf = Vec::with_capacity(4096);
        loop {
            match parse_response(&buf) {
                Ok((response, _)) => {
                    // Reuse only an explicit keep-alive; `close` (or any
                    // absent/unknown value) retires the connection.
                    let connection = response.headers.get("connection").unwrap_or("");
                    let close = connection.eq_ignore_ascii_case("close");
                    if connection.eq_ignore_ascii_case("keep-alive") {
                        self.put(authority, stream);
                    } else if close {
                        self.retired
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    return Ok(response);
                }
                Err(HttpError::Incomplete) => {
                    let mut chunk = [0u8; 4096];
                    match stream.read(&mut chunk) {
                        Ok(0) => return Err(HttpError::Incomplete),
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                        Err(e) => return Err(HttpError::Io(e.to_string())),
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Method;

    fn test_server() -> TcpServer {
        let router = Router::new();
        router.deploy(
            "Echo",
            Arc::new(|req: &Request| Response::ok("text/plain", req.body.clone())),
        );
        TcpServer::launch(0, router).expect("launch server")
    }

    #[test]
    fn round_trip_over_loopback() {
        let server = test_server();
        let request = Request::post("/Echo", "text/plain", "over the wire");
        let response = http_call("127.0.0.1", server.port(), request).unwrap();
        assert!(response.is_success());
        assert_eq!(response.body_str(), "over the wire");
        server.shutdown();
    }

    #[test]
    fn listing_and_404() {
        let server = test_server();
        let listing = http_call("127.0.0.1", server.port(), Request::get("/")).unwrap();
        assert_eq!(listing.body_str(), "Echo");
        let missing = http_call("127.0.0.1", server.port(), Request::get("/Nope")).unwrap();
        assert_eq!(missing.status, 404);
        server.shutdown();
    }

    #[test]
    fn dynamic_deploy_visible_without_restart() {
        let server = test_server();
        server.router().deploy(
            "Late",
            Arc::new(|_req: &Request| Response::ok("text/plain", "late!")),
        );
        let response = http_call("127.0.0.1", server.port(), Request::get("/Late")).unwrap();
        assert_eq!(response.body_str(), "late!");
        server.router().undeploy("Late");
        let gone = http_call("127.0.0.1", server.port(), Request::get("/Late")).unwrap();
        assert_eq!(gone.status, 404);
        server.shutdown();
    }

    #[test]
    fn call_uri_helper() {
        let server = test_server();
        let uri = server.service_uri("Echo");
        let mut request = Request::new(Method::Post, "/");
        request.body = b"via uri".to_vec();
        let response = http_call_uri(&uri, request).unwrap();
        assert_eq!(response.body_str(), "via uri");
        server.shutdown();
    }

    #[test]
    fn connect_error_reported() {
        // Port 1 on loopback is essentially never listening.
        let err = http_call("127.0.0.1", 1, Request::get("/")).unwrap_err();
        assert!(matches!(err, HttpError::Connect(_)));
    }

    #[test]
    fn concurrent_clients() {
        let server = test_server();
        let port = server.port();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let body = format!("client-{i}");
                    let resp = http_call(
                        "127.0.0.1",
                        port,
                        Request::post("/Echo", "text/plain", body.clone()),
                    )
                    .unwrap();
                    assert_eq!(resp.body_str(), body);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }
}

#[cfg(test)]
mod pool_tests {
    use super::*;
    use std::sync::Arc;

    fn echo_server() -> TcpServer {
        let router = Router::new();
        router.deploy(
            "Echo",
            Arc::new(|req: &Request| Response::ok("text/plain", req.body.clone())),
        );
        TcpServer::launch(0, router).unwrap()
    }

    #[test]
    fn pool_reuses_connections() {
        let server = echo_server();
        let pool = ConnectionPool::new();
        for i in 0..5 {
            let response = pool
                .call(
                    "127.0.0.1",
                    server.port(),
                    Request::post("/Echo", "text/plain", format!("r{i}")),
                )
                .unwrap();
            assert_eq!(response.body_str(), format!("r{i}"));
        }
        // After the first call the connection is pooled and reused.
        assert_eq!(pool.idle_count(), 1);
        server.shutdown();
    }

    #[test]
    fn pool_recovers_from_stale_connection() {
        let server = echo_server();
        let pool = ConnectionPool::new();
        let port = server.port();
        pool.call("127.0.0.1", port, Request::get("/Echo")).unwrap();
        assert_eq!(pool.idle_count(), 1);
        // Restarting the server kills the pooled connection (connection
        // threads observe the stop flag within their read timeout).
        server.shutdown();
        std::thread::sleep(Duration::from_millis(400));
        let router = Router::new();
        router.deploy(
            "Echo",
            Arc::new(|_r: &Request| Response::ok("text/plain", "back")),
        );
        // Rebind on the same port (may need a few tries on busy CI).
        let server2 = (0..20)
            .find_map(|_| {
                std::thread::sleep(Duration::from_millis(25));
                TcpServer::launch(port, router.clone()).ok()
            })
            .expect("rebind same port");
        let response = pool.call("127.0.0.1", port, Request::get("/Echo")).unwrap();
        assert_eq!(response.body_str(), "back");
        server2.shutdown();
    }

    #[test]
    fn keep_alive_and_close_interoperate() {
        let server = echo_server();
        // A plain (close) client against the keep-alive server.
        let response = http_call("127.0.0.1", server.port(), Request::get("/Echo")).unwrap();
        assert!(response.is_success());
        assert_eq!(response.headers.get("connection"), Some("close"));
        // A pooled client sees keep-alive.
        let pool = ConnectionPool::new();
        let response = pool
            .call("127.0.0.1", server.port(), Request::get("/Echo"))
            .unwrap();
        assert_eq!(response.headers.get("connection"), Some("keep-alive"));
        server.shutdown();
    }

    /// A raw server that *advertises* keep-alive but closes the socket
    /// after every response — the lying-server case the pool must
    /// survive without ever writing a request onto a dead connection it
    /// could have probed first.
    fn lying_close_server() -> (std::net::TcpListener, u16, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let accept = listener.try_clone().unwrap();
        let join = std::thread::spawn(move || {
            while let Ok((mut conn, _)) = accept.accept() {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 1024];
                loop {
                    match parse_request(&buf) {
                        Ok(_) => break,
                        Err(HttpError::Incomplete) => match conn.read(&mut chunk) {
                            Ok(0) => return,
                            Ok(n) => buf.extend_from_slice(&chunk[..n]),
                            Err(_) => return,
                        },
                        Err(_) => return,
                    }
                }
                let body = b"pong";
                let head = format!(
                    "HTTP/1.1 200 OK\r\nConnection: keep-alive\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                );
                let _ = conn.write_all(head.as_bytes());
                let _ = conn.write_all(body);
                // Close (drop) despite having advertised keep-alive.
            }
        });
        (listener, port, join)
    }

    #[test]
    fn pool_survives_server_that_closes_after_each_response() {
        let (listener, port, join) = lying_close_server();
        let pool = ConnectionPool::new();
        for i in 0..5 {
            let response = pool
                .call("127.0.0.1", port, Request::get("/ping"))
                .unwrap_or_else(|e| panic!("call {i}: {e}"));
            assert_eq!(response.body_str(), "pong");
        }
        let stats = pool.stats();
        // The lying keep-alive header pools each dead connection; every
        // later call must detect and retire it instead of reusing it.
        assert!(stats.retired >= 4, "{stats:?}");
        assert!(stats.misses >= 1, "{stats:?}");
        // The peek probe catches idle deaths before any bytes are sent,
        // so calls succeed without burning the single retry: hits only
        // happen if a probe raced the close, and then the retry covers
        // it — either way every call succeeded above.
        drop(listener); // unblocks accept
        drop(join);
    }

    #[test]
    fn pool_never_reuses_connection_after_explicit_close() {
        let server = echo_server();
        let pool = ConnectionPool::new();
        let port = server.port();
        // Ask the server to close: its handler echoes our Connection
        // preference back, so sending `close` gets a close response.
        let mut request = Request::get("/Echo");
        request.headers.set("Host", format!("127.0.0.1:{port}"));
        request.headers.set("Connection", "close");
        let stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
        let response = pool.exchange(stream, &format!("127.0.0.1:{port}"), &request);
        assert_eq!(
            response.unwrap().headers.get("connection"),
            Some("close"),
            "server honoured the close request"
        );
        assert_eq!(pool.idle_count(), 0, "closed connection must not pool");
        assert_eq!(pool.stats().retired, 1);
        server.shutdown();
    }

    #[test]
    fn pool_counts_hits_and_misses() {
        let server = echo_server();
        let pool = ConnectionPool::new();
        for _ in 0..3 {
            pool.call("127.0.0.1", server.port(), Request::get("/Echo"))
                .unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.hits, 2, "{stats:?}");
        assert_eq!(stats.retired, 0, "{stats:?}");
        server.shutdown();
    }

    #[test]
    fn pool_is_shared_across_threads() {
        let server = echo_server();
        let pool = Arc::new(ConnectionPool::new());
        let port = server.port();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for j in 0..10 {
                        let body = format!("t{i}-{j}");
                        let r = pool
                            .call(
                                "127.0.0.1",
                                port,
                                Request::post("/Echo", "text/plain", body.clone()),
                            )
                            .unwrap();
                        assert_eq!(r.body_str(), body);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.idle_count() >= 1 && pool.idle_count() <= 4);
        server.shutdown();
    }
}

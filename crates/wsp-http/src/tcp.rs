//! Real-TCP driver: the container-less HTTP server and a blocking
//! client, over `std::net`.
//!
//! Per the paper, the server "is only launched once the application has
//! deployed a service" — [`TcpServer::launch`] is called lazily by the
//! WSPeer `Server` node on first deployment, binds an ephemeral port and
//! serves the shared [`Router`]. One thread per connection,
//! close-delimited exchanges: deliberately simple, matching the paper's
//! minimal-host philosophy.

use crate::codec::{
    encode_request_into, encode_response, encode_response_into, parse_request, parse_response,
    HttpError,
};
use crate::drain::{DrainEffect, DrainEvent, DrainMachine, DrainState};
use crate::message::{Request, Response};
use crate::router::Router;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wsp_simnet::Machine;

/// Tunables for [`TcpServer`]. `Default` reproduces the historical
/// hard-coded behaviour (flat 10 s read deadlines, 250 ms read poll,
/// 2 ms accept poll, no connection cap), so `launch` callers see no
/// change.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Wall-clock budget for a connection to deliver a full request
    /// *head* (request line + headers), measured from its first byte.
    /// Breach → `408 Request Timeout` and close.
    pub header_read_deadline: Duration,
    /// Additional budget for the body once the head is complete.
    /// Breach → `408 Request Timeout` and close. Staging the two stops
    /// a drip-feeding client from holding a thread for the sum of both.
    pub body_read_deadline: Duration,
    /// Per-`read(2)` socket timeout: bounds how long a connection
    /// thread can go without observing the stop/drain flags.
    pub read_poll: Duration,
    /// Sleep between polls of the non-blocking listener.
    pub accept_poll: Duration,
    /// Cap on concurrently served connections; accepts beyond it get an
    /// immediate `503` + `Retry-After` and are closed. `None` = no cap.
    pub max_connections: Option<usize>,
    /// How long [`TcpServer::shutdown`] waits for in-flight connections
    /// to finish before cutting off stragglers.
    pub drain_deadline: Duration,
    /// `Retry-After` hint attached to connection-cap and drain
    /// rejections (rounded up to whole seconds on the wire, with the
    /// exact value in `X-WSP-Retry-After-Ms`).
    pub retry_after: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            header_read_deadline: Duration::from_secs(10),
            body_read_deadline: Duration::from_secs(10),
            read_poll: Duration::from_millis(250),
            accept_poll: Duration::from_millis(2),
            max_connections: None,
            drain_deadline: Duration::from_secs(5),
            retry_after: Duration::from_secs(1),
        }
    }
}

/// Shared between the handle, the accept loop and connection threads.
///
/// All lifecycle and slot accounting lives in the pure
/// [`DrainMachine`] ([`crate::drain`]); this shell feeds it events
/// (accepts, connection exits, drain, stop) and executes the returned
/// effects. Flag reads (`stopped`, drain latch, active count) are
/// uncontended `Mutex` peeks on poll paths that tick at millisecond
/// cadence, so the machine costs nothing observable.
struct ServerState {
    config: ServerConfig,
    machine: DrainMachine,
    drain: parking_lot::Mutex<DrainState>,
}

impl ServerState {
    fn step(&self, event: DrainEvent) -> Vec<DrainEffect> {
        wsp_simnet::step_mut(&self.machine, &mut self.drain.lock(), &event)
    }

    /// Hard stop observed: accept loop exits, connection threads bail
    /// at the next read poll even mid-keep-alive.
    fn stopped(&self) -> bool {
        self.drain.lock().stopped()
    }

    /// Graceful drain observed (latched): new connections are
    /// rejected, idle keep-alive connections close, requests already
    /// being read or handled run to completion (their response carries
    /// `Connection: close`).
    fn drain_began(&self) -> bool {
        self.drain.lock().drain_began()
    }

    /// Live connection threads (accepted, not yet finished).
    fn active(&self) -> u64 {
        self.drain.lock().active
    }
}

/// Releases the connection's slot when its thread exits, panic
/// included, so drain accounting can never leak a slot.
struct ActiveGuard(Arc<ServerState>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        let effects = self.0.step(DrainEvent::ConnClosed);
        debug_assert!(
            !effects.contains(&DrainEffect::SlotUnderflow),
            "connection closed without a held slot"
        );
    }
}

/// A running lightweight HTTP server.
pub struct TcpServer {
    addr: SocketAddr,
    router: Router,
    state: Arc<ServerState>,
    accept_thread: parking_lot::Mutex<Option<JoinHandle<()>>>,
}

impl TcpServer {
    /// Bind `127.0.0.1:port` (0 = ephemeral) and start accepting, with
    /// default [`ServerConfig`].
    pub fn launch(port: u16, router: Router) -> std::io::Result<TcpServer> {
        TcpServer::launch_with(port, router, ServerConfig::default())
    }

    /// Bind and start accepting with explicit tunables.
    pub fn launch_with(
        port: u16,
        router: Router,
        config: ServerConfig,
    ) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let machine = DrainMachine {
            max_connections: config.max_connections.map(|cap| cap as u64),
        };
        let state = Arc::new(ServerState {
            config,
            drain: parking_lot::Mutex::new(machine.initial()),
            machine,
        });
        let accept_state = state.clone();
        let accept_router = router.clone();
        let accept_thread = std::thread::Builder::new()
            .name(format!("wsp-http-{}", addr.port()))
            .spawn(move || accept_loop(listener, accept_router, accept_state))
            .expect("spawn accept thread");
        Ok(TcpServer {
            addr,
            router,
            state,
            accept_thread: parking_lot::Mutex::new(Some(accept_thread)),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Base URI of a service deployed at `/name`.
    pub fn service_uri(&self, name: &str) -> String {
        format!("http://127.0.0.1:{}/{}", self.addr.port(), name)
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.state.active() as usize
    }

    /// True once [`shutdown`](TcpServer::shutdown) has begun draining.
    pub fn is_draining(&self) -> bool {
        self.state.drain_began()
    }

    /// Graceful drain: stop taking new connections (latecomers get a
    /// canned `503` + `Retry-After`), let requests already admitted run
    /// to completion with `Connection: close` on their final response,
    /// and wait up to [`ServerConfig::drain_deadline`] for the active
    /// count to reach zero. Returns `true` when every connection
    /// finished inside the deadline; on `false` the stragglers are cut
    /// off abruptly, exactly as [`shutdown_now`](TcpServer::shutdown_now)
    /// would.
    pub fn shutdown(&self) -> bool {
        self.state.step(DrainEvent::BeginDrain);
        let deadline = Instant::now() + self.state.config.drain_deadline;
        let drained = loop {
            if self.state.active() == 0 {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        self.stop_accepting();
        drained
    }

    /// Abrupt stop: no drain. Live connections are cut off as soon as
    /// their threads observe the stop flag (within one read poll); this
    /// is the only path that drops admitted work.
    pub fn shutdown_now(&self) {
        self.stop_accepting();
    }

    fn stop_accepting(&self) {
        // StopListening is the join below; a second Stop is a no-op and
        // returns no effects, so re-entry (shutdown → Drop) is safe.
        self.state.step(DrainEvent::Stop);
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

/// Tell a client we will not serve it right now: a canned `503` with
/// `Retry-After`, then close. Written under a short timeout so a slow
/// reader cannot stall the accept loop.
fn reject_connection(stream: &mut TcpStream, config: &ServerConfig, why: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let mut response = Response::unavailable(why);
    response.headers.set(
        "Retry-After",
        config.retry_after.as_secs().max(1).to_string(),
    );
    response.headers.set(
        "X-WSP-Retry-After-Ms",
        config.retry_after.as_millis().to_string(),
    );
    response.headers.set("Connection", "close");
    let _ = stream.write_all(&encode_response(&response));
}

fn accept_loop(listener: TcpListener, router: Router, state: Arc<ServerState>) {
    while !state.stopped() {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                // One Accept event: the machine decides admit vs reject
                // and, on admit, has already counted the slot.
                match state.step(DrainEvent::Accept).first() {
                    Some(DrainEffect::Serve) => {}
                    Some(DrainEffect::RejectDraining) => {
                        reject_connection(&mut stream, &state.config, "server draining");
                        continue;
                    }
                    Some(DrainEffect::RejectAtCapacity) => {
                        reject_connection(&mut stream, &state.config, "connection limit reached");
                        continue;
                    }
                    // Stopped while this accept raced the flag: drop it.
                    _ => continue,
                }
                let guard = ActiveGuard(state.clone());
                let conn_router = router.clone();
                // Connection threads are detached but observe the
                // stop/drain flags, so server shutdown closes live
                // connections. Thread-per-connection is fine at the
                // scales WSPeer hosts (the paper's host is not a web
                // farm), and the `max_connections` cap bounds it.
                // A failed spawn drops the guard, releasing the slot.
                let _ = std::thread::Builder::new()
                    .name("wsp-http-conn".into())
                    .spawn(move || {
                        let _active = guard;
                        serve_connection(stream, conn_router, &_active.0)
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(state.config.accept_poll);
            }
            Err(_) => break,
        }
    }
}

/// Is the request head (`…\r\n\r\n`) fully buffered? Marks the boundary
/// between the header and body read deadlines.
fn head_is_complete(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n")
}

fn serve_connection(mut stream: TcpStream, router: Router, state: &ServerState) {
    let config = &state.config;
    // Short read timeout so the loop can observe the stop/drain flags
    // between reads; idle keep-alive connections die with the server.
    let _ = stream.set_read_timeout(Some(config.read_poll));
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    // Keep-alive loop: serve requests on this connection until the
    // client asks to close (or goes away / times out / we drain).
    loop {
        // Staged slow-client deadlines: the clock starts at the first
        // byte of each request (an idle keep-alive connection is not on
        // the clock), the head must land within `header_read_deadline`,
        // and the body gets a separate `body_read_deadline` from the
        // moment the head completes.
        let mut started: Option<Instant> = if buf.is_empty() {
            None
        } else {
            Some(Instant::now())
        };
        let mut head_done: Option<Instant> = None;
        let (request, used) = loop {
            if state.stopped() {
                return;
            }
            if started.is_none() && state.drain_began() {
                return; // draining and no request in flight: close now
            }
            match parse_request(&buf) {
                Ok(parsed) => break parsed,
                Err(HttpError::Incomplete) => {
                    if let Some(first_byte) = started {
                        if head_done.is_none() && head_is_complete(&buf) {
                            head_done = Some(Instant::now());
                        }
                        let (stage_start, budget) = match head_done {
                            Some(at) => (at, config.body_read_deadline),
                            None => (first_byte, config.header_read_deadline),
                        };
                        if stage_start.elapsed() >= budget {
                            let _ = stream.write_all(&encode_response(&Response::request_timeout(
                                "request read deadline exceeded",
                            )));
                            return;
                        }
                    }
                    let mut chunk = [0u8; 4096];
                    match stream.read(&mut chunk) {
                        Ok(0) => return, // peer went away
                        Ok(n) => {
                            if started.is_none() {
                                started = Some(Instant::now());
                            }
                            buf.extend_from_slice(&chunk[..n]);
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            continue; // idle: re-check the flags
                        }
                        Err(_) => return,
                    }
                }
                Err(_) => {
                    let _ = stream.write_all(&encode_response(&Response::bad_request(
                        "unparseable request",
                    )));
                    return;
                }
            }
        };
        buf.drain(..used);
        let client_close = request
            .headers
            .get("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false);
        let mut response = router.handle(&request);
        // Re-check drain *after* handling: a drain that began while this
        // request ran still closes the connection behind its response.
        let close = client_close || state.drain_began();
        response
            .headers
            .set("Connection", if close { "close" } else { "keep-alive" });
        // Serialise into a pooled buffer, then hand both it and the
        // response body (often itself pool-born, via the SOAP handlers)
        // back for the next request on any connection.
        let pool = wsp_xml::BufPool::global();
        let mut wire = pool.take();
        encode_response_into(&response, &mut wire);
        let wrote = stream.write_all(&wire).is_ok();
        pool.put(wire);
        pool.put(std::mem::take(&mut response.body));
        if !wrote {
            return;
        }
        let _ = stream.flush();
        if close {
            return;
        }
    }
}

/// Default client-side read timeout for one-shot calls and pooled
/// exchanges, matching the historical hard-coded 10 s.
pub const DEFAULT_CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// Issue one blocking request to `host:port`. Opens a fresh connection
/// per call (`Connection: close` semantics).
pub fn http_call(host: &str, port: u16, request: Request) -> Result<Response, HttpError> {
    http_call_with_timeout(host, port, request, DEFAULT_CLIENT_TIMEOUT)
}

/// [`http_call`] with an explicit read timeout — callers propagating a
/// deadline cap the wait at their remaining budget instead of the flat
/// default.
pub fn http_call_with_timeout(
    host: &str,
    port: u16,
    mut request: Request,
    timeout: Duration,
) -> Result<Response, HttpError> {
    request.headers.set("Host", format!("{host}:{port}"));
    request.headers.set("Connection", "close");
    let mut stream =
        TcpStream::connect((host, port)).map_err(|e| HttpError::Connect(e.to_string()))?;
    stream
        .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))
        .map_err(|e| HttpError::Io(e.to_string()))?;
    let pool = wsp_xml::BufPool::global();
    let mut wire = pool.take();
    encode_request_into(&request, &mut wire);
    let wrote = stream.write_all(&wire);
    pool.put(wire);
    pool.put(std::mem::take(&mut request.body));
    wrote.map_err(|e| HttpError::Io(e.to_string()))?;
    let mut buf = Vec::with_capacity(4096);
    loop {
        match parse_response(&buf) {
            Ok((response, _)) => return Ok(response),
            Err(HttpError::Incomplete) => {
                let mut chunk = [0u8; 4096];
                match stream.read(&mut chunk) {
                    Ok(0) => return Err(HttpError::Incomplete),
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(e) => return Err(HttpError::Io(e.to_string())),
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Issue one request to an absolute `http://` URI.
pub fn http_call_uri(uri: &str, mut request: Request) -> Result<Response, HttpError> {
    let parsed = crate::uri::HttpUri::parse(uri).map_err(|e| HttpError::Connect(e.to_string()))?;
    if request.target == "/" || request.target.is_empty() {
        request.target = parsed.target.clone();
    }
    http_call(&parsed.host, parsed.port, request)
}

/// Counter snapshot of a [`ConnectionPool`] (see
/// [`ConnectionPool::stats`]). All counts are since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Calls served over a reused pooled connection.
    pub hits: u64,
    /// Calls that had to open a fresh connection.
    pub misses: u64,
    /// Pooled connections found dead (or answered `Connection: close`)
    /// and dropped instead of being reused.
    pub retired: u64,
    /// Calls retried once on a fresh connection after a pooled one
    /// failed mid-exchange.
    pub retries: u64,
}

/// A keep-alive connection pool: reuses TCP connections per authority,
/// falling back to a fresh connection when a pooled one has gone stale.
///
/// A connection is never reused after the server replied
/// `Connection: close`, and a pooled socket that died while idle (the
/// peer closed or reset it) is detected by a non-blocking peek and
/// retired before any request bytes are written to it. A pooled
/// connection that fails *mid-exchange* gets exactly one retry on a
/// fresh connection.
///
/// This is the transport ablation of experiment E7: per-call connection
/// setup dominates small-payload HTTP round trips, and pooling removes
/// it.
pub struct ConnectionPool {
    idle: parking_lot::Mutex<std::collections::HashMap<String, Vec<TcpStream>>>,
    max_idle_per_host: usize,
    call_timeout: Duration,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    retired: std::sync::atomic::AtomicU64,
    retries: std::sync::atomic::AtomicU64,
}

impl Default for ConnectionPool {
    fn default() -> Self {
        ConnectionPool::new()
    }
}

/// Has an idle pooled connection died behind our back? A healthy idle
/// keep-alive connection has nothing to read (`WouldBlock`); EOF, an
/// error, or unsolicited bytes all mean the stream cannot carry the
/// next request/response exchange.
fn idle_connection_is_dead(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let dead = !matches!(
        stream.peek(&mut probe),
        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock
    );
    if stream.set_nonblocking(false).is_err() {
        return true;
    }
    dead
}

impl ConnectionPool {
    pub fn new() -> Self {
        ConnectionPool {
            idle: parking_lot::Mutex::new(std::collections::HashMap::new()),
            max_idle_per_host: 4,
            call_timeout: DEFAULT_CLIENT_TIMEOUT,
            hits: Default::default(),
            misses: Default::default(),
            retired: Default::default(),
            retries: Default::default(),
        }
    }

    /// Replace the per-exchange read timeout (default 10 s).
    pub fn with_call_timeout(mut self, timeout: Duration) -> Self {
        self.call_timeout = timeout.max(Duration::from_millis(1));
        self
    }

    /// Number of idle pooled connections (all hosts).
    pub fn idle_count(&self) -> usize {
        self.idle.lock().values().map(Vec::len).sum()
    }

    /// Hit/miss/retire/retry counters.
    pub fn stats(&self) -> PoolStats {
        use std::sync::atomic::Ordering::Relaxed;
        PoolStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            retired: self.retired.load(Relaxed),
            retries: self.retries.load(Relaxed),
        }
    }

    /// Pop pooled connections until one passes the liveness probe;
    /// sockets that died while idle are retired, not returned.
    fn take(&self, authority: &str) -> Option<TcpStream> {
        use std::sync::atomic::Ordering::Relaxed;
        loop {
            let candidate = self.idle.lock().get_mut(authority).and_then(Vec::pop)?;
            if idle_connection_is_dead(&candidate) {
                self.retired.fetch_add(1, Relaxed);
                continue;
            }
            return Some(candidate);
        }
    }

    fn put(&self, authority: &str, stream: TcpStream) {
        let mut idle = self.idle.lock();
        let conns = idle.entry(authority.to_owned()).or_default();
        if conns.len() < self.max_idle_per_host {
            conns.push(stream);
        }
    }

    /// Issue a request over a pooled (or fresh) keep-alive connection.
    pub fn call(&self, host: &str, port: u16, mut request: Request) -> Result<Response, HttpError> {
        use std::sync::atomic::Ordering::Relaxed;
        request.headers.set("Host", format!("{host}:{port}"));
        request.headers.set("Connection", "keep-alive");
        let authority = format!("{host}:{port}");
        // A pooled connection may die between the liveness probe and
        // the exchange (the race is unavoidable); retry exactly once on
        // a fresh connection.
        if let Some(stream) = self.take(&authority) {
            match self.exchange(stream, &authority, &request) {
                Ok(response) => {
                    self.hits.fetch_add(1, Relaxed);
                    return Ok(response);
                }
                Err(_) => {
                    self.retired.fetch_add(1, Relaxed);
                    self.retries.fetch_add(1, Relaxed);
                }
            }
        }
        self.misses.fetch_add(1, Relaxed);
        let stream =
            TcpStream::connect((host, port)).map_err(|e| HttpError::Connect(e.to_string()))?;
        self.exchange(stream, &authority, &request)
    }

    fn exchange(
        &self,
        mut stream: TcpStream,
        authority: &str,
        request: &Request,
    ) -> Result<Response, HttpError> {
        stream
            .set_read_timeout(Some(self.call_timeout))
            .map_err(|e| HttpError::Io(e.to_string()))?;
        let buf_pool = wsp_xml::BufPool::global();
        let mut wire = buf_pool.take();
        encode_request_into(request, &mut wire);
        let wrote = stream.write_all(&wire);
        buf_pool.put(wire);
        wrote.map_err(|e| HttpError::Io(e.to_string()))?;
        let mut buf = Vec::with_capacity(4096);
        loop {
            match parse_response(&buf) {
                Ok((response, _)) => {
                    // Reuse only an explicit keep-alive; `close` (or any
                    // absent/unknown value) retires the connection.
                    let connection = response.headers.get("connection").unwrap_or("");
                    let close = connection.eq_ignore_ascii_case("close");
                    if connection.eq_ignore_ascii_case("keep-alive") {
                        self.put(authority, stream);
                    } else if close {
                        self.retired
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    return Ok(response);
                }
                Err(HttpError::Incomplete) => {
                    let mut chunk = [0u8; 4096];
                    match stream.read(&mut chunk) {
                        Ok(0) => return Err(HttpError::Incomplete),
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                        Err(e) => return Err(HttpError::Io(e.to_string())),
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Method;
    use std::sync::atomic::Ordering;

    fn test_server() -> TcpServer {
        let router = Router::new();
        router.deploy(
            "Echo",
            Arc::new(|req: &Request| Response::ok("text/plain", req.body.clone())),
        );
        TcpServer::launch(0, router).expect("launch server")
    }

    #[test]
    fn round_trip_over_loopback() {
        let server = test_server();
        let request = Request::post("/Echo", "text/plain", "over the wire");
        let response = http_call("127.0.0.1", server.port(), request).unwrap();
        assert!(response.is_success());
        assert_eq!(response.body_str(), "over the wire");
        server.shutdown();
    }

    #[test]
    fn listing_and_404() {
        let server = test_server();
        let listing = http_call("127.0.0.1", server.port(), Request::get("/")).unwrap();
        assert_eq!(listing.body_str(), "Echo");
        let missing = http_call("127.0.0.1", server.port(), Request::get("/Nope")).unwrap();
        assert_eq!(missing.status, 404);
        server.shutdown();
    }

    #[test]
    fn dynamic_deploy_visible_without_restart() {
        let server = test_server();
        server.router().deploy(
            "Late",
            Arc::new(|_req: &Request| Response::ok("text/plain", "late!")),
        );
        let response = http_call("127.0.0.1", server.port(), Request::get("/Late")).unwrap();
        assert_eq!(response.body_str(), "late!");
        server.router().undeploy("Late");
        let gone = http_call("127.0.0.1", server.port(), Request::get("/Late")).unwrap();
        assert_eq!(gone.status, 404);
        server.shutdown();
    }

    #[test]
    fn call_uri_helper() {
        let server = test_server();
        let uri = server.service_uri("Echo");
        let mut request = Request::new(Method::Post, "/");
        request.body = b"via uri".to_vec();
        let response = http_call_uri(&uri, request).unwrap();
        assert_eq!(response.body_str(), "via uri");
        server.shutdown();
    }

    #[test]
    fn connect_error_reported() {
        // Port 1 on loopback is essentially never listening.
        let err = http_call("127.0.0.1", 1, Request::get("/")).unwrap_err();
        assert!(matches!(err, HttpError::Connect(_)));
    }

    #[test]
    fn connection_cap_rejects_with_retry_after() {
        // Capacity 1, a handler slow enough to hold the only slot.
        let router = Router::new();
        router.deploy(
            "Slow",
            Arc::new(|_req: &Request| {
                std::thread::sleep(Duration::from_millis(300));
                Response::ok("text/plain", "done")
            }),
        );
        let config = ServerConfig {
            max_connections: Some(1),
            retry_after: Duration::from_millis(1500),
            ..ServerConfig::default()
        };
        let server = TcpServer::launch_with(0, router, config).unwrap();
        let port = server.port();
        let holder = std::thread::spawn(move || {
            http_call("127.0.0.1", port, Request::get("/Slow")).unwrap()
        });
        // Wait until the slot is taken, then the next accept must shed.
        while server.active_connections() == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        let shed = http_call("127.0.0.1", port, Request::get("/Slow")).unwrap();
        assert_eq!(shed.status, 503);
        assert_eq!(shed.headers.get("retry-after"), Some("1"));
        assert_eq!(shed.headers.get("x-wsp-retry-after-ms"), Some("1500"));
        assert_eq!(shed.headers.get("connection"), Some("close"));
        assert!(holder.join().unwrap().is_success());
        server.shutdown();
    }

    #[test]
    fn graceful_drain_finishes_in_flight_and_rejects_new() {
        let router = Router::new();
        router.deploy(
            "Slow",
            Arc::new(|_req: &Request| {
                std::thread::sleep(Duration::from_millis(200));
                Response::ok("text/plain", "finished")
            }),
        );
        let server = TcpServer::launch_with(
            0,
            router,
            ServerConfig {
                drain_deadline: Duration::from_secs(5),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let port = server.port();
        let in_flight = std::thread::spawn(move || {
            http_call("127.0.0.1", port, Request::get("/Slow")).unwrap()
        });
        while server.active_connections() == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        let drained = server.shutdown();
        assert!(drained, "in-flight call must finish inside the deadline");
        // The admitted call completed, and its response closed the
        // connection because the server was draining behind it.
        let response = in_flight.join().unwrap();
        assert_eq!(response.body_str(), "finished");
        assert_eq!(response.headers.get("connection"), Some("close"));
        // New connections are refused once the server is gone.
        assert!(http_call("127.0.0.1", port, Request::get("/Slow")).is_err());
    }

    #[test]
    fn drain_rejects_new_connections_with_503() {
        let router = Router::new();
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let release = gate.clone();
        router.deploy(
            "Gate",
            Arc::new(move |_req: &Request| {
                while !release.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Response::ok("text/plain", "released")
            }),
        );
        let server = Arc::new(TcpServer::launch(0, router).unwrap());
        let port = server.port();
        let in_flight = std::thread::spawn(move || {
            http_call("127.0.0.1", port, Request::get("/Gate")).unwrap()
        });
        while server.active_connections() == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Start the drain from another thread (it blocks until idle).
        let drainer = {
            let server = server.clone();
            std::thread::spawn(move || server.shutdown())
        };
        while !server.is_draining() {
            std::thread::sleep(Duration::from_millis(2));
        }
        // While draining, a new connection gets the busy rejection.
        let rejected = http_call("127.0.0.1", port, Request::get("/Gate")).unwrap();
        assert_eq!(rejected.status, 503);
        assert!(rejected.headers.get("retry-after").is_some());
        gate.store(true, Ordering::SeqCst);
        assert!(drainer.join().unwrap(), "drain completes once gate opens");
        assert_eq!(in_flight.join().unwrap().body_str(), "released");
    }

    #[test]
    fn slow_client_gets_408_on_header_deadline() {
        let router = Router::new();
        router.deploy(
            "Echo",
            Arc::new(|req: &Request| Response::ok("text/plain", req.body.clone())),
        );
        let config = ServerConfig {
            header_read_deadline: Duration::from_millis(100),
            read_poll: Duration::from_millis(10),
            ..ServerConfig::default()
        };
        let server = TcpServer::launch_with(0, router, config).unwrap();
        let mut stream = TcpStream::connect(("127.0.0.1", server.port())).unwrap();
        // Drip half a request line and stall: the head never completes.
        stream.write_all(b"GET /Ec").unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => break,
            }
        }
        let (response, _) = parse_response(&buf).expect("server answered before closing");
        assert_eq!(response.status, 408);
        server.shutdown();
    }

    #[test]
    fn slow_body_gets_408_on_body_deadline() {
        let router = Router::new();
        router.deploy(
            "Echo",
            Arc::new(|req: &Request| Response::ok("text/plain", req.body.clone())),
        );
        let config = ServerConfig {
            header_read_deadline: Duration::from_secs(5),
            body_read_deadline: Duration::from_millis(100),
            read_poll: Duration::from_millis(10),
            ..ServerConfig::default()
        };
        let server = TcpServer::launch_with(0, router, config).unwrap();
        let mut stream = TcpStream::connect(("127.0.0.1", server.port())).unwrap();
        // Complete head promising a body that never arrives in full.
        stream
            .write_all(b"POST /Echo HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial")
            .unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => break,
            }
        }
        let (response, _) = parse_response(&buf).expect("server answered before closing");
        assert_eq!(response.status, 408);
        server.shutdown();
    }

    #[test]
    fn shutdown_now_cuts_off_without_drain() {
        let server = test_server();
        // Idle keep-alive connection pinned open by a pool.
        let pool = ConnectionPool::new();
        pool.call("127.0.0.1", server.port(), Request::get("/Echo"))
            .unwrap();
        server.shutdown_now();
        // The server stops accepting immediately.
        assert!(http_call("127.0.0.1", server.port(), Request::get("/Echo")).is_err());
    }

    #[test]
    fn concurrent_clients() {
        let server = test_server();
        let port = server.port();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let body = format!("client-{i}");
                    let resp = http_call(
                        "127.0.0.1",
                        port,
                        Request::post("/Echo", "text/plain", body.clone()),
                    )
                    .unwrap();
                    assert_eq!(resp.body_str(), body);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }
}

#[cfg(test)]
mod pool_tests {
    use super::*;
    use std::sync::Arc;

    fn echo_server() -> TcpServer {
        let router = Router::new();
        router.deploy(
            "Echo",
            Arc::new(|req: &Request| Response::ok("text/plain", req.body.clone())),
        );
        TcpServer::launch(0, router).unwrap()
    }

    #[test]
    fn pool_reuses_connections() {
        let server = echo_server();
        let pool = ConnectionPool::new();
        for i in 0..5 {
            let response = pool
                .call(
                    "127.0.0.1",
                    server.port(),
                    Request::post("/Echo", "text/plain", format!("r{i}")),
                )
                .unwrap();
            assert_eq!(response.body_str(), format!("r{i}"));
        }
        // After the first call the connection is pooled and reused.
        assert_eq!(pool.idle_count(), 1);
        server.shutdown();
    }

    #[test]
    fn pool_recovers_from_stale_connection() {
        let server = echo_server();
        let pool = ConnectionPool::new();
        let port = server.port();
        pool.call("127.0.0.1", port, Request::get("/Echo")).unwrap();
        assert_eq!(pool.idle_count(), 1);
        // Restarting the server kills the pooled connection (connection
        // threads observe the stop flag within their read timeout).
        server.shutdown();
        std::thread::sleep(Duration::from_millis(400));
        let router = Router::new();
        router.deploy(
            "Echo",
            Arc::new(|_r: &Request| Response::ok("text/plain", "back")),
        );
        // Rebind on the same port (may need a few tries on busy CI).
        let server2 = (0..20)
            .find_map(|_| {
                std::thread::sleep(Duration::from_millis(25));
                TcpServer::launch(port, router.clone()).ok()
            })
            .expect("rebind same port");
        let response = pool.call("127.0.0.1", port, Request::get("/Echo")).unwrap();
        assert_eq!(response.body_str(), "back");
        server2.shutdown();
    }

    #[test]
    fn keep_alive_and_close_interoperate() {
        let server = echo_server();
        // A plain (close) client against the keep-alive server.
        let response = http_call("127.0.0.1", server.port(), Request::get("/Echo")).unwrap();
        assert!(response.is_success());
        assert_eq!(response.headers.get("connection"), Some("close"));
        // A pooled client sees keep-alive.
        let pool = ConnectionPool::new();
        let response = pool
            .call("127.0.0.1", server.port(), Request::get("/Echo"))
            .unwrap();
        assert_eq!(response.headers.get("connection"), Some("keep-alive"));
        server.shutdown();
    }

    /// A raw server that *advertises* keep-alive but closes the socket
    /// after every response — the lying-server case the pool must
    /// survive without ever writing a request onto a dead connection it
    /// could have probed first.
    fn lying_close_server() -> (std::net::TcpListener, u16, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let accept = listener.try_clone().unwrap();
        let join = std::thread::spawn(move || {
            while let Ok((mut conn, _)) = accept.accept() {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 1024];
                loop {
                    match parse_request(&buf) {
                        Ok(_) => break,
                        Err(HttpError::Incomplete) => match conn.read(&mut chunk) {
                            Ok(0) => return,
                            Ok(n) => buf.extend_from_slice(&chunk[..n]),
                            Err(_) => return,
                        },
                        Err(_) => return,
                    }
                }
                let body = b"pong";
                let head = format!(
                    "HTTP/1.1 200 OK\r\nConnection: keep-alive\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                );
                let _ = conn.write_all(head.as_bytes());
                let _ = conn.write_all(body);
                // Close (drop) despite having advertised keep-alive.
            }
        });
        (listener, port, join)
    }

    #[test]
    fn pool_survives_server_that_closes_after_each_response() {
        let (listener, port, join) = lying_close_server();
        let pool = ConnectionPool::new();
        for i in 0..5 {
            let response = pool
                .call("127.0.0.1", port, Request::get("/ping"))
                .unwrap_or_else(|e| panic!("call {i}: {e}"));
            assert_eq!(response.body_str(), "pong");
        }
        let stats = pool.stats();
        // The lying keep-alive header pools each dead connection; every
        // later call must detect and retire it instead of reusing it.
        assert!(stats.retired >= 4, "{stats:?}");
        assert!(stats.misses >= 1, "{stats:?}");
        // The peek probe catches idle deaths before any bytes are sent,
        // so calls succeed without burning the single retry: hits only
        // happen if a probe raced the close, and then the retry covers
        // it — either way every call succeeded above.
        drop(listener); // unblocks accept
        drop(join);
    }

    #[test]
    fn pool_never_reuses_connection_after_explicit_close() {
        let server = echo_server();
        let pool = ConnectionPool::new();
        let port = server.port();
        // Ask the server to close: its handler echoes our Connection
        // preference back, so sending `close` gets a close response.
        let mut request = Request::get("/Echo");
        request.headers.set("Host", format!("127.0.0.1:{port}"));
        request.headers.set("Connection", "close");
        let stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
        let response = pool.exchange(stream, &format!("127.0.0.1:{port}"), &request);
        assert_eq!(
            response.unwrap().headers.get("connection"),
            Some("close"),
            "server honoured the close request"
        );
        assert_eq!(pool.idle_count(), 0, "closed connection must not pool");
        assert_eq!(pool.stats().retired, 1);
        server.shutdown();
    }

    #[test]
    fn pool_counts_hits_and_misses() {
        let server = echo_server();
        let pool = ConnectionPool::new();
        for _ in 0..3 {
            pool.call("127.0.0.1", server.port(), Request::get("/Echo"))
                .unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.hits, 2, "{stats:?}");
        assert_eq!(stats.retired, 0, "{stats:?}");
        server.shutdown();
    }

    #[test]
    fn pool_is_shared_across_threads() {
        let server = echo_server();
        let pool = Arc::new(ConnectionPool::new());
        let port = server.port();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for j in 0..10 {
                        let body = format!("t{i}-{j}");
                        let r = pool
                            .call(
                                "127.0.0.1",
                                port,
                                Request::post("/Echo", "text/plain", body.clone()),
                            )
                            .unwrap();
                        assert_eq!(r.body_str(), body);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.idle_count() >= 1 && pool.idle_count() <= 4);
        server.shutdown();
    }
}
